"""The telemetry registry: metrics, nestable timed spans, event stream.

One :class:`Telemetry` instance aggregates everything observable about a
run of the ER pipeline:

* **metrics** — named :class:`~repro.telemetry.metrics.Counter` /
  ``Gauge`` / ``Histogram`` objects, created on first use and read back
  via :meth:`Telemetry.snapshot`;
* **spans** — ``with telemetry.span("symex.run", iteration=3):`` times a
  pipeline stage, feeds a per-name duration histogram, and (when a sink
  is attached) emits a structured ``span`` event carrying its nesting
  depth and parent; and
* **events** — ``telemetry.event("production.ring_wrap", bytes=...)``
  point records, forwarded to the sink.

The process-wide current registry lives in :mod:`repro.telemetry`
(module functions ``get`` / ``set_current`` / ``scoped``); library code
reaches it through those so the CLI and tests can swap in a fresh
registry per run.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .metrics import Counter, Gauge, Histogram
from .sinks import NULL_SINK, Sink

__all__ = ["Telemetry", "Span"]


class Span:
    """One timed, attributed region; returned by :meth:`Telemetry.span`.

    Usable only as a context manager.  After exit, :attr:`seconds` holds
    the measured wall time — callers that want the number (e.g. the
    reconstructor's per-iteration timeline) keep the object around::

        with telemetry.span("trace.decode", bytes=n) as sp:
            ...
        record.phase_seconds["decode"] = sp.seconds
    """

    __slots__ = ("telemetry", "name", "attrs", "seconds", "_started")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self.telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.seconds: float = 0.0
        self._started: float = 0.0

    def __enter__(self) -> "Span":
        self.telemetry._enter_span(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._started
        self.telemetry._exit_span(self, error=exc_type is not None)


class Telemetry:
    """A registry of metrics plus a structured event stream.

    Thread-compatible by construction: metric updates are plain attribute
    arithmetic (atomic enough under the GIL) and the span stack is
    thread-local, so concurrent production runs cannot corrupt nesting.
    """

    def __init__(self, sink: Optional[Sink] = None):
        self.sink: Sink = sink if sink is not None else NULL_SINK
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._local = threading.local()
        self._seq = 0
        self._epoch = time.perf_counter()

    # -- metric accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            metric = self._histograms[name] = Histogram(name)
            return metric

    def count(self, name: str, amount: int = 1) -> None:
        """Convenience one-shot counter increment."""
        self.counter(name).add(amount)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A nestable timed region; see :class:`Span`."""
        return Span(self, name, attrs)

    def _span_stack(self) -> List[str]:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _enter_span(self, span: Span) -> None:
        self._span_stack().append(span.name)

    def _exit_span(self, span: Span, error: bool) -> None:
        stack = self._span_stack()
        depth = len(stack)
        parent = stack[-2] if depth >= 2 else None
        stack.pop()
        self.histogram(f"span.{span.name}").record(span.seconds)
        if self.sink.enabled:
            event = {"type": "span", "name": span.name,
                     "dur_s": span.seconds, "depth": depth,
                     "parent": parent}
            if error:
                event["error"] = True
            if span.attrs:
                event["attrs"] = span.attrs
            self._emit(event)

    # -- events ----------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Emit one structured point event (dropped when sink disabled)."""
        if not self.sink.enabled:
            return
        event = {"type": "event", "name": name}
        if fields:
            event["attrs"] = fields
        self._emit(event)

    def emit_snapshot(self) -> None:
        """Emit the full metric state as one ``snapshot`` event."""
        if not self.sink.enabled:
            return
        self._emit({"type": "snapshot", "name": "telemetry.snapshot",
                    "metrics": self.snapshot()})

    def _emit(self, event: Dict) -> None:
        self._seq += 1
        event["seq"] = self._seq
        event["ts"] = round(time.perf_counter() - self._epoch, 6)
        self.sink.emit(event)

    # -- lifecycle / export ----------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when a real (non-null) sink is attached."""
        return self.sink.enabled

    def snapshot(self) -> Dict[str, Dict]:
        """All metric values as plain data (the ``--json`` surface)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop all metrics (the sink and its stream are untouched)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def close(self) -> None:
        """Emit a final snapshot and close the sink."""
        self.emit_snapshot()
        self.sink.close()
