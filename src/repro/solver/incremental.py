"""Assumption-stack incremental solving across sibling queries.

Shepherded symbolic execution issues its solver queries over a
constraint list that grows by appends, and the gap-recovery DFS
re-issues almost-identical lists for sibling decisions along one
prefix: flip one late gap bit and every query before the flip is
verbatim the previous attempt's.  Re-solving that shared prefix from
scratch for every sibling — re-deriving the same unit propagations and
re-exhausting the same dead candidate subtrees — is the dominant
avoidable cost of the search.

The :class:`AssumptionStack` is the classic incremental-solver answer
(push/pop of assumptions with retained learned facts), restated for
this solver's propagation + candidate-DFS engine.  The stack mirrors
the caller's constraint list, and every retained fact carries the
**dependency index** of the last constraint its derivation used:

* **unit assignments** propagation forced (``var = value``),
* constraints proven **satisfied** under them, and
* **learned conflicts** — ``var != value`` facts proven by candidate
  rejection or complete subtree exhaustion during the DFS.

:meth:`align` diffs the next query's list against the stack and drops
exactly the facts whose dependency falls beyond the common prefix — the
push/pop protocol is implicit, and a fact derived from early constraints
survives any number of late-suffix replacements.  The survivors seed the
next search (:meth:`retained`): retained assignments pre-populate the
environment, satisfied constraints are skipped, and conflicts prune
whole candidate subtrees — only the delta is genuinely re-solved.

Soundness rests on monotonicity.  A unit assignment forced by
constraints ``[0, dep]`` is forced by every list extending that prefix;
a constraint that three-valued-evaluates to 1 under those assignments
stays 1 under every extension; and a refutation of ``var = value`` that
used only constraints ``[0, dep]`` (plus assignments they force) holds
for every extension — so skipping the candidate can never change which
model a search finds: the skipped subtree provably contains none.
Search state is snapshotted *after* propagation, so speculative DFS
assignments are never retained; conflicts are recorded only from
completed (set-exhaustive) rejections, so even a timed-out or unsat
search contributes sound facts.

Scoping: a stack belongs to one :class:`~repro.solver.cache.SolverCache`
session and is enabled by the gap search (serial and per shard), where
the work-stealing scheduler's checkpoints already advance prefixes one
decision at a time.  Exact-trace replays never create one, so the
default reconstruction path is bit-for-bit unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import telemetry
from .terms import Term

__all__ = ["AssumptionStack", "Retained"]


@dataclass
class Retained:
    """Seed state handed to a search aligned on this stack's prefix.

    ``excluded`` maps ``var -> {value: dep}``: assignments proven
    impossible, tagged with the constraint index their refutation
    depended on (a search that *skips* one folds its ``dep`` into any
    conflict it learns on top).  ``env_deps`` bounds each retained unit
    assignment the same way.
    """

    env: Dict[str, int] = field(default_factory=dict)
    satisfied: FrozenSet[Term] = frozenset()
    excluded: Dict[str, Dict[int, int]] = field(default_factory=dict)
    env_deps: Dict[str, int] = field(default_factory=dict)


class AssumptionStack:
    """Retained solver facts keyed to a growing constraint list.

    Every fact is indexed by the position of the deepest constraint its
    derivation used, so :meth:`align` can retain at *constraint*
    granularity: replacing the two probe terms at the tail of an
    80-constraint query invalidates only the facts that actually read
    them.
    """

    def __init__(self):
        #: the constraint list the retained state is valid for (raw
        #: caller terms, aligned positionally against incoming queries)
        self._terms: List[Term] = []
        #: forced unit assignments: name -> (value, dep)
        self.env: Dict[str, Tuple[int, int]] = {}
        #: constraints known satisfied under them: bool-term -> dep
        self.satisfied: Dict[Term, int] = {}
        #: learned conflicts: name -> {value: dep}
        self.excluded: Dict[str, Dict[int, int]] = {}
        self.pushes = 0
        self.pops = 0
        #: constraints answered from retained state instead of re-solved
        self.reused_terms = 0
        #: conflicts learned (lifetime) / dropped as their deps diverged
        self.conflicts_learned = 0
        self.conflicts_dropped = 0
        self.attempts = 0

    def __len__(self) -> int:
        return len(self._terms)

    # -- the push/pop protocol (implicit in the list diff) ---------------

    def align(self, constraints: Sequence[Term]) -> int:
        """Truncate to the common prefix with ``constraints``.

        Drops every fact whose dependency index falls beyond the prefix
        (its derivation may have read a replaced constraint); everything
        else survives verbatim.  Returns the retained prefix length.
        """
        limit = min(len(self._terms), len(constraints))
        common = 0
        while common < limit and self._terms[common] == constraints[common]:
            common += 1
        if common < len(self._terms):
            del self._terms[common:]
            self._drop_beyond(common)
            self.pops += 1
        self.reused_terms += common
        return common

    def _drop_beyond(self, common: int) -> None:
        for name in [n for n, (_, dep) in self.env.items() if dep >= common]:
            del self.env[name]
        for term in [t for t, dep in self.satisfied.items()
                     if dep >= common]:
            del self.satisfied[term]
        dropped = 0
        for name in list(self.excluded):
            values = self.excluded[name]
            for value in [v for v, dep in values.items() if dep >= common]:
                del values[value]
                dropped += 1
            if not values:
                del self.excluded[name]
        self.conflicts_dropped += dropped

    def retained(self) -> Retained:
        """Seed state for a search over a superset of the stack prefix."""
        return Retained(
            env={name: value for name, (value, _) in self.env.items()},
            satisfied=frozenset(self.satisfied),
            excluded=self.excluded,
            env_deps={name: dep for name, (_, dep) in self.env.items()})

    def extend(self, constraints: Sequence[Term], env: Dict[str, int],
               env_deps: Dict[str, int], satisfied: Dict[Term, int],
               learned: Optional[Dict[str, Dict[int, int]]] = None) -> None:
        """Absorb one search's harvest over ``constraints`` (which the
        stack must currently be a prefix of, i.e. :meth:`align` ran on
        it).  ``env``/``satisfied`` are the post-propagation snapshot
        with per-fact dependency indices; ``learned`` the conflicts the
        DFS proved.  Deps are clamped to the list end, so a fact with no
        recorded dependency is simply dropped at the first divergence.
        """
        suffix = constraints[len(self._terms):]
        if suffix:
            self._terms.extend(suffix)
            self.pushes += 1
        if not self._terms:
            return
        top = len(self._terms) - 1
        for name, value in env.items():
            if name not in self.env:
                self.env[name] = (value, min(env_deps.get(name, top), top))
        for term, dep in satisfied.items():
            if term not in self.satisfied:
                self.satisfied[term] = min(dep, top)
        if learned:
            self._absorb_conflicts(learned, top)

    def _absorb_conflicts(self, learned: Dict[str, Dict[int, int]],
                          top: int) -> None:
        added = 0
        for name, values in learned.items():
            merged = self.excluded.setdefault(name, {})
            for value, dep in values.items():
                # an already-retained conflict was skipped by the search,
                # so it cannot have been re-learned with a better dep
                if value not in merged:
                    merged[value] = min(dep, top)
                    added += 1
            if not merged:
                del self.excluded[name]
        if added:
            self.conflicts_learned += added
            telemetry.count("solver.incremental.conflicts_learned", added)

    # -- scheduler hooks -------------------------------------------------

    def mark_attempt(self) -> None:
        """Called at each gap-search attempt boundary (steal checkpoints
        run there too): records how much stacked state survives into the
        sibling attempt."""
        self.attempts += 1
        telemetry.histogram(
            "solver.incremental.attempt_depth").record(len(self._terms))

    # -- stats -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "depth": len(self._terms),
            "env": len(self.env),
            "satisfied": len(self.satisfied),
            "pushes": self.pushes,
            "pops": self.pops,
            "reused_terms": self.reused_terms,
            "conflicts_learned": self.conflicts_learned,
            "conflicts_dropped": self.conflicts_dropped,
            "conflicts_live": sum(len(v) for v in self.excluded.values()),
            "attempts": self.attempts,
        }

    def __repr__(self):
        return (f"AssumptionStack({len(self._terms)} terms, "
                f"{len(self.env)} assignments, "
                f"{sum(len(v) for v in self.excluded.values())} conflicts)")
