"""Static well-formedness checks for IR modules.

The verifier catches the mistakes that are cheap to detect statically and
miserable to debug dynamically: dangling branch targets, missing
terminators, reads of never-written registers, calls to unknown functions,
references to unknown globals, and duplicate ``ptwrite`` tags.
"""

from __future__ import annotations

from typing import Set

from ..errors import IRError
from . import instructions as ins
from .module import Function, Module


def verify_function(func: Function, module: Module) -> None:
    if not func.blocks:
        raise IRError(f"function {func.name} has no blocks")

    labels = set(func.blocks)
    for block in func.blocks.values():
        if block.terminator is None:
            raise IRError(
                f"block {func.name}:{block.label} lacks a terminator")
        for index, instr in enumerate(block.instrs):
            if instr.is_terminator and index != len(block.instrs) - 1:
                raise IRError(
                    f"terminator mid-block at {func.name}:{block.label}:{index}")
            _verify_instr(instr, func, module, labels)

    _verify_register_defs(func)


def _verify_instr(instr, func: Function, module: Module,
                  labels: Set[str]) -> None:
    where = f"in {func.name}"
    if isinstance(instr, ins.Br):
        for label in (instr.if_true, instr.if_false):
            if label not in labels:
                raise IRError(f"br to unknown block {label!r} {where}")
    elif isinstance(instr, ins.Jmp):
        if instr.label not in labels:
            raise IRError(f"jmp to unknown block {instr.label!r} {where}")
    elif isinstance(instr, (ins.Call, ins.Spawn)):
        if instr.func not in module.functions:
            raise IRError(f"call to unknown function {instr.func!r} {where}")
        callee = module.functions[instr.func]
        if len(instr.args) != len(callee.params):
            raise IRError(
                f"call to {instr.func} with {len(instr.args)} args, "
                f"expected {len(callee.params)} {where}")
    elif isinstance(instr, ins.GlobalAddr):
        if instr.name not in module.globals:
            raise IRError(f"unknown global {instr.name!r} {where}")


def _verify_register_defs(func: Function) -> None:
    """Flow-insensitive check: every register read is written somewhere.

    A full dominance analysis would be overkill for the workloads; this
    still catches typos, which are the common failure mode.
    """
    defined = set(func.params)
    for _, instr in func.points():
        dest = instr.dest_register()
        if dest is not None:
            defined.add(dest)
    for point, instr in func.points():
        for operand in instr.operands():
            if isinstance(operand, str) and operand not in defined:
                raise IRError(
                    f"read of undefined register {operand} at {point}")


def verify_module(module: Module) -> None:
    """Raise :class:`IRError` on the first problem found."""
    if "main" not in module.functions:
        raise IRError("module has no 'main' function")
    tags = set()
    for func in module.functions.values():
        verify_function(func, module)
    for point, instr in module.points():
        if isinstance(instr, ins.PtWrite):
            if instr.tag in tags:
                raise IRError(f"duplicate ptwrite tag {instr.tag} at {point}")
            tags.add(instr.tag)
