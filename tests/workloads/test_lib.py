"""The IR 'standard library' routines used by workload programs."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.workloads.lib import (CASE_TABLE, add_case_table, add_fnv_hash,
                                 add_memcpy, add_memset, add_read_bytes,
                                 add_strlen, case_fold_bytes)


def run_with(setup, main_body, streams=None):
    b = ModuleBuilder("libtest")
    setup(b)
    f = b.function("main", [])
    f.block("entry")
    main_body(f)
    module = b.build()
    return Interpreter(module, Environment(streams or {})).run()


class TestCaseTable:
    def test_folds_upper_to_lower(self):
        table = case_fold_bytes()
        assert table[ord("A")] == ord("a")
        assert table[ord("Z")] == ord("z")

    def test_other_bytes_identity(self):
        table = case_fold_bytes()
        for ch in (0, ord("a"), ord("0"), ord("@"), 0xFF):
            assert table[ch] == ch

    def test_install_as_global(self):
        def setup(b):
            add_case_table(b)

        def body(f):
            t = f.global_addr(CASE_TABLE)
            p = f.gep(t, ord("Q"), 1)
            v = f.load(p, 1)
            f.output("o", v, 1)
            f.ret(0)

        result = run_with(setup, body)
        assert result.outputs["o"] == b"q"


class TestMemRoutines:
    def test_memcpy(self):
        def setup(b):
            b.global_("src", 8, b"hello!")
            b.global_("dst", 8)
            add_memcpy(b)

        def body(f):
            s = f.global_addr("src")
            d = f.global_addr("dst")
            f.call("memcpy", [d, s, 6])
            v = f.load(d, 4)
            f.output("o", v, 4)
            f.ret(0)

        result = run_with(setup, body)
        assert result.outputs["o"] == b"hell"

    def test_memcpy_zero_length(self):
        def setup(b):
            b.global_("src", 4, b"abcd")
            b.global_("dst", 4)
            add_memcpy(b)

        def body(f):
            s = f.global_addr("src")
            d = f.global_addr("dst")
            f.call("memcpy", [d, s, 0])
            v = f.load(d, 1)
            f.output("o", v, 1)
            f.ret(0)

        assert run_with(setup, body).outputs["o"] == b"\x00"

    def test_memset(self):
        def setup(b):
            b.global_("buf", 8)
            add_memset(b)

        def body(f):
            d = f.global_addr("buf")
            f.call("memset", [d, 0x5A, 8])
            v = f.load(d, 8)
            f.output("o", v, 8)
            f.ret(0)

        assert run_with(setup, body).outputs["o"] == b"\x5a" * 8

    def test_strlen(self):
        def setup(b):
            b.string("s", "reconstruction")
            add_strlen(b)

        def body(f):
            s = f.global_addr("s")
            n = f.call("strlen", [s], dest="%n")
            f.output("o", "%n", 1)
            f.ret(0)

        assert run_with(setup, body).outputs["o"] == bytes([14])

    def test_strlen_empty(self):
        def setup(b):
            b.string("s", "")
            add_strlen(b)

        def body(f):
            s = f.global_addr("s")
            n = f.call("strlen", [s], dest="%n")
            f.output("o", "%n", 1)
            f.ret(0)

        assert run_with(setup, body).outputs["o"] == bytes([0])


class TestHashAndIo:
    def test_fnv_known_value(self):
        def setup(b):
            b.global_("buf", 4, b"abcd")
            add_fnv_hash(b)

        def body(f):
            s = f.global_addr("buf")
            h = f.call("fnv", [s, 4], dest="%h")
            f.output("o", "%h", 4)
            f.ret(0)

        result = run_with(setup, body)
        # reference FNV-1a, 32-bit
        h = 0x811C9DC5
        for ch in b"abcd":
            h = ((h ^ ch) * 0x01000193) & 0xFFFFFFFF
        assert result.outputs["o"] == h.to_bytes(4, "little")

    def test_read_bytes(self):
        def setup(b):
            b.global_("buf", 8)
            add_read_bytes(b, "stdin")

        def body(f):
            d = f.global_addr("buf")
            f.call("read_bytes_stdin", [d, 5])
            v = f.load(d, 4)
            f.output("o", v, 4)
            f.ret(0)

        result = run_with(setup, body, streams={"stdin": b"trace"})
        assert result.outputs["o"] == b"trac"
