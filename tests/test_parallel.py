"""The batch reconstruction runner and its telemetry merging."""

import dataclasses
import json
import queue
import re
import threading
import time

import pytest

from repro import telemetry
from repro.core import ProductionSite
from repro.ir.module import ProgramPoint
from repro.parallel import (BatchItem, BatchResult, GapShardOutcome,
                            _choose_outcome, _dfs_key, _shard_prefixes,
                            _StealControl, _steal_prefixes, run_batch,
                            shard_gap_search, write_merged_jsonl)
from repro.symex.gaps import SearchCancelled, replay_with_gap_recovery
from repro.workloads import get_workload

#: small, fast workloads — the batch tests stay well under a second each
FAST = ["objdump-2018-6323", "matrixssl-2014-1569"]


class TestRunBatch:
    def test_serial_batch(self):
        result = run_batch(FAST, parallel=1)
        assert [i.workload for i in result.items] == FAST
        assert result.succeeded == len(FAST)
        assert all(i.error is None for i in result.items)
        assert all(i.occurrences >= 1 for i in result.items)

    def test_parallel_matches_serial(self):
        serial = run_batch(FAST, parallel=1)
        parallel = run_batch(FAST, parallel=2)
        fingerprint = lambda r: [(i.workload, i.success, i.verified,
                                  i.occurrences, i.unrelated_occurrences)
                                 for i in r.items]
        assert fingerprint(parallel) == fingerprint(serial)

    def test_merged_telemetry_sums_counters(self):
        result = run_batch(FAST, parallel=1)
        counters = result.telemetry["counters"]
        assert counters["reconstruct.runs"] == len(FAST)
        # every worker's solver traffic is visible in the merged view
        assert counters["reconstruct.successes"] == len(FAST)

    def test_solver_cache_stats_surface(self):
        result = run_batch(FAST, parallel=1)
        stats = result.solver_cache_stats
        assert {"hits", "misses", "hit_rate"} <= set(stats)
        assert stats["misses"] >= 0

    def test_bad_workload_isolated(self):
        result = run_batch(["objdump-2018-6323", "no-such-workload"])
        good, bad = result.items
        assert good.success and good.error is None
        assert not bad.success and "no-such-workload" in bad.error
        assert result.succeeded == 1

    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ValueError):
            run_batch(FAST, parallel=0)

    def test_to_dict_round_trips_through_json(self):
        result = run_batch(FAST[:1])
        data = json.loads(json.dumps(result.to_dict()))
        assert data["total"] == 1
        assert data["items"][0]["workload"] == FAST[0]

    def test_worker_load_accounts_every_item(self):
        result = run_batch(FAST, parallel=2)
        load = result.worker_load
        assert sum(entry["tasks"] for entry in load.values()) == len(FAST)
        assert all(entry["wall_seconds"] >= 0 for entry in load.values())
        assert "worker_load" in result.to_dict()

    def test_cache_dir_shared_across_batch_runs(self, tmp_path):
        cold = run_batch(FAST[:1], parallel=1, cache_dir=str(tmp_path))
        warm = run_batch(FAST[:1], parallel=1, cache_dir=str(tmp_path))
        assert cold.succeeded == warm.succeeded == 1
        assert (tmp_path / "solver-cache.jsonl").exists()


def _degraded_occurrence(name):
    workload = get_workload(name)
    module = workload.fresh_module()
    site = ProductionSite(workload.failing_env, mapping_loss=0.085,
                          per_cpu_buffers=True)
    occurrence = site.run_once(module)
    return workload, module, occurrence


class TestShardedGapSearch:
    @pytest.mark.parametrize("steal", [True, False],
                             ids=["steal", "static"])
    def test_matches_serial_on_gap_heavy_workloads(self, steal):
        for name in FAST:
            workload, module, occ = _degraded_occurrence(name)
            kwargs = dict(work_limit=workload.work_limit * 20)
            serial = replay_with_gap_recovery(module, occ.trace,
                                              occ.failure, **kwargs)
            sharded = replay_with_gap_recovery(module, occ.trace,
                                               occ.failure, shards=2,
                                               steal=steal, **kwargs)
            assert sharded.status == serial.status, name
            serial_model = (serial.model.assignment
                            if serial.model else None)
            sharded_model = (sharded.model.assignment
                             if sharded.model else None)
            assert sharded_model == serial_model, name

    def test_no_gaps_degrades_to_serial(self):
        workload = get_workload(FAST[0])
        module = workload.fresh_module()
        occ = ProductionSite(workload.failing_env).run_once(module)
        kwargs = dict(max_attempts=512, work_limit=workload.work_limit)
        serial = replay_with_gap_recovery(module, occ.trace, occ.failure,
                                          **kwargs)
        result = shard_gap_search(module, occ.trace, occ.failure,
                                  shards=2, **kwargs)
        # an intact trace has no prefixes to fan out: same code path
        assert result.status == serial.status
        assert result.gap_attempts == 1

    def test_rejects_nonpositive_shards(self):
        workload, module, occ = _degraded_occurrence(FAST[0])
        with pytest.raises(ValueError, match="shards"):
            shard_gap_search(module, occ.trace, occ.failure, shards=0,
                             max_attempts=512)

    def test_subspace_histogram_accounts_every_attempt(self):
        workload, module, occ = _degraded_occurrence(FAST[0])
        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            result = replay_with_gap_recovery(
                module, occ.trace, occ.failure, shards=2,
                work_limit=workload.work_limit * 20)
        snap = registry.snapshot()
        hist = snap["histograms"]["parallel.shard_subspace_attempts"]
        # one sample per shard outcome, summing to the reported total
        assert hist["count"] == snap["counters"]["parallel.gap_shards"]
        assert hist["sum"] == result.gap_attempts

    @pytest.mark.parametrize("steal", [True, False],
                             ids=["steal", "static"])
    def test_all_diverged_matches_serial(self, steal):
        # displace the failure point one instruction: no decision vector
        # reaches it, so every subspace diverges and the sharded search
        # must report the same divergence the serial walk does
        workload, module, occ = _degraded_occurrence(FAST[0])
        pt = occ.failure.point
        wrong = dataclasses.replace(
            occ.failure, point=ProgramPoint(pt.func, pt.block,
                                            pt.index + 1))
        kwargs = dict(work_limit=workload.work_limit * 20)
        serial = replay_with_gap_recovery(module, occ.trace, wrong,
                                          **kwargs)
        sharded = replay_with_gap_recovery(module, occ.trace, wrong,
                                           shards=2, steal=steal,
                                           **kwargs)
        assert serial.status == sharded.status == "diverged"
        assert sharded.diverged_chunk == serial.diverged_chunk
        # the reason's base matches serial; the attempt suffix counts
        # this mode's own replays (subspace entries re-run the serial
        # walk's interior nodes, so totals legitimately differ)
        suffix = r" \(after (\d+) gap assignments\)$"
        base = lambda r: re.sub(suffix, "", r.divergence_reason)
        count = lambda r: int(re.search(suffix,
                                        r.divergence_reason).group(1))
        assert base(sharded) == base(serial)
        assert count(sharded) == sharded.gap_attempts
        assert count(serial) == serial.gap_attempts == 1

    def test_shard_counters_folded_into_caller(self):
        workload, module, occ = _degraded_occurrence(FAST[0])
        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            replay_with_gap_recovery(module, occ.trace, occ.failure,
                                     shards=2,
                                     work_limit=workload.work_limit * 20)
        counters = registry.snapshot()["counters"]
        assert counters.get("parallel.gap_shards", 0) >= 1
        # the shards' own replay traffic is visible in the parent view:
        # the parent's re-run contributes exactly one recovery/replay, so
        # a total of two or more proves the workers' counters were folded
        replays = (counters.get("symex.gap_replays", 0)
                   + counters.get("symex.gap_recoveries", 0))
        assert replays >= 2


class TestShardPrefixes:
    def _trace(self, name=FAST[0]):
        _, _, occ = _degraded_occurrence(name)
        return occ.trace

    def test_serial_dfs_order(self):
        trace = self._trace()
        prefixes = _shard_prefixes(trace, shards=2)
        assert prefixes[0] == [True] * len(prefixes[0])  # serial start
        assert prefixes[-1] == [False] * len(prefixes[0])
        assert len(prefixes) == 2 ** len(prefixes[0])
        assert len(set(map(tuple, prefixes))) == len(prefixes)

    def test_depth_bounded_by_gap_count(self):
        workload = get_workload(FAST[0])
        module = workload.fresh_module()
        occ = ProductionSite(workload.failing_env).run_once(module)
        assert _shard_prefixes(occ.trace, shards=4) == []  # no gaps

    def test_more_shards_more_tasks(self):
        trace = self._trace()
        assert len(_shard_prefixes(trace, shards=8)) >= \
            len(_shard_prefixes(trace, shards=2))

    def test_steal_prefixes_cover_pool_width_only(self):
        # stealing rebalances at runtime, so the seed fan-out stays at
        # one task per worker instead of over-partitioning
        trace = self._trace()
        assert len(_steal_prefixes(trace, shards=2)) == 2
        assert len(_steal_prefixes(trace, shards=4)) == 4
        assert len(_steal_prefixes(trace, shards=2)) <= \
            len(_shard_prefixes(trace, shards=2))

    def test_steal_prefixes_serial_dfs_order(self):
        trace = self._trace()
        prefixes = _steal_prefixes(trace, shards=4)
        assert prefixes == sorted(prefixes, key=_dfs_key)
        assert prefixes[0] == [True] * len(prefixes[0])


class TestStealControl:
    """The checkpoint hook, exercised with in-process queue doubles."""

    def _control(self, cancel=False, tokens=0):
        cancel_evt = threading.Event()
        if cancel:
            cancel_evt.set()
        steal_q, results_q = queue.Queue(), queue.Queue()
        for _ in range(tokens):
            steal_q.put((0, time.time()))
        control = _StealControl([True], cancel_evt, steal_q=steal_q,
                                results_q=results_q)
        return control, steal_q, results_q

    def test_cancel_aborts_with_attempt_count(self):
        control, _, _ = self._control(cancel=True)
        with pytest.raises(SearchCancelled) as err:
            control.checkpoint([True, False], 1, attempts=7)
        assert err.value.attempts == 7

    def test_no_token_no_change(self):
        control, _, results_q = self._control()
        locked = control.checkpoint([True, False, True], 1, 0)
        assert locked == 1
        assert results_q.empty() and control.donated == 0

    def test_donates_shallowest_unexplored_sibling(self):
        control, steal_q, results_q = self._control(tokens=1)
        locked = control.checkpoint([True, False, True, True], 1, 0)
        # first liberated True is at index 2: the thief gets its False
        # sibling, the victim locks itself out of the donated half
        assert results_q.get_nowait() == ("split", [True, False, False])
        assert locked == 3
        assert steal_q.empty() and control.donated == 1

    def test_locked_prefix_never_donated(self):
        control, _, results_q = self._control(tokens=1)
        locked = control.checkpoint([True, False], 1, 0)
        # the only True sits inside the locked prefix: nothing stealable
        assert locked == 1
        assert results_q.empty() and control.donated == 0

    def test_all_false_remainder_drops_token(self):
        control, steal_q, results_q = self._control(tokens=1)
        locked = control.checkpoint([True, False, False], 1, 0)
        assert locked == 1
        assert results_q.empty()
        assert steal_q.empty()  # consumed, not re-posted


class TestWinnerCommit:
    """Serial-DFS winner selection over shard outcomes."""

    def _outcome(self, prefix, status="diverged", gap_bits=()):
        return GapShardOutcome(prefix=list(prefix), status=status,
                               gap_bits=list(gap_bits))

    def test_dfs_key_orders_true_first(self):
        assert _dfs_key([True]) < _dfs_key([False])
        assert _dfs_key([True, False]) < _dfs_key([False, True])
        assert _dfs_key([True]) < _dfs_key([True, False])  # prefix first

    def test_earliest_solution_wins_regardless_of_arrival(self):
        late_but_early = self._outcome([True], "completed",
                                       [True, True, False])
        first_arrived = self._outcome([False], "completed",
                                      [False, True, True])
        assert _choose_outcome(
            [first_arrived, late_but_early]) is late_but_early
        assert _choose_outcome(
            [late_but_early, first_arrived]) is late_but_early

    def test_solution_beats_any_divergence(self):
        solved = self._outcome([False], "stalled", [False, True])
        diverged = self._outcome([True], "diverged", [True, True])
        assert _choose_outcome([diverged, solved]) is solved

    def test_all_diverged_commits_dfs_last_subspace(self):
        # the DFS-last subspace's final attempt is the serial search's
        # last attempt, so its divergence stands in for serial's
        first = self._outcome([True, True], gap_bits=[True, True])
        last = self._outcome([False, False], gap_bits=[False, False])
        assert _choose_outcome([last, first]) is last

    def test_cancelled_and_error_never_win(self):
        cancelled = self._outcome([True], "cancelled")
        errored = self._outcome([True, True], "error")
        diverged = self._outcome([False], "diverged", [False])
        assert _choose_outcome([cancelled, errored, diverged]) is diverged
        with pytest.raises(RuntimeError):
            _choose_outcome([cancelled, errored])


class TestMergedJsonl:
    def test_merged_log_readable_by_stats(self, tmp_path):
        result = run_batch(FAST, parallel=1, capture_events=True)
        path = tmp_path / "merged.jsonl"
        lines = write_merged_jsonl(result, path)
        events = telemetry.read_jsonl(path)
        assert len(events) == lines
        # events are tagged with their workload
        tagged = {e.get("workload") for e in events if "workload" in e}
        assert tagged == set(FAST)
        # the final snapshot carries the merged counters
        snapshot = telemetry.final_snapshot(events)
        assert snapshot["counters"]["reconstruct.runs"] == len(FAST)
        # and the human renderer accepts the stream
        assert "iter" in telemetry.render_stats(events)

    def test_no_events_without_capture(self):
        result = run_batch(FAST[:1], parallel=1)
        assert result.items[0].events == []

    def test_snapshot_seq_past_every_merged_event(self, tmp_path):
        # per-worker sequences overlap, so the merged snapshot must be
        # numbered past the *max* seen — a line count would collide —
        # and timestamped on the same registry-relative axis
        items = [
            BatchItem(workload="w1", events=[
                {"type": "event", "name": "a", "seq": 5, "ts": 1.5},
                {"type": "snapshot", "name": "telemetry.snapshot",
                 "seq": 9, "ts": 2.0, "metrics": {}},  # superseded
            ]),
            BatchItem(workload="w2", events=[
                {"type": "event", "name": "b", "seq": 7, "ts": 3.25},
            ]),
        ]
        result = BatchResult(items=items, parallelism=2,
                             wall_seconds=99.0,
                             telemetry={"counters": {"x": 1},
                                        "gauges": {}, "histograms": {}})
        path = tmp_path / "merged.jsonl"
        lines = write_merged_jsonl(result, path)
        events = telemetry.read_jsonl(path)
        assert len(events) == lines == 3
        snapshot = events[-1]
        assert snapshot["type"] == "snapshot"
        merged_seqs = [e["seq"] for e in events[:-1]]
        assert snapshot["seq"] == max(merged_seqs) + 1 == 8
        assert snapshot["ts"] == 3.25  # max event ts, not wall time
        assert snapshot["metrics"]["counters"]["x"] == 1


class TestMergeUnderSkewAndDuplicates:
    """Satellite checks: merged telemetry stays causally coherent when
    worker wall clocks disagree and when span names collide."""

    def _skewed_worker(self, ctx, skew_s):
        # a worker whose gettimeofday() is off by `skew_s` observes the
        # handoff origin shifted the other way
        shifted = telemetry.TraceContext(
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            wall_origin=ctx.wall_origin - skew_s)
        sink = telemetry.MemorySink()
        return telemetry.Telemetry(sink, context=shifted), sink

    def test_lagging_clock_never_yields_negative_ts(self):
        parent = telemetry.Telemetry(telemetry.MemorySink())
        with parent.span("symex.gap_shard_search"):
            ctx = parent.trace_context()
        worker, sink = self._skewed_worker(ctx, skew_s=-3600.0)
        worker.event("tick")
        # the rebase clamps at the trace origin instead of going negative
        assert sink.events[0]["ts"] >= 0

    def test_leading_clock_shifts_but_keeps_linkage(self):
        parent_sink = telemetry.MemorySink()
        parent = telemetry.Telemetry(parent_sink)
        with parent.span("symex.gap_shard_search"):
            ctx = parent.trace_context()
        worker, sink = self._skewed_worker(ctx, skew_s=2.0)
        with worker.span("parallel.shard_search"):
            pass
        span = sink.events[0]
        # skew moves the timestamp, not the causal links
        assert span["ts"] >= 2.0
        assert span["parent_id"] == ctx.span_id
        assert span["trace_id"] == parent.trace_id

    def test_duplicate_span_names_stay_distinct_in_merged_log(
            self, tmp_path):
        parent = telemetry.Telemetry(telemetry.MemorySink())
        with parent.span("parallel.batch"):
            ctx = parent.trace_context()
        sinks, snaps = [], []
        for skew in (0.0, 1.0):
            worker, sink = self._skewed_worker(ctx, skew)
            with worker.span("parallel.shard_search", prefix_len=1):
                pass
            sinks.append(sink)
            snaps.append(worker.snapshot())

        result = BatchResult(
            items=[BatchItem(workload=f"w{i}", events=sink.events)
                   for i, sink in enumerate(sinks)],
            parallelism=2, wall_seconds=0.1,
            telemetry=telemetry.merge_snapshots(snaps))
        path = tmp_path / "merged.jsonl"
        write_merged_jsonl(result, path)
        events = telemetry.read_jsonl(path)

        spans = [e for e in events
                 if e.get("name") == "parallel.shard_search"]
        assert len(spans) == 2
        # same name, distinct identities, both parented on the handoff
        assert len({s["span_id"] for s in spans}) == 2
        assert all(s["parent_id"] == ctx.span_id for s in spans)
        assert len({s["trace_id"] for s in spans}) == 1
        # the duration histograms folded rather than clobbered
        merged = telemetry.final_snapshot(events)
        assert merged["histograms"]["span.parallel.shard_search"][
            "count"] == 2

    def test_merged_order_follows_rebased_timeline(self, tmp_path):
        parent = telemetry.Telemetry(telemetry.MemorySink())
        with parent.span("parallel.batch"):
            ctx = parent.trace_context()
        early, early_sink = self._skewed_worker(ctx, 0.0)
        late, late_sink = self._skewed_worker(ctx, 5.0)  # clock 5s ahead
        early.event("first")
        late.event("second")
        merged = sorted(early_sink.events + late_sink.events,
                        key=lambda e: e["ts"])
        assert [e["name"] for e in merged] == ["first", "second"]


class TestSolverCacheStats:
    def _result(self, counters):
        return BatchResult(items=[], parallelism=1, wall_seconds=0.0,
                           telemetry={"counters": counters})

    def test_hit_rate_folds_every_answered_tier(self):
        # subsumption/disk answers already ride inside `hits`; a
        # successful model probe is a miss + model_probe_hits, so the
        # folded rate is (6 + 2) / (6 + 4)
        stats = self._result({
            "solver.cache.hits": 6,
            "solver.cache.misses": 4,
            "solver.cache.model_probe_hits": 2,
            "solver.cache.subsumption_hits": 3,
            "solver.cache.disk_hits": 1,
        }).solver_cache_stats
        assert stats["hit_rate"] == 0.8
        assert stats["hits"] == 6 and stats["misses"] == 4
        assert stats["model_probe_hits"] == 2
        assert stats["subsumption_hits"] == 3
        assert stats["disk_hits"] == 1

    def test_empty_counters(self):
        stats = self._result({}).solver_cache_stats
        assert stats["hit_rate"] == 0.0


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = telemetry.merge_snapshots([
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            {"counters": {"x": 2, "y": 5}, "gauges": {}, "histograms": {}},
            None,
        ])
        assert merged["counters"] == {"x": 3, "y": 5}

    def test_gauges_keep_max(self):
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {"g": 3}, "histograms": {}},
            {"counters": {}, "gauges": {"g": 7}, "histograms": {}},
        ])
        assert merged["gauges"]["g"] == 7

    def test_histograms_merge_exact_aggregates(self):
        h1 = {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
              "mean": 5.0, "p50": 5.0, "p90": 9.0, "p99": 9.0}
        h2 = {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0,
              "mean": 3.0, "p50": 3.0, "p90": 4.0, "p99": 4.0}
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
            {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
        ])["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["sum"] == 16.0
        assert merged["min"] == 1.0 and merged["max"] == 9.0
        assert merged["mean"] == 4.0

    def test_empty_input(self):
        merged = telemetry.merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}
