"""Persistent, cross-process solver-query cache (the disk tier).

The in-memory :class:`~repro.solver.cache.SolverCache` dies with its
session; every gap-recovery shard, batch worker, and successive
``repro reproduce``/``repro bench`` invocation re-solves the same
queries from scratch.  This tier fixes that: query results are keyed on
*sets of canonical term digests* (:func:`~repro.solver.terms.term_digest`
over the injective serialization) and appended to one shared JSONL file,
so any process pointed at the same ``--cache-dir`` warm-starts from
every previous process's work.

Storage is deliberately dumb — an append-only file plus an in-memory
index rebuilt on open and refreshed incrementally when the file grows.
Appends happen under an advisory ``flock`` (single-line writes, so even
lockless platforms only risk a torn *last* line, which the reader
skips).  There is no eviction; the file is a cache, not a database, and
deleting it is always safe.

Lookup answers three ways, strongest first:

1. **Exact** — the digest set was stored verbatim.
2. **Subset-infeasible** — some stored *infeasible* set is a subset of
   the query: every model of the query would satisfy the subset too, so
   the query is infeasible.
3. **Superset-model** — some stored *feasible* superset has a recorded
   model: that model satisfies every query constraint, so the query is
   feasible (and the model is returned for warm starts / direct reuse).

All three are sound by construction given the injective serialization;
callers that re-use a superset model for ``solve`` re-verify it against
the live constraints anyway, so even a corrupted file cannot produce a
wrong *model* — only a wrong feasibility verdict, which the poisoned
cache tests pin as impossible for well-formed files.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import time
from collections import OrderedDict, deque
from typing import (Deque, Dict, FrozenSet, Iterable, Optional, Tuple,
                    Union)

try:
    import fcntl
except ImportError:  # non-POSIX: single-line appends are near-atomic
    fcntl = None

logger = logging.getLogger(__name__)

__all__ = ["DiskSolverCache"]

#: default file name inside a ``--cache-dir``
CACHE_FILE = "solver-cache.jsonl"

#: bounded scan windows for the subsumption passes (newest entries win;
#: exact lookups are unbounded dict hits and need no window)
MAX_INFEASIBLE_SCAN = 1024
MAX_MODEL_SCAN = 256


class DiskSolverCache:
    """Append-only, advisory-locked, digest-keyed solver-result store.

    ``path`` may be a directory (the conventional ``--cache-dir``; the
    store file is created inside it) or a file path.  Instances are
    cheap; every shard/worker opens its own against the shared file.
    """

    def __init__(self, path: Union[str, pathlib.Path],
                 max_entries: int = 65536):
        path = pathlib.Path(path)
        if path.suffix != ".jsonl":
            path.mkdir(parents=True, exist_ok=True)
            path = path / CACHE_FILE
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self.max_entries = max_entries
        #: digest set -> feasible? (exact tier)
        self._feasible: "OrderedDict[FrozenSet[str], bool]" = OrderedDict()
        #: infeasible digest sets, newest last (subset-subsumption tier)
        self._infeasible_sets: Deque[FrozenSet[str]] = deque(
            maxlen=MAX_INFEASIBLE_SCAN)
        #: (feasible digest set, model) pairs (superset-model tier)
        self._models: Deque[Tuple[FrozenSet[str], Dict[str, int]]] = deque(
            maxlen=MAX_MODEL_SCAN)
        #: (digest set, term digest, limit) -> (values, complete,
        #: reason, witnesses) — persisted ``feasible_values`` results;
        #: witnesses are re-verified by the loader, like models
        self._values: "OrderedDict[Tuple[FrozenSet[str], str, int], Tuple]" \
            = OrderedDict()
        self._offset = 0
        #: lookups answered / entries appended by *this* handle
        self.hits = 0
        self.appended = 0
        self.refresh()

    # -- file plumbing ---------------------------------------------------

    def _locked(self, fh, exclusive: bool):
        if fcntl is not None:
            waited = time.perf_counter()
            fcntl.flock(fh.fileno(),
                        fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            # contention meter: how long shards serialize on the shared
            # cache file (near-zero unless many writers collide)
            from .. import telemetry
            telemetry.histogram(
                "solver.diskcache.lock_wait_seconds").record(
                    time.perf_counter() - waited)

    def _unlocked(self, fh):
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def refresh(self) -> int:
        """Index entries appended since the last read (any process).

        Returns the number of new entries absorbed.  Cheap when nothing
        changed: one ``stat`` against the remembered offset.
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return 0
        if size <= self._offset:
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            self._locked(fh, exclusive=False)
            try:
                return self._absorb_new_lines(fh)
            finally:
                self._unlocked(fh)

    def _absorb_new_lines(self, fh) -> int:
        """Index complete lines between ``self._offset`` and EOF.

        The caller holds the lock.  Stops at a torn (newline-less) tail
        without advancing past it, so it is re-read once complete.
        """
        fh.seek(self._offset)
        absorbed = 0
        for line in fh:
            if not line.endswith("\n"):
                break  # torn tail: re-read it next refresh
            self._offset += len(line.encode("utf-8"))
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                logger.warning("skipping corrupt cache line in %s",
                               self.path)
                continue
            self._absorb(entry)
            absorbed += 1
        return absorbed

    def _absorb(self, entry: Dict) -> None:
        key = frozenset(entry.get("k", ()))
        if not key:
            return
        if "t" in entry:  # value-enumeration entry, not a verdict
            self._absorb_values(key, entry)
            return
        feasible = bool(entry.get("f"))
        self._feasible[key] = feasible
        self._feasible.move_to_end(key)
        while len(self._feasible) > self.max_entries:
            self._feasible.popitem(last=False)
        if not feasible:
            self._infeasible_sets.append(key)
        model = entry.get("m")
        if feasible and model:
            self._models.append(
                (key, {str(n): int(v) for n, v in model.items()}))

    def _absorb_values(self, key: FrozenSet[str], entry: Dict) -> None:
        try:
            index = (key, str(entry["t"]), int(entry["l"]))
            values = [int(v) for v in entry.get("v", ())]
            witnesses = [{str(n): int(v) for n, v in w.items()}
                         for w in entry.get("w", ())]
        except (KeyError, TypeError, ValueError):
            logger.warning("skipping malformed value entry in %s", self.path)
            return
        self._values[index] = (values, bool(entry.get("c")),
                               entry.get("r"), witnesses)
        self._values.move_to_end(index)
        while len(self._values) > self.max_entries:
            self._values.popitem(last=False)

    # -- writing ---------------------------------------------------------

    def store(self, digests: Iterable[str], feasible: bool,
              model: Optional[Dict[str, int]] = None) -> None:
        """Append one result (and index it locally).

        Duplicate appends are harmless — later lines win on replay, and
        results for one key never disagree (only proven verdicts are
        stored; timeouts never reach this tier).
        """
        key = frozenset(digests)
        if not key or self._feasible.get(key) is not None:
            return  # empty query or already persisted: nothing to add
        entry = {"k": sorted(key), "f": bool(feasible)}
        if feasible and model:
            # str() on write: the readers (_absorb here, JSON keys on
            # replay) only ever see string names, so a non-string term
            # name must not produce a differently-keyed local index
            entry["m"] = {str(name): int(value)
                          for name, value in model.items()}
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        wrote = False
        try:
            with open(self.path, "a+", encoding="utf-8") as fh:
                self._locked(fh, exclusive=True)
                try:
                    # absorb whatever other processes appended since the
                    # last refresh *before* touching the offset: jumping
                    # it to EOF below would skip their lines forever
                    # (refresh early-returns once size <= offset)
                    self._absorb_new_lines(fh)
                    if self._feasible.get(key) is None:
                        end = fh.seek(0, os.SEEK_END)
                        fh.write(line)
                        fh.flush()
                        if end == self._offset:
                            # no torn tail in between: our line is the
                            # next one, already indexed locally below
                            self._offset = fh.tell()
                        wrote = True
                finally:
                    self._unlocked(fh)
        except OSError as exc:
            logger.warning("disk cache append failed (%s); continuing "
                           "without persistence", exc)
            return
        if wrote:
            self.appended += 1
            self._absorb(entry)

    def store_values(self, digests: Iterable[str], term_digest: str,
                     limit: int, values: Iterable[int], complete: bool,
                     reason: Optional[str],
                     witnesses: Iterable[Dict[str, int]]) -> None:
        """Append one ``feasible_values`` enumeration.

        Keyed like other entries (the constraint-set digests) plus the
        enumerated term's digest and the request limit.  Witness models
        — one per value — are stored alongside so loaders can re-verify
        each value against their live constraints; a file that lies
        about a value therefore costs a wasted check, never a wrong
        enumeration.
        """
        key = frozenset(digests)
        # normalize on write exactly as _absorb normalizes on read
        # (str() on the term digest and every witness-model key): a
        # non-string term name must round-trip to the same index and
        # witness mapping a replaying reader builds, or the local index
        # diverges from the persisted one
        index = (key, str(term_digest), int(limit))
        if not key or index in self._values:
            return
        entry = {"k": sorted(key), "t": str(term_digest),
                 "l": int(limit),
                 "v": [int(v) for v in values], "c": bool(complete),
                 "w": [{str(n): int(v) for n, v in w.items()}
                       for w in witnesses]}
        if reason is not None:
            entry["r"] = reason
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        wrote = False
        try:
            with open(self.path, "a+", encoding="utf-8") as fh:
                self._locked(fh, exclusive=True)
                try:
                    self._absorb_new_lines(fh)
                    if index not in self._values:
                        end = fh.seek(0, os.SEEK_END)
                        fh.write(line)
                        fh.flush()
                        if end == self._offset:
                            self._offset = fh.tell()
                        wrote = True
                finally:
                    self._unlocked(fh)
        except OSError as exc:
            logger.warning("disk cache append failed (%s); continuing "
                           "without persistence", exc)
            return
        if wrote:
            self.appended += 1
            self._absorb(entry)

    # -- lookup ----------------------------------------------------------

    def lookup(self, digests: Iterable[str]):
        """Answer a feasibility query from the file, strongest tier first.

        Returns ``(feasible, model_or_None, kind)`` where ``kind`` is
        ``"exact"`` or ``"subsume"`` — or ``None`` on a miss.  The model
        is only ever returned for *feasible* answers.
        """
        key = frozenset(digests)
        if not key:
            return None
        self.refresh()
        exact = self._feasible.get(key)
        if exact is not None:
            self.hits += 1
            model = None
            if exact:
                for stored_key, stored_model in reversed(self._models):
                    if stored_key == key:
                        model = dict(stored_model)
                        break
            return exact, model, "exact"
        for infeasible in reversed(self._infeasible_sets):
            if infeasible <= key:
                self.hits += 1
                return False, None, "subsume"
        for stored_key, stored_model in reversed(self._models):
            if stored_key >= key:
                self.hits += 1
                return True, dict(stored_model), "subsume"
        return None

    def lookup_values(self, digests: Iterable[str], term_digest: str,
                      limit: int):
        """Exact-key enumeration lookup.

        Returns ``(values, complete, reason, witnesses)`` or ``None``.
        The caller re-verifies every witness before trusting the result.
        """
        key = frozenset(digests)
        if not key:
            return None
        self.refresh()
        index = (key, str(term_digest), int(limit))
        found = self._values.get(index)
        if found is None:
            return None
        self._values.move_to_end(index)
        self.hits += 1
        values, complete, reason, witnesses = found
        return (list(values), complete, reason,
                [dict(w) for w in witnesses])

    # -- stats -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._feasible),
            "infeasible_sets": len(self._infeasible_sets),
            "models": len(self._models),
            "value_entries": len(self._values),
            "hits": self.hits,
            "appended": self.appended,
        }

    def __len__(self) -> int:
        return len(self._feasible)

    def __repr__(self):
        return (f"DiskSolverCache({str(self.path)!r}, "
                f"{len(self._feasible)} entries)")
