"""Shared concrete semantics of IR arithmetic.

The concrete interpreter, the constraint solver's evaluator, and the
symbolic executor's constant folding must agree bit-for-bit; they all call
these two functions.
"""

from __future__ import annotations

from .types import mask, to_signed


def apply_binop(op: str, lhs: int, rhs: int, width: int) -> int:
    """Evaluate a binary IR operation on unsigned ``width``-bit values.

    Division/remainder by zero must be guarded by the caller (the
    interpreter turns it into a DIV_BY_ZERO failure).
    """
    lhs_w = mask(lhs, width)
    rhs_w = mask(rhs, width)
    if op == "add":
        return mask(lhs_w + rhs_w, width)
    if op == "sub":
        return mask(lhs_w - rhs_w, width)
    if op == "mul":
        return mask(lhs_w * rhs_w, width)
    if op == "udiv":
        return mask(lhs_w // rhs_w, width)
    if op == "urem":
        return mask(lhs_w % rhs_w, width)
    if op == "sdiv":
        lhs_s = to_signed(lhs, width)
        rhs_s = to_signed(rhs, width)
        quotient = abs(lhs_s) // abs(rhs_s)
        if (lhs_s < 0) != (rhs_s < 0):
            quotient = -quotient
        return mask(quotient, width)
    if op == "srem":
        lhs_s = to_signed(lhs, width)
        rhs_s = to_signed(rhs, width)
        remainder = abs(lhs_s) % abs(rhs_s)
        return mask(-remainder if lhs_s < 0 else remainder, width)
    if op == "and":
        return lhs_w & rhs_w
    if op == "or":
        return lhs_w | rhs_w
    if op == "xor":
        return lhs_w ^ rhs_w
    shift = rhs_w & (width - 1)
    if op == "shl":
        return mask(lhs_w << shift, width)
    if op == "lshr":
        return lhs_w >> shift
    if op == "ashr":
        return mask(to_signed(lhs, width) >> shift, width)
    raise ValueError(f"unknown binop {op!r}")


_CMP_TABLE = {
    "eq": lambda lu, ru, ls, rs: lu == ru,
    "ne": lambda lu, ru, ls, rs: lu != ru,
    "ult": lambda lu, ru, ls, rs: lu < ru,
    "ule": lambda lu, ru, ls, rs: lu <= ru,
    "ugt": lambda lu, ru, ls, rs: lu > ru,
    "uge": lambda lu, ru, ls, rs: lu >= ru,
    "slt": lambda lu, ru, ls, rs: ls < rs,
    "sle": lambda lu, ru, ls, rs: ls <= rs,
    "sgt": lambda lu, ru, ls, rs: ls > rs,
    "sge": lambda lu, ru, ls, rs: ls >= rs,
}


def apply_cmp(op: str, lhs: int, rhs: int, width: int) -> int:
    """Evaluate an IR comparison; returns 0 or 1."""
    try:
        fn = _CMP_TABLE[op]
    except KeyError:
        raise ValueError(f"unknown cmp {op!r}") from None
    return int(fn(mask(lhs, width), mask(rhs, width),
                  to_signed(lhs, width), to_signed(rhs, width)))
