"""§3.4 order recovery: replaying traces with ambiguous timestamps."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.symex.ordering import (ambiguous_groups, candidate_orders,
                                  replay_with_order_recovery)
from repro.trace.decoder import DecodedChunk, DecodedTrace, decode
from repro.trace.encoder import PTEncoder
from repro.trace.merge import (merge_trace_by_timestamp, split_per_cpu)
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload


def _chunk(tid, ts, n=1):
    return DecodedChunk(tid=tid, timestamp=ts, n_instrs=n)


class TestAmbiguousGroups:
    def test_distinct_timestamps_unambiguous(self):
        chunks = [_chunk(0, 1), _chunk(1, 2), _chunk(0, 3)]
        assert ambiguous_groups(chunks) == []

    def test_equal_ts_multi_thread(self):
        chunks = [_chunk(0, 1), _chunk(1, 1), _chunk(0, 2)]
        assert [list(g) for g in ambiguous_groups(chunks)] == [[0, 1]]

    def test_equal_ts_same_thread_not_ambiguous(self):
        chunks = [_chunk(0, 1), _chunk(0, 1)]
        assert ambiguous_groups(chunks) == []

    def test_multiple_groups(self):
        chunks = [_chunk(0, 1), _chunk(1, 1),
                  _chunk(0, 5),
                  _chunk(1, 9), _chunk(2, 9), _chunk(0, 9)]
        groups = [list(g) for g in ambiguous_groups(chunks)]
        assert groups == [[0, 1], [3, 4, 5]]


class TestCandidateOrders:
    def test_identity_first(self):
        chunks = [_chunk(0, 1), _chunk(1, 1)]
        first = next(candidate_orders(chunks))
        assert [c.tid for c in first] == [0, 1]

    def test_all_permutations_of_group(self):
        chunks = [_chunk(0, 1), _chunk(1, 1)]
        orders = [[c.tid for c in o] for o in candidate_orders(chunks)]
        assert orders == [[0, 1], [1, 0]]

    def test_unambiguous_single_order(self):
        chunks = [_chunk(0, 1), _chunk(1, 2)]
        assert len(list(candidate_orders(chunks))) == 1

    def test_bounded_total(self):
        chunks = [_chunk(tid, 1) for tid in range(6)]
        orders = list(candidate_orders(chunks, max_total=10))
        assert len(orders) == 10


class TestMerge:
    def _mt_trace(self, workload_name="python-2018-1000030"):
        workload = get_workload(workload_name)
        module = workload.fresh_module()
        encoder = PTEncoder(RingBuffer())
        run = Interpreter(module, workload.failing_env(1),
                          tracer=encoder).run()
        return module, run, decode(encoder.buffer)

    def test_split_preserves_per_thread_order(self):
        _, _, trace = self._mt_trace()
        streams = split_per_cpu(trace)
        assert len(streams) >= 2
        for tid, chunks in streams.items():
            original = [c for c in trace.chunks if c.tid == tid]
            assert chunks == original

    def test_merge_preserves_chunk_multiset(self):
        _, _, trace = self._mt_trace()
        merged = merge_trace_by_timestamp(trace)
        assert sorted(id(c) for c in merged.chunks) == \
            sorted(id(c) for c in trace.chunks)

    def test_merge_respects_timestamps(self):
        _, _, trace = self._mt_trace()
        merged = merge_trace_by_timestamp(trace)
        timestamps = [c.timestamp for c in merged.chunks]
        assert timestamps == sorted(timestamps)


class TestOrderRecovery:
    @pytest.mark.parametrize("name", ["python-2018-1000030",
                                      "memcached-2019-11596",
                                      "pbzip2-uaf"])
    def test_recovers_merged_mt_traces(self, name):
        """A timestamp-merged (order-lossy) trace still replays."""
        workload = get_workload(name)
        module = workload.fresh_module()
        encoder = PTEncoder(RingBuffer())
        run = Interpreter(module, workload.failing_env(1),
                          tracer=encoder).run()
        assert run.failure is not None
        merged = merge_trace_by_timestamp(decode(encoder.buffer))
        result = replay_with_order_recovery(
            module, merged, run.failure,
            work_limit=10_000_000)
        assert result.status in ("completed", "stalled")

    def test_exact_trace_needs_no_search(self, spawn_module):
        encoder = PTEncoder(RingBuffer())
        run = Interpreter(spawn_module, Environment({}, quantum=3),
                          tracer=encoder).run()
        trace = decode(encoder.buffer)
        result = replay_with_order_recovery(spawn_module, trace, None)
        assert result.completed

    def test_reports_failure_after_exhausting_orders(self, spawn_module):
        encoder = PTEncoder(RingBuffer())
        Interpreter(spawn_module, Environment({}, quantum=3),
                    tracer=encoder).run()
        trace = decode(encoder.buffer)
        # corrupt a chunk's instruction count: no order can replay this
        trace.chunks[-1].n_instrs += 10_000
        result = replay_with_order_recovery(spawn_module, trace, None)
        assert result.status == "diverged"
        assert "chunk orders" in result.divergence_reason
