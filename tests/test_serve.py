"""Fleet-mode reconstruction service (``repro serve``).

Pins the dedup/bucketing contract (satellite: identical failures from
distinct instances land in one bucket, distinct failures never merge,
convergence consumes the earliest-arriving occurrence
deterministically) and the headline property: the fleet's
reconstruction is byte-identical to the single-site path, because
every instance runs every deployed version exactly once.
"""

import time
from types import SimpleNamespace

import pytest

from repro import telemetry
from repro.core import ExecutionReconstructor, ProductionSite
from repro.errors import ReconstructionError
from repro.serve import (FailureReport, FleetService, SignatureBucket,
                         jitter_factor)
from repro.core.signature import FaultSignature
from repro.interp.env import Environment
from repro.workloads.registry import get_workload

WORKLOAD = "sqlite-7be932d"


def _single_site(name, *, pipeline=False):
    w = get_workload(name)
    reconstructor = ExecutionReconstructor(
        w.fresh_module(), work_limit=w.work_limit,
        max_occurrences=w.max_occurrences, pipeline=pipeline)
    return reconstructor.reconstruct(ProductionSite(w.failing_env))


def _streams(report):
    return {name: data.hex()
            for name, data in sorted(report.test_case.streams.items())}


def _sig(site="main:entry:0"):
    return FaultSignature("abort", site, ("main",))


def _report(instance, version, seq, payload):
    return FailureReport(instance=instance, workload="w", version=version,
                        signature=_sig(), occurrence=payload,
                        enqueued=time.time(), seq=seq)


class TestSignatureBucket:
    def _bucket(self, instances=3, errors=None, timeout=0.5):
        return SignatureBucket(_sig(), "w", instance_count=instances,
                               deploy_times={}, version_errors=errors or {},
                               take_timeout=timeout)

    def test_earliest_arrival_consumed_deterministically(self):
        bucket = self._bucket()
        # thread-scheduling luck delivered instance 2 first to the
        # dispatcher; arrival order (seq) decides, nothing else
        bucket.offer(_report(2, 0, seq=3, payload="first-arrival"))
        bucket.offer(_report(0, 0, seq=7, payload="second-arrival"))
        taken = bucket.take(0, block=True)
        assert taken.seq == 3
        assert taken.occurrence == "first-arrival"
        assert bucket.consumed == 1
        assert bucket.deduplicated == 1  # the loser of the race

    def test_later_same_version_reports_deduplicated(self):
        bucket = self._bucket()
        bucket.offer(_report(0, 0, seq=1, payload="winner"))
        bucket.take(0, block=True)
        disposition = bucket.offer(_report(1, 0, seq=2, payload="late"))
        assert disposition == "deduplicated"
        assert bucket.deduplicated == 1
        assert bucket.reports == 2

    def test_closed_bucket_counts_stale(self):
        bucket = self._bucket()
        bucket.close()
        assert bucket.offer(_report(0, 0, seq=1, payload="x")) == "stale"
        assert bucket.stale == 1

    def test_versions_isolated(self):
        bucket = self._bucket()
        bucket.offer(_report(0, 1, seq=1, payload="v1"))
        assert bucket.take(0, block=False) is None
        assert bucket.take(1, block=False).occurrence == "v1"

    def test_all_instances_errored_raises(self):
        bucket = self._bucket(
            instances=2, errors={0: ["boom-a", "boom-b"]})
        with pytest.raises(ReconstructionError, match="boom-a"):
            bucket.take(0, block=True)

    def test_take_times_out(self):
        bucket = self._bucket(timeout=0.2)
        started = time.monotonic()
        with pytest.raises(ReconstructionError, match="within"):
            bucket.take(0, block=True)
        assert time.monotonic() - started < 5.0

    def test_instances_reporting_tracked(self):
        bucket = self._bucket()
        bucket.offer(_report(0, 0, seq=1, payload="a"))
        bucket.offer(_report(2, 0, seq=2, payload="b"))
        assert bucket.instances_reporting == {0, 2}


class TestJitter:
    def test_deterministic(self):
        assert jitter_factor(1, 3) == jitter_factor(1, 3)

    def test_bounded(self):
        for i in range(8):
            for v in range(8):
                assert 0.5 <= jitter_factor(i, v) < 1.5

    def test_min_wait_shrinks_with_fleet_size(self):
        # the scalability effect BENCH_serve.json records: the best
        # instance's wait over a 4-version reconstruction shrinks
        # strictly as the fleet grows 1 -> 2 -> 4
        def total(n):
            return sum(min(jitter_factor(i, v) for i in range(n))
                       for v in range(4))
        assert total(1) > total(2) > total(4)


class TestFleetService:
    def test_identical_failures_from_distinct_instances_one_bucket(self):
        summary = FleetService([WORKLOAD], instances=3).run()
        assert len(summary.buckets) == 1
        bucket = summary.buckets[0]
        assert bucket.success and bucket.status == "done"
        # every instance reported the same fault; all landed together
        assert bucket.instances_reporting == 3
        assert bucket.reports >= 3
        assert bucket.deduplicated >= 2
        assert summary.succeeded

    def test_distinct_failures_never_merge(self):
        summary = FleetService([WORKLOAD, "php-74194"],
                               instances=2).run()
        assert len(summary.buckets) == 2
        digests = {b.signature["digest"] for b in summary.buckets}
        workloads = {b.workload for b in summary.buckets}
        assert len(digests) == 2
        assert workloads == {WORKLOAD, "php-74194"}
        for bucket in summary.buckets:
            assert bucket.success

    def test_byte_identical_to_single_site(self):
        single = _single_site(WORKLOAD)
        expected = _streams(single)
        for instances in (1, 3):
            summary = FleetService([WORKLOAD], instances=instances).run()
            bucket = summary.buckets[0]
            assert bucket.streams == expected
            assert bucket.iterations == len(single.iterations)
            assert bucket.verified == single.verified

    def test_pipeline_mode_byte_identical(self):
        single = _single_site(WORKLOAD, pipeline=True)
        summary = FleetService([WORKLOAD], instances=2,
                               pipeline=True).run()
        assert summary.buckets[0].streams == _streams(single)

    def test_deterministic_across_runs(self):
        first = FleetService([WORKLOAD], instances=3).run()
        second = FleetService([WORKLOAD], instances=3).run()
        assert first.buckets[0].streams == second.buckets[0].streams
        assert first.buckets[0].occurrences_consumed \
            == second.buckets[0].occurrences_consumed

    def test_parallel_buckets(self):
        summary = FleetService([WORKLOAD, "php-74194"], instances=2,
                               parallel=2).run()
        assert summary.succeeded
        assert len(summary.buckets) == 2

    def test_summary_shape(self):
        summary = FleetService([WORKLOAD], instances=2).run()
        data = summary.to_dict()
        assert data["instances"] == 2
        assert data["succeeded"] is True
        assert data["reports"] == summary.reports
        bucket = data["buckets"][0]
        for key in ("signature", "occurrences_consumed", "reports",
                    "deduplicated", "wait_seconds", "wall_seconds",
                    "streams"):
            assert key in bucket
        assert bucket["signature"]["digest"]

    def test_telemetry_folded_through_trace_context(self):
        sink = telemetry.MemorySink()
        registry = telemetry.Telemetry(sink)
        with telemetry.scoped(registry):
            FleetService([WORKLOAD], instances=2).run()
            counters = registry.snapshot()["counters"]
        assert counters["serve.reports"] >= 2
        assert counters["serve.buckets"] == 1
        assert counters["serve.instance_runs"] >= 2  # absorbed
        assert counters["serve.runs"] == 1
        # instance spans forwarded onto the shared trace timeline
        spans = [e for e in sink.events
                 if e.get("name") == "serve.instance_run"]
        assert spans
        assert all(e.get("trace_id", registry.trace_id)
                   == registry.trace_id for e in sink.events
                   if "trace_id" in e)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FleetService([WORKLOAD], instances=0)
        with pytest.raises(ValueError):
            FleetService([WORKLOAD], parallel=0)


class TestFleetErrors:
    def test_unserviced_when_every_instance_errors(self, monkeypatch,
                                                   abort_module):
        def explode(occ):
            raise RuntimeError("instance down")

        fake = SimpleNamespace(name="fake", failing_env=explode,
                               fresh_module=abort_module.clone,
                               work_limit=100_000, max_occurrences=5)
        monkeypatch.setattr("repro.serve.get_workload", lambda name: fake)
        summary = FleetService(["fake"], instances=2,
                               wait_timeout=10.0).run()
        assert summary.buckets == []
        assert "fake" in summary.unserviced
        assert "instance down" in summary.unserviced["fake"]
        assert not summary.succeeded

    def test_healthy_instances_cover_a_failed_one(self, monkeypatch,
                                                  abort_module):
        # instance whose every run errors: the fleet still converges
        # off the healthy instances' reports
        calls = {"n": 0}

        def flaky(occ):
            calls["n"] += 1
            if calls["n"] % 2 == 0:  # every other run across the fleet
                raise RuntimeError("flaky instance")
            return Environment({"stdin": b"\xc8"})

        fake = SimpleNamespace(name="fake", failing_env=flaky,
                               fresh_module=abort_module.clone,
                               work_limit=100_000, max_occurrences=5)
        monkeypatch.setattr("repro.serve.get_workload", lambda name: fake)
        summary = FleetService(["fake"], instances=2,
                               wait_timeout=30.0).run()
        assert len(summary.buckets) == 1
        assert summary.buckets[0].success
