"""Benchmark: regenerate Table 1 (the 13-bug reproduction study)."""

import pytest

from repro.evaluation.table1 import run_table1, run_workload
from repro.workloads import all_workloads


@pytest.mark.benchmark(group="table1")
def test_table1_full(benchmark, save_artifact):
    """End-to-end reconstruction of all 13 Table-1 bugs."""
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_artifact("table1", result.render())
    assert result.all_reproduced
    assert 1.5 <= result.mean_occurrences <= 5.0     # paper ~3.5
    assert result.single_occurrence_count == 2        # paper: 2


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("workload", all_workloads(),
                         ids=[w.name for w in all_workloads()])
def test_table1_per_bug(benchmark, workload):
    """Per-bug reconstruction latency (the offline cost of one failure)."""
    row = benchmark.pedantic(run_workload, args=(workload,),
                             rounds=1, iterations=1)
    assert row.verified
