"""Decoder robustness: corrupt streams fail cleanly, never crash."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer


class TestCorruptStreams:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=120), st.booleans())
    def test_random_bytes_raise_trace_error_or_decode(self, data, allow):
        rb = RingBuffer()
        rb.write(data)
        try:
            trace = decode(rb, allow_truncated=allow)
        except TraceError:
            return
        assert trace.instr_count >= 0  # decoded something structured

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=16),
           st.integers(min_value=0, max_value=200))
    def test_bitflips_in_valid_stream(self, noise, position):
        enc = PTEncoder(RingBuffer())
        for i in range(4):
            enc.begin_chunk(0, i)
            for bit in (True, False, True):
                enc.on_branch(bit)
            enc.on_ptwrite(i, i * 7)
            enc.end_chunk(10)
        data = bytearray(enc.buffer.contents())
        position %= len(data)
        data[position: position + len(noise)] = noise
        rb = RingBuffer()
        rb.write(bytes(data))
        try:
            decode(rb)
        except TraceError:
            pass  # clean rejection is the contract

    def test_empty_buffer_decodes_empty(self):
        rb = RingBuffer()
        trace = decode(rb)
        assert trace.chunks == [] and not trace.truncated
