"""The concrete interpreter: semantics, control flow, failures, threads."""

import pytest

from repro.errors import InterpError
from repro.interp.env import Environment
from repro.interp.failures import FailureKind
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder


def run_main(build_body, data=b"", quantum=50, **kwargs):
    """Build main with ``build_body(f)`` and run it."""
    b = ModuleBuilder("t")
    f = b.function("main", [])
    f.block("entry")
    build_body(f, b)
    module = b.build()
    env = Environment({"stdin": data}, quantum=quantum)
    return Interpreter(module, env, **kwargs).run()


class TestArithmetic:
    def test_const_and_output(self):
        def body(f, b):
            x = f.const(0x1234)
            f.output("stdout", x, 2)
            f.ret(0)
        res = run_main(body)
        assert res.outputs["stdout"] == b"\x34\x12"

    def test_width_masked_add(self):
        def body(f, b):
            x = f.add(250, 10, width=8)
            f.output("stdout", x, 1)
            f.ret(0)
        assert run_main(body).outputs["stdout"] == bytes([4])

    def test_select(self):
        def body(f, b):
            c = f.cmp("ult", 3, 5)
            x = f.select(c, 10, 20)
            f.output("stdout", x, 1)
            f.ret(0)
        assert run_main(body).outputs["stdout"] == bytes([10])

    def test_trunc_and_sext(self):
        def body(f, b):
            x = f.const(0xFF80)
            t = f.trunc(x, width=8)       # 0x80
            s = f.sext(t, from_width=8)   # sign-extended
            f.output("stdout", s, 8)
            f.ret(0)
        out = int.from_bytes(run_main(body).outputs["stdout"], "little")
        assert out == 0xFFFFFFFFFFFFFF80

    def test_division_by_zero_fails(self):
        def body(f, b):
            zero = f.input("stdin", 1)
            x = f.udiv(10, zero)
            f.ret(x)
        res = run_main(body, data=b"\x00")
        assert res.failure.kind == FailureKind.DIV_BY_ZERO


class TestControlFlow:
    def test_loop_counts(self):
        def body(f, b):
            f.const(0, dest="%i")
            f.jmp("loop")
            f.block("loop")
            done = f.cmp("uge", "%i", 5)
            f.br(done, "out", "again")
            f.block("again")
            f.add("%i", 1, dest="%i")
            f.jmp("loop")
            f.block("out")
            f.output("stdout", "%i", 1)
            f.ret(0)
        res = run_main(body)
        assert res.outputs["stdout"] == bytes([5])
        assert res.branch_count == 6

    def test_call_and_return(self, call_module):
        env = Environment({"stdin": bytes([21])})
        res = Interpreter(call_module, env).run()
        assert res.return_value == 42

    def test_recursion_depth_limit(self):
        b = ModuleBuilder("rec")
        f = b.function("f", [])
        f.block("entry")
        f.call("f", [])
        f.ret(0)
        m = b.function("main", [])
        m.block("entry")
        m.call("f", [])
        m.ret(0)
        env = Environment({})
        res = Interpreter(b.build(), env, stack_limit=64).run()
        assert res.failure.kind == FailureKind.STACK_OVERFLOW

    def test_max_steps_raises_without_flag(self):
        def body(f, b):
            f.jmp("spin")
            f.block("spin")
            f.jmp("spin")
        with pytest.raises(InterpError):
            run_main(body, max_steps=100)

    def test_max_steps_hang_as_failure(self):
        def body(f, b):
            f.jmp("spin")
            f.block("spin")
            f.jmp("spin")
        res = run_main(body, max_steps=100, hang_as_failure=True)
        assert res.failure.kind == FailureKind.HANG


class TestFailures:
    def test_abort(self, abort_module):
        res = Interpreter(abort_module,
                          Environment({"stdin": b"\xff"})).run()
        assert res.failure.kind == FailureKind.ABORT
        assert res.failure.call_stack == ("main",)

    def test_no_failure_on_good_input(self, abort_module):
        res = Interpreter(abort_module,
                          Environment({"stdin": b"\x05"})).run()
        assert res.failure is None

    def test_assert_failure_message(self):
        def body(f, b):
            f.assert_(0, "invariant broken")
            f.ret(0)
        res = run_main(body)
        assert res.failure.kind == FailureKind.ASSERT
        assert "invariant broken" in res.failure.message

    def test_failure_point_is_failing_instruction(self, abort_module):
        res = Interpreter(abort_module,
                          Environment({"stdin": b"\xff"})).run()
        assert res.failure.point.block == "boom"

    def test_failing_instruction_not_counted(self):
        def body(f, b):
            f.abort("now")
        res = run_main(body)
        assert res.instr_count == 0

    def test_matches_is_instance_invariant(self, abort_module):
        r1 = Interpreter(abort_module, Environment({"stdin": b"\xff"})).run()
        r2 = Interpreter(abort_module, Environment({"stdin": b"\xcc"})).run()
        assert r1.failure.matches(r2.failure)


class TestMemoryOps:
    def test_global_store_load(self):
        b = ModuleBuilder("g")
        b.global_("G", 16)
        f = b.function("main", [])
        f.block("entry")
        g = f.global_addr("G")
        f.store(g, 0xAB, 1)
        v = f.load(g, 1)
        f.output("stdout", v, 1)
        f.ret(0)
        res = Interpreter(b.build(), Environment({})).run()
        assert res.outputs["stdout"] == b"\xab"

    def test_alloca_freed_on_return(self):
        b = ModuleBuilder("a")
        b.global_("leak", 8)
        f = b.function("callee", [])
        f.block("entry")
        p = f.alloca("buf", 8)
        g = f.global_addr("leak")
        f.store(g, p, 8)
        f.ret(0)
        m = b.function("main", [])
        m.block("entry")
        m.call("callee", [])
        g = m.global_addr("leak")
        p = m.load(g, 8)
        m.load(p, 1)  # dangling stack pointer
        m.ret(0)
        res = Interpreter(b.build(), Environment({})).run()
        assert res.failure.kind == FailureKind.USE_AFTER_FREE

    def test_malloc_free_cycle(self):
        def body(f, b):
            p = f.malloc(16)
            f.store(p, 7, 1)
            f.free(p)
            f.ret(0)
        assert run_main(body).failure is None

    def test_gep_scaling(self):
        b = ModuleBuilder("g")
        b.global_("G", 32)
        f = b.function("main", [])
        f.block("entry")
        g = f.global_addr("G")
        p = f.gep(g, 3, 4)
        f.store(p, 0x11, 1)
        q = f.gep(g, 12, 1)
        v = f.load(q, 1)
        f.output("stdout", v, 1)
        f.ret(0)
        res = Interpreter(b.build(), Environment({})).run()
        assert res.outputs["stdout"] == b"\x11"


class TestThreads:
    def test_spawn_join_and_shared_counter(self, spawn_module):
        res = Interpreter(spawn_module,
                          Environment({}, quantum=1000)).run()
        # coarse quantum: no interleaving, both increments land
        assert res.outputs["stdout"] == (20).to_bytes(8, "little")
        assert res.thread_count == 3

    def test_lost_update_with_fine_quantum(self, spawn_module):
        res = Interpreter(spawn_module, Environment({}, quantum=3)).run()
        total = int.from_bytes(res.outputs["stdout"], "little")
        assert total < 20  # the race loses updates

    def test_deterministic_given_quantum(self, spawn_module):
        runs = [Interpreter(spawn_module,
                            Environment({}, quantum=7)).run().outputs
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_deadlock_detected(self):
        b = ModuleBuilder("dl")
        f = b.function("other", [])
        f.block("entry")
        f.lock(1)
        f.ret(0)
        m = b.function("main", [])
        m.block("entry")
        m.lock(1)
        t = m.spawn("other", [], dest="%t")
        m.join("%t")  # waits for a thread stuck on our mutex
        m.ret(0)
        res = Interpreter(b.build(), Environment({})).run()
        assert res.failure.kind == FailureKind.HANG

    def test_mutex_provides_mutual_exclusion(self):
        b = ModuleBuilder("mx")
        b.global_("counter", 8)
        f = b.function("worker", [])
        f.block("entry")
        g = f.global_addr("counter", dest="%g")
        f.const(0, dest="%i")
        f.jmp("loop")
        f.block("loop")
        done = f.cmp("uge", "%i", 10)
        f.br(done, "out", "body")
        f.block("body")
        f.lock(1)
        v = f.load("%g", 8, dest="%v")
        f.add("%v", 1, dest="%v")
        f.store("%g", "%v", 8)
        f.unlock(1)
        f.add("%i", 1, dest="%i")
        f.jmp("loop")
        f.block("out")
        f.ret(0)
        m = b.function("main", [])
        m.block("entry")
        t0 = m.spawn("worker", [], dest="%t0")
        t1 = m.spawn("worker", [], dest="%t1")
        m.join("%t0")
        m.join("%t1")
        g = m.global_addr("counter", dest="%g")
        v = m.load("%g", 8, dest="%v")
        m.output("stdout", "%v", 8)
        m.ret(0)
        res = Interpreter(b.build(), Environment({}, quantum=3)).run()
        assert int.from_bytes(res.outputs["stdout"], "little") == 20
