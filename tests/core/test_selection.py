"""Key data value selection: costs, min-cost determining sets, the
paper's running-example outcome."""

from collections import Counter

import pytest

from repro.core.selection import (PTW_HEADER_BYTES, RecordingItem,
                                  select_key_values)
from repro.ir.module import ProgramPoint
from repro.solver import terms as T
from repro.symex.result import StallInfo


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def _pt(func, block, index):
    return ProgramPoint(func, block, index)


def _tag(term, func, block, index, reg, size):
    term.prov = (_pt(func, block, index), reg, size)
    return term


class TestRecordingItemCost:
    def test_cost_counts_packet_framing(self):
        item = RecordingItem(_pt("f", "b", 0), "%x", 4)
        counts = Counter({_pt("f", "b", 0): 3})
        assert item.cost(counts) == (4 + PTW_HEADER_BYTES) * 3

    def test_unexecuted_point_costs_one_packet(self):
        item = RecordingItem(_pt("f", "b", 0), "%x", 4)
        assert item.cost(Counter()) == 4 + PTW_HEADER_BYTES


class TestPaperExample:
    """§3.3.2: bottleneck {x, λc, V[x]} minimizes to record {x, λc}."""

    def _stall(self):
        V = T.array("V", bytes(1024))
        lam_a = _tag(T.var("a"), "main", "entry", 0, "%ina", 4)
        lam_b = _tag(T.var("b"), "main", "entry", 1, "%inb", 4)
        lam_c = _tag(T.var("c"), "main", "entry", 2, "%inc", 4)
        x = _tag(T.binop("add", lam_a, lam_b, 32), "foo", "entry", 0,
                 "%x", 4)
        w2 = T.store(V, x, T.const(1, 8))
        w3 = T.store(w2, lam_c, T.const(512))
        vx = _tag(T.read(w3, x), "foo", "after", 0, "%vx", 4)
        w4 = T.store(w3, vx, x)
        counts = Counter({p: 1 for p in [
            _pt("main", "entry", 0), _pt("main", "entry", 1),
            _pt("main", "entry", 2), _pt("foo", "entry", 0),
            _pt("foo", "after", 0)]})
        return StallInfo(constraints=[], stall_terms=[], chains=[w4],
                         exec_counts=counts)

    def test_recording_set_is_x_and_c(self):
        plan = select_key_values(self._stall())
        registers = {item.register for item in plan.items}
        assert registers == {"%x", "%inc"}

    def test_vx_not_recorded(self):
        plan = select_key_values(self._stall())
        assert "%vx" not in {item.register for item in plan.items}

    def test_bottleneck_has_three_members(self):
        plan = select_key_values(self._stall())
        assert len(plan.bottleneck) == 3


class TestMinimization:
    def test_cheap_children_replace_expensive_parent(self):
        # parent executed 100x; children once each
        a = _tag(T.var("a"), "f", "b", 0, "%a", 1)
        b_ = _tag(T.var("b"), "f", "b", 1, "%b", 1)
        parent = _tag(T.binop("add", a, b_, 8), "f", "hot", 0, "%p", 8)
        arr = T.array("A", bytes(64))
        chain = T.store(arr, parent, T.const(1, 8))
        counts = Counter({_pt("f", "hot", 0): 100,
                          _pt("f", "b", 0): 1, _pt("f", "b", 1): 1})
        stall = StallInfo(constraints=[], stall_terms=[], chains=[chain],
                          exec_counts=counts)
        plan = select_key_values(stall)
        assert {i.register for i in plan.items} == {"%a", "%b"}

    def test_expensive_children_keep_parent(self):
        a = _tag(T.var("a"), "f", "hot", 0, "%a", 8)
        b_ = _tag(T.var("b"), "f", "hot", 1, "%b", 8)
        parent = _tag(T.binop("add", a, b_, 8), "f", "cold", 0, "%p", 1)
        arr = T.array("A", bytes(64))
        chain = T.store(arr, parent, T.const(1, 8))
        counts = Counter({_pt("f", "cold", 0): 1,
                          _pt("f", "hot", 0): 50, _pt("f", "hot", 1): 50})
        stall = StallInfo(constraints=[], stall_terms=[], chains=[chain],
                          exec_counts=counts)
        plan = select_key_values(stall)
        assert {i.register for i in plan.items} == {"%p"}

    def test_unrecordable_term_skipped(self):
        free = T.var("nowhere")  # no provenance anywhere
        arr = T.array("A", bytes(8))
        chain = T.store(arr, free, T.const(1, 8))
        stall = StallInfo(constraints=[], stall_terms=[], chains=[chain],
                          exec_counts=Counter())
        plan = select_key_values(stall)
        assert plan.items == []


class TestExclusions:
    def test_already_recorded_forces_deeper(self):
        a = _tag(T.var("a"), "f", "b", 0, "%a", 8)
        parent = _tag(T.binop("add", a, T.const(1), 8), "f", "b", 1,
                      "%p", 1)
        arr = T.array("A", bytes(8))
        chain = T.store(arr, parent, T.const(1, 8))
        stall = StallInfo(constraints=[], stall_terms=[], chains=[chain],
                          exec_counts=Counter())
        first = select_key_values(stall)
        assert {i.register for i in first.items} == {"%p"}
        second = select_key_values(stall, frozenset({("f", "%p")}))
        assert {i.register for i in second.items} == {"%a"}

    def test_everything_excluded_yields_empty(self):
        a = _tag(T.var("a"), "f", "b", 0, "%a", 1)
        arr = T.array("A", bytes(8))
        chain = T.store(arr, a, T.const(1, 8))
        stall = StallInfo(constraints=[], stall_terms=[], chains=[chain],
                          exec_counts=Counter())
        plan = select_key_values(stall, frozenset({("f", "%a")}))
        assert plan.items == []


class TestFallbacks:
    def test_no_chains_uses_stall_terms(self):
        x = _tag(T.binop("mul", T.var("a"), T.const(3), 8), "f", "b", 0,
                 "%x", 4)
        x.args[0].prov = (_pt("f", "in", 0), "%ina", 1)
        stall = StallInfo(constraints=[], stall_terms=[x], chains=[],
                          exec_counts=Counter())
        plan = select_key_values(stall)
        assert plan.items  # found something to record

    def test_no_chains_no_stall_terms_uses_constraints(self):
        a = _tag(T.var("a"), "f", "in", 0, "%a", 1)
        constraint = T.cmp("eq", T.binop("mul", a, T.const(3), 8),
                           T.const(5), 8)
        stall = StallInfo(constraints=[constraint], stall_terms=[],
                          chains=[], exec_counts=Counter())
        plan = select_key_values(stall)
        assert {i.register for i in plan.items} == {"%a"}
