"""The paper's Fig. 3 running example, reconstructed end to end.

Builds the exact ``foo(a, b, c, d)`` program from §3.2, lets it fail in
'production' with ``foo(0, 2, 0, 2)``, and checks that the iterative
loop behaves like the walkthrough: the first selection records ``x``,
and reconstruction completes with a verified test case in a handful of
occurrences.
"""

import struct

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.env import Environment
from repro.interp.failures import FailureKind
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder


def build_fig3():
    b = ModuleBuilder("fig3")
    b.global_("V", 1024)  # uint32 V[256]
    f = b.function("foo", ["a", "b", "c", "d"])
    f.block("entry")
    f.add("%a", "%b", width=32, dest="%x")
    f.br(f.cmp("ult", "%x", 256, width=32), "chk_c", "out")
    f.block("chk_c")
    f.br(f.cmp("ult", "%c", 256, width=32), "chk_d", "out")
    f.block("chk_d")
    f.br(f.cmp("ult", "%d", 256, width=32), "body", "out")
    f.block("body")
    f.global_addr("V", dest="%V")
    p1 = f.gep("%V", "%x", 4)
    f.store(p1, 1, 4)                       # V[x] = 1
    p2 = f.gep("%V", "%c", 4)
    f.load(p2, 4, dest="%vc")               # V[c]
    f.br(f.cmp("eq", "%vc", 0, width=32), "set_c", "after_c")
    f.block("set_c")
    f.store(p2, 512, 4)                     # V[c] = 512
    f.jmp("after_c")
    f.block("after_c")
    f.load(p1, 4, dest="%vx")               # V[x]
    p3 = f.gep("%V", "%vx", 4)
    f.store(p3, "%x", 4)                    # V[V[x]] = x
    f.br(f.cmp("ult", "%c", "%d", width=32), "chk2", "out")
    f.block("chk2")
    pd = f.gep("%V", "%d", 4)
    f.load(pd, 4, dest="%vd")               # V[d]
    pvd = f.gep("%V", "%vd", 4)
    f.load(pvd, 4, dest="%vvd")             # V[V[d]]
    f.br(f.cmp("eq", "%vvd", "%x", width=32), "boom", "out")
    f.block("boom")
    f.abort("fig3 abort")
    f.block("out")
    f.ret(0)

    m = b.function("main", [])
    m.block("entry")
    args = [m.input("stdin", 4) for _ in range(4)]
    m.call("foo", args)
    m.ret(0)
    return b.build()


def fig3_env(occ=1):
    return Environment({"stdin": struct.pack("<IIII", 0, 2, 0, 2)})


@pytest.fixture(scope="module")
def fig3_module():
    return build_fig3()


class TestFig3Concrete:
    def test_production_input_aborts(self, fig3_module):
        run = Interpreter(fig3_module, fig3_env()).run()
        assert run.failure is not None
        assert run.failure.kind == FailureKind.ABORT
        assert run.failure.point.block == "boom"

    def test_benign_input_passes(self, fig3_module):
        env = Environment({"stdin": struct.pack("<IIII", 1, 2, 4, 8)})
        assert Interpreter(fig3_module, env).run().failure is None


class TestFig3Reconstruction:
    def test_small_budget_iterates_and_succeeds(self, fig3_module):
        er = ExecutionReconstructor(fig3_module, work_limit=400,
                                    max_occurrences=10)
        report = er.reconstruct(ProductionSite(fig3_env))
        assert report.success and report.verified
        assert 2 <= report.occurrences <= 6

    def test_first_selection_records_x(self, fig3_module):
        er = ExecutionReconstructor(fig3_module, work_limit=400,
                                    max_occurrences=10)
        report = er.reconstruct(ProductionSite(fig3_env))
        first = report.iterations[0].recorded_items
        assert "%x" in {item.register for item in first}

    def test_generated_input_relations(self, fig3_module):
        """Any generated input must satisfy x == d and c != x (paper §1)."""
        er = ExecutionReconstructor(fig3_module, work_limit=400,
                                    max_occurrences=10)
        report = er.reconstruct(ProductionSite(fig3_env))
        data = report.test_case.streams["stdin"]
        a, b, c, d = struct.unpack("<IIII", data[:16].ljust(16, b"\x00"))
        x = (a + b) & 0xFFFFFFFF
        assert x == d
        assert c != x
        assert c < d

    def test_larger_budget_fewer_occurrences(self, fig3_module):
        small = ExecutionReconstructor(fig3_module, work_limit=400,
                                       max_occurrences=10).reconstruct(
            ProductionSite(fig3_env))
        large = ExecutionReconstructor(fig3_module, work_limit=100_000,
                                       max_occurrences=10).reconstruct(
            ProductionSite(fig3_env))
        assert large.occurrences <= small.occurrences
