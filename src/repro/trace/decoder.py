"""PT decoder: raw ring-buffer bytes back into per-chunk events.

The decoded trace is what ER's offline analysis engine consumes: an
ordered list of scheduler chunks, each carrying the thread id, a coarse
timestamp, the retired-instruction count, and the in-order TNT/PTW events.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

from .. import telemetry
from ..errors import TraceError, TraceTruncatedError
from .packets import (CHD, CHE, OVF, PSB, PTW, TNT, ChunkEvent, PtwEvent,
                      TntEvent, decode_tnt, decode_varint)
from .ringbuffer import RingBuffer

logger = logging.getLogger(__name__)


@dataclass
class DecodedChunk:
    """One scheduler chunk of a decoded trace."""

    tid: int
    timestamp: int
    n_instrs: int = 0
    events: List[ChunkEvent] = field(default_factory=list)

    def branch_bits(self) -> List[bool]:
        return [e.taken for e in self.events if isinstance(e, TntEvent)]


@dataclass
class DecodedTrace:
    """A fully decoded trace, oldest chunk first."""

    chunks: List[DecodedChunk] = field(default_factory=list)
    truncated: bool = False

    @property
    def instr_count(self) -> int:
        return sum(c.n_instrs for c in self.chunks)

    @property
    def branch_count(self) -> int:
        return sum(len(c.branch_bits()) for c in self.chunks)

    def ptwrites(self) -> List[PtwEvent]:
        return [e for c in self.chunks for e in c.events
                if isinstance(e, PtwEvent)]

    def tids(self) -> List[int]:
        seen: List[int] = []
        for chunk in self.chunks:
            if chunk.tid not in seen:
                seen.append(chunk.tid)
        return seen


def decode(buffer: RingBuffer, *, allow_truncated: bool = False) -> DecodedTrace:
    """Decode a ring buffer into chunks.

    If the buffer wrapped, the head of the execution is gone; ER cannot
    shepherd symbolic execution without the full path, so by default this
    raises :class:`TraceTruncatedError`.  ``allow_truncated=True`` instead
    resynchronizes at the first surviving PSB and returns the suffix
    (useful for REPT-style partial analyses).
    """
    data = buffer.contents()
    start = 0
    truncated = buffer.wrapped
    tel = telemetry.get()
    if truncated:
        tel.count("trace.decode_truncated")
        if not allow_truncated:
            raise TraceTruncatedError(
                f"ring buffer wrapped: {buffer.total_written - len(data)} "
                "bytes lost")
        start = data.find(bytes((PSB,)))
        if start < 0:
            return DecodedTrace(chunks=[], truncated=True)
    with tel.span("trace.decode", bytes=len(data)):
        trace = _decode_bytes(data, start, truncated)
    tel.count("trace.decodes")
    tel.count("trace.chunks_decoded", len(trace.chunks))
    tel.count("trace.events_decoded",
              sum(len(c.events) for c in trace.chunks))
    logger.debug("decoded %d bytes into %d chunks (%d instrs)",
                 len(data), len(trace.chunks), trace.instr_count)
    return trace


def _decode_bytes(data: bytes, pos: int, truncated: bool) -> DecodedTrace:
    trace = DecodedTrace(truncated=truncated)
    chunk: Optional[DecodedChunk] = None
    while pos < len(data):
        kind = data[pos]
        pos += 1
        if kind == PSB:
            continue
        if kind == CHD:
            if chunk is not None:
                raise TraceError("CHD inside an open chunk")
            tid, pos = decode_varint(data, pos)
            timestamp, pos = decode_varint(data, pos)
            chunk = DecodedChunk(tid, timestamp)
            continue
        if chunk is None:
            # A packet belonging to a chunk whose header was lost to
            # truncation: skip until the next chunk header.
            if truncated:
                pos = _skip_packet(kind, data, pos)
                continue
            raise TraceError(f"packet {kind:#x} outside a chunk")
        if kind == TNT:
            if pos >= len(data):
                raise TraceError("truncated TNT packet")
            for bit in decode_tnt(data[pos]):
                chunk.events.append(TntEvent(bit))
            pos += 1
        elif kind == PTW:
            tag, pos = decode_varint(data, pos)
            if pos + 8 > len(data):
                raise TraceError("truncated PTW packet")
            value = int.from_bytes(data[pos:pos + 8], "little")
            pos += 8
            chunk.events.append(PtwEvent(tag, value))
        elif kind == CHE:
            chunk.n_instrs, pos = decode_varint(data, pos)
            trace.chunks.append(chunk)
            chunk = None
        elif kind == OVF:
            trace.truncated = True
        else:
            raise TraceError(f"unknown packet kind {kind:#x} at {pos - 1}")
    if chunk is not None:
        # Failure mid-chunk: interpreter always closes chunks, so an open
        # chunk means the stream was cut; keep what we have.
        trace.chunks.append(chunk)
    return trace


def _skip_packet(kind: int, data: bytes, pos: int) -> int:
    if kind == TNT:
        return pos + 1
    if kind == PTW:
        _, pos = decode_varint(data, pos)
        return pos + 8
    if kind in (CHE,):
        _, pos = decode_varint(data, pos)
        return pos
    return pos
