"""Constraint graph: chains, bottleneck sets (§3.3)."""

from collections import Counter

import pytest

from repro.core.constraint_graph import ConstraintGraph, WriteChain
from repro.solver import terms as T
from repro.symex.result import StallInfo


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def _chain(name, size, indices, values=None):
    arr = T.array(name, bytes(size))
    node = arr
    for i, idx in enumerate(indices):
        value = values[i] if values else T.const(i, 8)
        node = T.store(node, idx, value)
    return node


class TestChains:
    def test_single_chain_found(self):
        top = _chain("A", 64, [T.var("i"), T.var("j")])
        graph = ConstraintGraph([top])
        chains = graph.write_chains()
        assert len(chains) == 1 and len(chains[0]) == 2
        assert chains[0].top is top

    def test_longest_vs_largest(self):
        long_small = _chain("S", 16, [T.var(f"i{k}") for k in range(5)])
        short_big = _chain("B", 4096, [T.var("j")])
        graph = ConstraintGraph([long_small, short_big])
        assert graph.longest_chain().base.args[0] == "S"
        assert graph.largest_object_chain().base.args[0] == "B"

    def test_no_chains(self):
        graph = ConstraintGraph([T.cmp("eq", T.var("a"), T.const(1), 8)])
        assert graph.write_chains() == []
        assert graph.longest_chain() is None
        assert graph.bottleneck_set() == []

    def test_object_size(self):
        chain = WriteChain([_chain("A", 128, [T.var("i")])])
        assert chain.object_size == 128


class TestBottleneck:
    def test_symbolic_members_only(self):
        idx = T.var("i")
        top = _chain("A", 64, [idx, T.const(3)],
                     values=[T.const(1, 8), T.var("v")])
        graph = ConstraintGraph([top])
        members = graph.bottleneck_set()
        assert idx in members and T.var("v") in members
        assert all(not m.is_const for m in members)

    def test_members_deduplicated(self):
        idx = T.var("i")
        top = _chain("A", 64, [idx, idx])
        graph = ConstraintGraph([top])
        assert graph.bottleneck_set().count(idx) == 1

    def test_union_of_both_chains(self):
        long_small = _chain("S", 16, [T.var("a"), T.var("b")])
        short_big = _chain("B", 4096, [T.var("c")])
        graph = ConstraintGraph([long_small, short_big])
        names = {m.args[0] for m in graph.bottleneck_set()}
        assert names == {"a", "b", "c"}

    def test_from_stall(self):
        top = _chain("A", 64, [T.var("i")])
        stall = StallInfo(constraints=[T.cmp("ult", T.var("i"),
                                             T.const(64), 8)],
                          stall_terms=[], chains=[top],
                          exec_counts=Counter())
        graph = ConstraintGraph.from_stall(stall)
        assert graph.bottleneck_set() == [T.var("i")]

    def test_node_count(self):
        top = _chain("A", 8, [T.var("i")])
        graph = ConstraintGraph([top])
        # store + array + var + const value
        assert graph.node_count == 4


class TestPaperExample:
    """The Fig. 3 / Fig. 4 walkthrough, straight from the paper."""

    def _fig4_graph(self):
        # V: 1024-byte array; writes: V[x]=1, V[λc]=512, V[V[x]]=x
        V = T.array("V", bytes(1024))
        lam_a, lam_b, lam_c = T.var("a"), T.var("b"), T.var("c")
        x = T.binop("add", lam_a, lam_b, 32)
        w2 = T.store(V, x, T.const(1, 8))
        w3 = T.store(w2, lam_c, T.const(512))
        vx = T.read(w3, x)              # V[x]
        w4 = T.store(w3, vx, x)         # V[V[x]] = x
        return w4, x, lam_c, vx

    def test_bottleneck_is_x_c_vx(self):
        w4, x, lam_c, vx = self._fig4_graph()
        graph = ConstraintGraph([w4])
        members = set(graph.bottleneck_set())
        assert members == {x, lam_c, vx}

    def test_single_chain_of_three(self):
        w4, *_ = self._fig4_graph()
        graph = ConstraintGraph([w4])
        chains = graph.write_chains()
        assert len(chains) == 1 and len(chains[0]) == 3
