"""Mini PNG chunk reader: libpng CVE-2004-0597 (buffer overflow).

The real bug: libpng trusts the length field of a ``tRNS`` chunk and
copies it into a fixed 256-entry buffer.  The mini reader walks chunks
(4-byte length, 4-byte type, payload) and copies ``tRNS`` payloads into
the fixed transparency buffer with no length validation.

This is one of the two Table-1 failures ER reproduces from a *single*
occurrence: the failure conditions are direct comparisons on header
bytes (no symbolic-index write chains), so shepherded symbolic
execution completes on the first trace.

The image arrives on the ``png`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..solver.budget import WORK_PER_SECOND
from .base import Workload

TRNS_BUF = 256

TYPE_IHDR = 0x52444849  # 'IHDR' little-endian
TYPE_TRNS = 0x534E5274  # 'tRNS'
TYPE_IDAT = 0x54414449  # 'IDAT'
TYPE_IEND = 0x444E4549  # 'IEND'


def build_libpng() -> Module:
    b = ModuleBuilder("libpng-2004-0597")
    b.global_("trans_buf", TRNS_BUF)
    b.global_("palette", 32)

    f = b.function("main", [])
    f.block("entry")
    sig = f.input("png", 2, dest="%sig")
    ok = f.cmp("eq", "%sig", 0x5089, width=16)
    f.br(ok, "chunks", "bad")

    f.block("chunks")
    length = f.input("png", 4, dest="%len")
    ctype = f.input("png", 4, dest="%type")
    is_end = f.cmp("eq", "%type", TYPE_IEND, width=32)
    f.br(is_end, "out", "chk_trns")
    f.block("chk_trns")
    is_trns = f.cmp("eq", "%type", TYPE_TRNS, width=32)
    f.br(is_trns, "trns", "skip")

    f.block("trns")
    tb = f.global_addr("trans_buf", dest="%tb")
    f.const(0, dest="%i")
    f.jmp("tcopy")
    f.block("tcopy")
    done = f.cmp("uge", "%i", "%len", width=32)
    f.br(done, "chunks", "tbody")
    f.block("tbody")
    ch = f.input("png", 1, dest="%ch")
    p = f.gep("%tb", "%i", 1)
    f.store(p, "%ch", 1)     # BUG: length never checked against 256
    f.add("%i", 1, dest="%i")
    f.jmp("tcopy")

    f.block("skip")
    f.const(0, dest="%j")
    f.const(0, dest="%crc")
    f.jmp("scopy")
    f.block("scopy")
    sdone = f.cmp("uge", "%j", "%len", width=32)
    f.br(sdone, "chunks", "sbody")
    f.block("sbody")
    raw = f.input("png", 1, dest="%raw")
    # Paeth-style defilter + CRC update: the per-byte decode work
    f.const(0, dest="%r")
    f.jmp("defilter")
    f.block("defilter")
    rdone = f.cmp("uge", "%r", 6)
    f.br(rdone, "snext", "rbody")
    f.block("rbody")
    mixed = f.xor("%crc", "%raw", width=32)
    sh = f.lshr(mixed, 1, width=32)
    f.add(sh, 0x77073096, width=32, dest="%crc")
    f.add("%r", 1, dest="%r")
    f.jmp("defilter")
    f.block("snext")
    f.add("%j", 1, dest="%j")
    f.jmp("scopy")

    f.block("bad")
    f.ret(1)
    f.block("out")
    f.ret(0)
    return b.build()


def _chunk(ctype: int, payload: bytes) -> bytes:
    return (len(payload).to_bytes(4, "little")
            + ctype.to_bytes(4, "little") + payload)


def _png(*chunks: bytes) -> bytes:
    return b"\x89\x50" + b"".join(chunks) + _chunk(TYPE_IEND, b"")


def _failing_libpng(occurrence: int) -> Environment:
    rng = random.Random(400 + occurrence)
    ihdr = bytes(rng.randint(0, 255) for _ in range(13))
    trns = bytes(rng.randint(1, 255) for _ in range(TRNS_BUF + 16))
    return Environment({"png": _png(_chunk(TYPE_IHDR, ihdr),
                                    _chunk(TYPE_TRNS, trns))})


def _benign_libpng(seed: int) -> Environment:
    rng = random.Random(seed)
    chunks = [_chunk(TYPE_IHDR, bytes(rng.randint(0, 255)
                                      for _ in range(13)))]
    for _ in range(rng.randint(20, 30)):
        if rng.random() < 0.3:
            chunks.append(_chunk(TYPE_TRNS, bytes(
                rng.randint(0, 255) for _ in range(rng.randint(1, 200)))))
        else:
            chunks.append(_chunk(TYPE_IDAT, bytes(
                rng.randint(0, 255) for _ in range(rng.randint(16, 120)))))
    return Environment({"png": _png(*chunks)})


def libpng_workloads():
    return [Workload(
        name="libpng-2004-0597", app="Libpng 1.2.5",
        bug_id="CVE-2004-0597",
        bug_type="Buffer overflow", multithreaded=False,
        expected_kind=FailureKind.OUT_OF_BOUNDS,
        build=build_libpng,
        failing_env=_failing_libpng, benign_env=_benign_libpng,
        bench_name="resvg-test-suite",
        work_limit=2 * WORK_PER_SECOND,
        paper_occurrences=1, paper_instrs=71_752)]
