"""Static verifier: the mistakes it must catch."""

import pytest

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder
from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module


def _module_with(func: Function) -> Module:
    m = Module()
    m.add_function(func)
    return m


def _main(*instrs) -> Module:
    func = Function("main")
    block = func.add_block("entry")
    block.instrs.extend(instrs)
    return _module_with(func)


class TestVerifier:
    def test_requires_main(self):
        m = Module()
        with pytest.raises(IRError, match="main"):
            verify_module(m)

    def test_missing_terminator(self):
        m = _main(ins.Nop())
        with pytest.raises(IRError, match="terminator"):
            verify_module(m)

    def test_terminator_mid_block(self):
        m = _main(ins.Ret(), ins.Nop(), ins.Ret())
        with pytest.raises(IRError, match="mid-block"):
            verify_module(m)

    def test_branch_to_unknown_block(self):
        m = _main(ins.Br(1, "nowhere", "entry"))
        with pytest.raises(IRError, match="unknown block"):
            verify_module(m)

    def test_jmp_to_unknown_block(self):
        m = _main(ins.Jmp("gone"))
        with pytest.raises(IRError, match="unknown block"):
            verify_module(m)

    def test_call_unknown_function(self):
        m = _main(ins.Call(None, "ghost", []), ins.Ret())
        with pytest.raises(IRError, match="unknown function"):
            verify_module(m)

    def test_call_arity_mismatch(self):
        m = Module()
        callee = Function("callee", ["%a"])
        callee.add_block("entry").instrs.append(ins.Ret())
        m.add_function(callee)
        main = Function("main")
        main.add_block("entry").instrs.extend(
            [ins.Call(None, "callee", []), ins.Ret()])
        m.add_function(main)
        with pytest.raises(IRError, match="args"):
            verify_module(m)

    def test_unknown_global(self):
        m = _main(ins.GlobalAddr("%g", "ghost"), ins.Ret())
        with pytest.raises(IRError, match="unknown global"):
            verify_module(m)

    def test_undefined_register_read(self):
        m = _main(ins.BinOp("%x", "add", "%never", 1), ins.Ret())
        with pytest.raises(IRError, match="undefined register"):
            verify_module(m)

    def test_duplicate_ptwrite_tags(self):
        m = _main(ins.Const("%x", 1), ins.PtWrite("%x", 5),
                  ins.PtWrite("%x", 5), ins.Ret())
        with pytest.raises(IRError, match="duplicate ptwrite tag"):
            verify_module(m)

    def test_valid_module_passes(self, abort_module, table_module,
                                 spawn_module):
        verify_module(abort_module)
        verify_module(table_module)
        verify_module(spawn_module)

    def test_duplicate_block_rejected(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        f.block("entry")
        with pytest.raises(IRError):
            f.block("entry")
