"""OpenMetrics / Prometheus text rendering of a metric snapshot.

``repro stats --openmetrics telemetry.jsonl`` turns the final snapshot
of a run into the text exposition format, so fleet-mode deployments can
drop the output where a Prometheus-compatible scraper (or a pushgateway
sidecar) picks it up — no client library involved.

Mapping:

* counters → ``# TYPE repro_<name> counter`` with a ``_total`` sample;
* gauges → ``gauge`` samples;
* histograms → ``summary`` families: one ``{quantile="..."}`` sample per
  retained percentile plus ``_count`` and ``_sum``.

Dotted telemetry names become underscore-separated metric names under a
``repro_`` namespace (``solver.cache.hits`` →
``repro_solver_cache_hits_total``).  :func:`parse_openmetrics` reads the
format back; the round-trip is pinned by tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

__all__ = ["render_openmetrics", "parse_openmetrics"]

PREFIX = "repro_"

#: histogram percentiles exported as summary quantiles
QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))

_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[^\s]+)\s*$')


def metric_name(name: str) -> str:
    """Telemetry metric name → OpenMetrics metric name."""
    return PREFIX + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _format(value: float) -> str:
    # integers render without a trailing .0 (counters must be whole)
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_openmetrics(metrics: Dict) -> str:
    """The OpenMetrics text exposition of a metric snapshot.

    ``metrics`` is a snapshot dict as produced by
    :meth:`~repro.telemetry.registry.Telemetry.snapshot` (or merged by
    :func:`~repro.telemetry.stats.merge_snapshots`).
    """
    lines: List[str] = []
    for name, value in sorted((metrics.get("counters") or {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_format(value)}")
    for name, value in sorted((metrics.get("gauges") or {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format(value)}")
    for name, h in sorted((metrics.get("histograms") or {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} summary")
        for key, quantile in QUANTILES:
            if key in h:
                lines.append(f'{family}{{quantile="{quantile}"}} '
                             f"{_format(h[key])}")
        lines.append(f"{family}_count {_format(h.get('count', 0))}")
        lines.append(f"{family}_sum {_format(h.get('sum', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, Dict]:
    """Parse exposition text back into ``{family: {...}}`` data.

    Returns, per family, its declared ``type`` and its samples: plain
    ``value`` for gauges, ``total`` for counters, and
    ``quantiles``/``count``/``sum`` for summaries.  Used by the
    round-trip tests and handy for scraping smoke checks.
    """
    families: Dict[str, Dict] = {}
    types: Dict[str, str] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            types[family] = kind.strip()
            families.setdefault(family, {"type": kind.strip()})
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"unparseable sample line: {raw!r}")
        sample = match.group("name")
        value = float(match.group("value"))
        labels = _parse_labels(match.group("labels"))
        family, field = _family_of(sample, types)
        entry = families.setdefault(family, {"type": types.get(family, "")})
        if field == "total":
            entry["total"] = value
        elif field == "count":
            entry["count"] = value
        elif field == "sum":
            entry["sum"] = value
        elif "quantile" in labels:
            entry.setdefault("quantiles", {})[labels["quantile"]] = value
        else:
            entry["value"] = value
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


def _parse_labels(raw) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    for part in raw.split(","):
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip().strip('"')
    return labels


def _family_of(sample: str, types: Dict[str, str]) -> Tuple[str, str]:
    for suffix, field in (("_total", "total"), ("_count", "count"),
                          ("_sum", "sum")):
        if sample.endswith(suffix):
            family = sample[:-len(suffix)]
            if family in types:
                return family, field
    return sample, ""
