"""Key data value selection (§3.3.2): bottleneck set → recording set.

Every symbolic term may carry *provenance*: the program point (and
destination register) that defined it, plus the value's size in bytes.
Recording a provenanced term costs ``size × dynamic-execution-count`` —
the paper's ``C_i = sizeof(E_i) × Count(E_i)``.

The recording set starts as the bottleneck set and is minimized with the
paper's depth-first search: an element is replaced by a cheaper set of
recordable descendants whenever those determine it.  Determinacy follows
the constraint-graph structure — ``Read(arr, idx)`` is determined when
both the chain and the index are, constants are always determined, and
an input variable only by recording it.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from .. import telemetry
from ..ir.module import ProgramPoint
from ..solver.terms import Term, term_size
from ..symex.result import StallInfo
from .constraint_graph import ConstraintGraph

#: bytes of PTW packet framing per recorded value (kind + tag varint);
#: recording cost is per *packet*, so low-execution-count values beat
#: per-byte-cheap but hot ones
PTW_HEADER_BYTES = 2

logger = logging.getLogger(__name__)


@dataclass(frozen=True, order=True)
class RecordingItem:
    """One value to record: insert a ``ptwrite`` after ``point``."""

    point: ProgramPoint
    register: str
    size: int

    def cost(self, exec_counts) -> int:
        """The paper's C_i = sizeof(E_i) x Count(E_i), at PTW-packet
        granularity: every recorded value costs its payload plus the
        packet header each time the point executes."""
        return ((self.size + PTW_HEADER_BYTES)
                * max(1, exec_counts.get(self.point, 1)))


@dataclass
class RecordingPlan:
    """The outcome of one key-data-value-selection round."""

    items: List[RecordingItem]
    bottleneck: List[Term]
    graph_nodes: int
    total_cost: int

    def __bool__(self) -> bool:
        return bool(self.items)


def _unit_of(term: Term) -> Optional[RecordingItem]:
    if term.prov is None:
        return None
    point, register, size = term.prov
    return RecordingItem(point, register, size)


class _MinCostSearch:
    """Memoized min-cost determining-set computation over the graph."""

    def __init__(self, exec_counts, chosen: set, excluded: frozenset):
        self.exec_counts = exec_counts
        self.chosen = chosen  # units already selected: marginal cost 0
        #: (func, register) pairs recorded in earlier iterations that did
        #: not unblock solving: re-recording them cannot help, so the
        #: search must go deeper (toward the inputs) instead
        self.excluded = excluded
        self._memo: Dict[int, Optional[FrozenSet[RecordingItem]]] = {}

    def cost_of(self, units: FrozenSet[RecordingItem]) -> int:
        return sum(u.cost(self.exec_counts) for u in units
                   if u not in self.chosen)

    def determining_set(self, term: Term) -> Optional[FrozenSet[RecordingItem]]:
        """Cheapest unit set that makes ``term`` concrete, or None."""
        key = id(term)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard (terms are acyclic, but safe)
        result = self._compute(term)
        self._memo[key] = result
        return result

    def _usable_unit(self, term: Term) -> Optional[RecordingItem]:
        unit = _unit_of(term)
        if unit is None:
            return None
        if (unit.point.func, unit.register) in self.excluded:
            return None
        return unit

    def _compute(self, term: Term) -> Optional[FrozenSet[RecordingItem]]:
        if term.is_const or term.op == "array":
            return frozenset()
        if term.op == "var":
            # a free input byte is determined only by recording it (its
            # provenance points at the Input instruction's register)
            unit = self._usable_unit(term)
            return frozenset((unit,)) if unit is not None else None
        unit = self._usable_unit(term)
        child_terms = [a for a in term.args if isinstance(a, Term)]
        children: Optional[FrozenSet[RecordingItem]] = frozenset()
        for child in child_terms:
            child_set = self.determining_set(child)
            if child_set is None:
                children = None
                break
            children = children | child_set
        if unit is None:
            return children
        unit_set = frozenset((unit,))
        if children is None:
            return unit_set
        if self.cost_of(children) < self.cost_of(unit_set):
            return children
        return unit_set


def select_key_values(stall: StallInfo,
                      already_recorded: frozenset = frozenset()
                      ) -> RecordingPlan:
    """The paper's key-data-value-selection algorithm (§3.3.2).

    1. Build the constraint graph from the stall.
    2. Compute the bottleneck set (longest chain + largest-object chain).
    3. Minimize the recording cost: replace each element by a cheaper
       determining set of recordable descendants where possible.

    ``already_recorded`` holds (func, register) pairs instrumented in
    earlier iterations; they are excluded so the search digs deeper
    (ultimately to the raw inputs) when a recorded value was not enough.
    """
    tel = telemetry.get()
    with tel.span("selection.select_key_values"):
        graph = ConstraintGraph.from_stall(stall)
        bottleneck = graph.bottleneck_set()
        plan = _plan_from_bottleneck(graph, bottleneck, stall,
                                     already_recorded)
    tel.count("selection.rounds")
    tel.count("selection.values_picked", len(plan.items))
    tel.histogram("selection.graph_nodes").record(graph.node_count)
    tel.histogram("selection.recording_cost").record(plan.total_cost)
    logger.debug("selection: %d graph nodes, %d bottleneck terms -> "
                 "%d items, cost %d", graph.node_count,
                 len(plan.bottleneck), len(plan.items), plan.total_cost)
    return plan


def _plan_from_bottleneck(graph: ConstraintGraph, bottleneck: List[Term],
                          stall: StallInfo,
                          already_recorded: frozenset) -> RecordingPlan:
    if not bottleneck:
        # No symbolic write chain: the stall came from the query itself
        # (a bounds check over a complex index) or from the final solve.
        # Fall back to the stalled query's terms, then the constraints.
        fallback = stall.stall_terms if stall.stall_terms \
            else stall.constraints
        seen = set()
        for term in fallback:
            if isinstance(term, Term) and not term.is_const \
                    and term not in seen:
                seen.add(term)
                bottleneck.append(term)
    exec_counts = stall.exec_counts

    # Process cheap elements first so expensive ones can reuse them;
    # break cost ties toward structurally simpler terms (inputs before
    # derived reads), which keeps the Fig. 3/4 walkthrough's outcome.
    def element_key(term: Term):
        unit = _unit_of(term)
        cost = unit.cost(exec_counts) if unit else 1 << 30
        return (cost, term_size(term))

    ordered = sorted(bottleneck, key=element_key)
    chosen: set = set()
    for term in ordered:
        search = _MinCostSearch(exec_counts, chosen, already_recorded)
        det = search.determining_set(term)
        if det is not None:
            chosen.update(det)
        else:
            unit = _unit_of(term)
            if unit is not None and \
                    (unit.point.func, unit.register) not in already_recorded:
                chosen.add(unit)
            # else: not recordable at all; skip (another element may
            # cover it, or the next iteration stalls differently)

    items = sorted(chosen)
    total = sum(item.cost(exec_counts) for item in items)
    return RecordingPlan(items=items, bottleneck=bottleneck,
                         graph_nodes=graph.node_count, total_cost=total)
