"""Instrumentation pass + the end-to-end iterative reconstruction loop."""

import pytest

from repro.core.instrument import instrument
from repro.core.production import ProductionSite
from repro.core.reconstructor import ExecutionReconstructor
from repro.core.signature import normalize_failure
from repro.core.selection import RecordingItem
from repro.errors import IRError, ReconstructionError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder
from repro.ir.module import ProgramPoint


class TestInstrument:
    def _module(self):
        b = ModuleBuilder("inst")
        f = b.function("main", [])
        f.block("entry")
        f.input("stdin", 1, dest="%a")
        f.add("%a", 1, dest="%x")
        f.add("%x", 2, dest="%y")
        f.ret("%y")
        return b.build()

    def test_inserts_after_point(self):
        module = self._module()
        item = RecordingItem(ProgramPoint("main", "entry", 1), "%x", 8)
        result = instrument(module, [item], next_tag=0)
        instrs = result.module.function("main").block("entry").instrs
        assert isinstance(instrs[2], ins.PtWrite)
        assert instrs[2].value == "%x"

    def test_original_module_untouched(self):
        module = self._module()
        before = module.instruction_count()
        instrument(module, [RecordingItem(
            ProgramPoint("main", "entry", 1), "%x", 8)])
        assert module.instruction_count() == before

    def test_multiple_insertions_same_block(self):
        module = self._module()
        items = [RecordingItem(ProgramPoint("main", "entry", 1), "%x", 8),
                 RecordingItem(ProgramPoint("main", "entry", 2), "%y", 8)]
        result = instrument(module, items)
        instrs = result.module.function("main").block("entry").instrs
        ptws = [i for i in instrs if isinstance(i, ins.PtWrite)]
        assert len(ptws) == 2
        # each ptwrite directly follows its defining instruction
        assert instrs[2].value == "%x" and instrs[4].value == "%y"

    def test_unique_tags(self):
        module = self._module()
        items = [RecordingItem(ProgramPoint("main", "entry", 1), "%x", 8),
                 RecordingItem(ProgramPoint("main", "entry", 2), "%y", 8)]
        result = instrument(module, items, next_tag=7)
        tags = sorted(result.tag_map)
        assert tags == [7, 8] and result.next_tag == 9

    def test_register_mismatch_rejected(self):
        module = self._module()
        item = RecordingItem(ProgramPoint("main", "entry", 1), "%WRONG", 8)
        with pytest.raises(IRError):
            instrument(module, [item])

    def test_out_of_range_rejected(self):
        module = self._module()
        item = RecordingItem(ProgramPoint("main", "entry", 99), "%x", 8)
        with pytest.raises(IRError):
            instrument(module, [item])

    def test_instrumented_module_still_runs(self):
        module = self._module()
        item = RecordingItem(ProgramPoint("main", "entry", 1), "%x", 8)
        result = instrument(module, [item])
        run = Interpreter(result.module,
                          Environment({"stdin": b"\x05"})).run()
        assert run.ptwrite_count == 1
        assert run.return_value == 8


class TestNormalizeFailure:
    def test_discounts_ptwrites(self, abort_module):
        run = Interpreter(abort_module, Environment({"stdin": b"\xff"})).run()
        # instrument a point before the failing one in the same block
        item = RecordingItem(ProgramPoint("main", "entry", 0), "%x", 1)
        inst = instrument(abort_module, [item])
        run2 = Interpreter(inst.module, Environment({"stdin": b"\xff"})).run()
        n1 = normalize_failure(abort_module, run.failure)
        n2 = normalize_failure(inst.module, run2.failure)
        assert n1.matches(n2)


class TestProductionSite:
    def test_retries_until_failure(self, abort_module):
        calls = []

        def factory(occ):
            calls.append(occ)
            data = b"\x01" if occ < 3 else b"\xff"
            return Environment({"stdin": data})

        site = ProductionSite(factory)
        occurrence = site.run_once(abort_module)
        assert occurrence.failure is not None
        assert calls == [1, 2, 3]

    def test_gives_up_eventually(self, abort_module):
        site = ProductionSite(lambda occ: Environment({"stdin": b"\x01"}),
                              max_attempts_per_occurrence=5)
        with pytest.raises(ReconstructionError):
            site.run_once(abort_module)

    def test_trace_matches_run(self, abort_module):
        site = ProductionSite(lambda occ: Environment({"stdin": b"\xff"}))
        occurrence = site.run_once(abort_module)
        assert occurrence.trace.instr_count == occurrence.run.instr_count


class TestReconstructor:
    def test_single_occurrence_case(self, abort_module):
        er = ExecutionReconstructor(abort_module)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": b"\xc8"})))
        assert report.success and report.verified
        assert report.occurrences == 1
        assert report.test_case.streams["stdin"][0] >= 100

    def test_iterative_case_records_then_completes(self, table_module):
        er = ExecutionReconstructor(table_module, work_limit=150)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": bytes([9, 9])})))
        assert report.success and report.verified
        if report.occurrences > 1:
            assert report.iterations[0].recorded_items

    def test_report_summary_readable(self, abort_module):
        er = ExecutionReconstructor(abort_module)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": b"\xc8"})))
        text = report.summary()
        assert "succeeded" in text and "stdin" in text

    def test_gives_up_at_max_occurrences(self, table_module):
        # a selection that never records anything useful
        def useless_selection(stall, already=frozenset()):
            from repro.core.selection import RecordingPlan
            return RecordingPlan(items=[], bottleneck=[], graph_nodes=0,
                                 total_cost=0)

        er = ExecutionReconstructor(table_module, work_limit=10,
                                    max_occurrences=3,
                                    selection=useless_selection)
        with pytest.raises(ReconstructionError):
            er.reconstruct(ProductionSite(
                lambda occ: Environment({"stdin": bytes([9, 9])})))

    def test_failure_signature_filtering(self, abort_module):
        # occurrences alternate between two DIFFERENT failure points:
        # the reconstructor must stick to the first signature
        b = ModuleBuilder("two-bugs")
        f = b.function("main", [])
        f.block("entry")
        x = f.input("stdin", 1, dest="%x")
        c = f.cmp("eq", "%x", 1, width=8)
        f.br(c, "bug1", "chk2")
        f.block("bug1")
        f.abort("first bug")
        f.block("chk2")
        c2 = f.cmp("eq", "%x", 2, width=8)
        f.br(c2, "bug2", "ok")
        f.block("bug2")
        f.abort("second bug")
        f.block("ok")
        f.ret(0)
        module = b.build()

        def factory(occ):
            return Environment({"stdin": bytes([1 if occ % 2 else 2])})

        er = ExecutionReconstructor(module)
        report = er.reconstruct(ProductionSite(factory))
        assert report.success
        assert report.test_case.streams["stdin"][0] == 1
