"""Reconstruction determinism, cross-run isolation, unrelated-failure
budgeting — the invariants the batch runner depends on."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.env import Environment
from repro.ir.builder import ModuleBuilder


def _report_fingerprint(report):
    """Everything that should be identical across reruns (no wall times)."""
    return {
        "success": report.success,
        "verified": report.verified,
        "occurrences": report.occurrences,
        "unrelated": report.unrelated_occurrences,
        "statuses": [it.status for it in report.iterations],
        "recorded": [[(str(i.point), i.register, i.size)
                      for i in it.recorded_items]
                     for it in report.iterations],
        "streams": (sorted(report.test_case.streams.items())
                    if report.test_case else None),
    }


def _two_bug_module():
    """Reads x, y; x == 255 hits one bug, the x/y table-alias pattern
    hits another (which stalls under a small work limit)."""
    b = ModuleBuilder("two-bugs")
    b.global_("V", 256)
    f = b.function("main", [])
    f.block("entry")
    f.input("stdin", 1, dest="%x")
    f.input("stdin", 1, dest="%y")
    c = f.cmp("eq", "%x", 255, width=8)
    f.br(c, "other", "table")
    f.block("other")
    f.abort("other bug")
    f.block("table")
    f.global_addr("V", dest="%V")
    p = f.gep("%V", "%x", 1)
    f.store(p, 7, 1)
    q = f.gep("%V", "%y", 1)
    f.load(q, 1, dest="%v")
    c2 = f.cmp("eq", "%v", 7, width=8)
    f.br(c2, "boom", "ok")
    f.block("boom")
    f.abort("aliased")
    f.block("ok")
    f.ret(0)
    return b.build()


class TestDeterminism:
    def test_back_to_back_runs_identical(self, table_module):
        def run():
            er = ExecutionReconstructor(table_module.clone(),
                                        work_limit=150)
            return er.reconstruct(ProductionSite(
                lambda occ: Environment({"stdin": bytes([9, 9])})))

        assert _report_fingerprint(run()) == _report_fingerprint(run())

    def test_concurrent_runs_match_serial(self, abort_module, table_module):
        """Two reconstructions in parallel threads must each behave
        exactly as they do alone — term spaces and solver caches are
        per-session, not process-global."""
        jobs = {
            "abort": (abort_module, b"\xc8", 300_000),
            "table": (table_module, bytes([9, 9]), 150),
        }

        def run(name):
            module, data, work_limit = jobs[name]
            er = ExecutionReconstructor(module.clone(),
                                        work_limit=work_limit)
            return _report_fingerprint(er.reconstruct(ProductionSite(
                lambda occ: Environment({"stdin": data}))))

        serial = {name: run(name) for name in jobs}
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = {name: pool.submit(run, name) for name in jobs}
            concurrent = {name: f.result() for name, f in futures.items()}
        assert concurrent == serial
        assert all(r["success"] for r in serial.values())


class TestUnrelatedBudget:
    def test_unrelated_failures_do_not_consume_budget(self):
        module = _two_bug_module()

        # this needs three occurrences of the table bug (stall, stall,
        # complete) and sees an unrelated bug after the first — with
        # max_occurrences=3 it only succeeds if the unrelated failure
        # costs nothing
        def factory(occ):
            data = b"\xff\x00" if occ == 2 else bytes([9, 9])
            return Environment({"stdin": data})

        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            er = ExecutionReconstructor(module, work_limit=100,
                                        max_occurrences=3)
            report = er.reconstruct(ProductionSite(factory))
        assert report.success
        assert report.unrelated_occurrences == 1
        assert report.occurrences == 3
        assert registry.counter(
            "reconstruct.unrelated_failures").value == 1
        assert report.to_dict()["unrelated_occurrences"] == 1

    def test_gives_up_when_failure_stops_reoccurring(self):
        module = _two_bug_module()

        # after the first (stalling) occurrence, only the other bug ever
        # fires: the reconstructor must give up at its unrelated bound
        # instead of waiting forever
        def factory(occ):
            data = bytes([9, 9]) if occ == 1 else b"\xff\x00"
            return Environment({"stdin": data})

        er = ExecutionReconstructor(module, work_limit=10,
                                    max_occurrences=5,
                                    max_unrelated_occurrences=3)
        report = er.reconstruct(ProductionSite(factory))
        assert not report.success
        assert report.unrelated_occurrences == 3
        assert report.occurrences == 1    # only the real one counted
        assert "unrelated failures observed: 3" in report.summary()
