"""Use cases on top of ER: forensics attribution and seeded fuzzing."""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer
from repro.usecases import CoverageFuzzer, attribute_failure
from repro.workloads import get_workload


def completed_symex(workload_name, extra_budget=20):
    workload = get_workload(workload_name)
    module = workload.fresh_module()
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module, workload.failing_env(1),
                      tracer=encoder).run()
    result = ShepherdedSymex(module, decode(encoder.buffer), run.failure,
                             work_limit=workload.work_limit
                             * extra_budget).run()
    assert result.completed
    return workload, module, result


class TestForensics:
    def test_influential_bytes_found(self):
        _wl, _m, result = completed_symex("libpng-2004-0597")
        attribution = attribute_failure(result)
        assert "png" in attribution.influential
        # the tRNS length field (bytes 23..26 of the stream) must matter
        length_field = set(range(23, 27))
        assert length_field & set(attribution.influential["png"])

    def test_payload_bytes_not_influential(self):
        _wl, _m, result = completed_symex("libpng-2004-0597")
        attribution = attribute_failure(result)
        # the copied payload bytes were never branched on
        influential = set(attribution.influential.get("png", ()))
        payload = set(range(40, 200))
        assert not (payload & influential)

    def test_weights_positive(self):
        _wl, _m, result = completed_symex("bash-108885")
        attribution = attribute_failure(result)
        assert all(w > 0 for w in attribution.weight.values())
        assert attribution.total_constraints == len(result.constraints)

    def test_hottest_ranked(self):
        _wl, _m, result = completed_symex("libpng-2004-0597")
        hottest = attribute_failure(result).hottest(3)
        weights = [w for _s, _o, w in hottest]
        assert weights == sorted(weights, reverse=True)

    def test_render(self):
        _wl, _m, result = completed_symex("bash-108885")
        text = attribute_failure(result).render()
        assert "influential" in text


class TestFuzzing:
    def test_coverage_grows_from_empty(self):
        workload = get_workload("bash-108885")
        fuzzer = CoverageFuzzer(workload.fresh_module(), "sh", seed=5)
        report = fuzzer.run(budget=120)
        assert report.coverage_points > 2
        assert report.corpus_size >= 1

    def test_magic_bytes_gate_coverage(self):
        """libpng's 2-byte signature blocks a from-scratch fuzzer, and a
        valid-header seed unlocks the chunk machinery — the classic
        argument for good seeds."""
        workload = get_workload("libpng-2004-0597")
        blind = CoverageFuzzer(workload.fresh_module(), "png", seed=5)
        blind_report = blind.run(budget=120)
        seeded = CoverageFuzzer(workload.fresh_module(), "png", seed=5)
        seeded.add_seed(b"\x89P" + bytes(12))
        seeded_report = seeded.run(budget=120)
        assert seeded_report.coverage_points > blind_report.coverage_points

    def test_deterministic_given_seed(self):
        workload = get_workload("bash-108885")
        reports = []
        for _ in range(2):
            fuzzer = CoverageFuzzer(workload.fresh_module(), "sh", seed=9)
            reports.append(fuzzer.run(budget=150))
        assert reports[0].coverage_points == reports[1].coverage_points
        assert reports[0].crash_count == reports[1].crash_count

    def test_crash_dedup_by_signature(self):
        workload = get_workload("bash-108885")
        fuzzer = CoverageFuzzer(workload.fresh_module(), "sh", seed=1)
        fuzzer.add_seed(b")")    # the crasher itself
        fuzzer.add_seed(b")a")   # same signature
        assert fuzzer.crashes and len(fuzzer.crashes) == 1

    def test_er_seed_finds_crash_immediately(self):
        workload = get_workload("matrixssl-2014-1569")
        er = ExecutionReconstructor(workload.fresh_module(),
                                    work_limit=workload.work_limit)
        report = er.reconstruct(ProductionSite(workload.failing_env))
        seed_bytes = report.test_case.streams["tls"]

        seeded = CoverageFuzzer(workload.fresh_module(), "tls", seed=3)
        seeded.add_seed(seed_bytes)
        seeded_report = seeded.run(budget=150)

        unseeded = CoverageFuzzer(workload.fresh_module(), "tls", seed=3)
        unseeded_report = unseeded.run(budget=150)

        assert seeded_report.first_crash_at == 1  # the seed itself
        assert seeded_report.crash_count >= 1
        # from-scratch fuzzing needs more executions (or never finds it)
        assert (unseeded_report.first_crash_at is None
                or unseeded_report.first_crash_at
                > seeded_report.first_crash_at)
