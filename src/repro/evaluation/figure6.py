"""Figure 6: online monitoring overhead — ER vs rr.

For every application, run its performance benchmark 10 times under
three monitors: none (baseline), ER's steady-state always-on PT
control-flow tracing, and rr-style full record/replay.  Reports mean
overhead and standard error, like the paper's bar chart.  A separate
column deploys the final reconstruction iteration's instrumented binary
(when ER records the most data) and reports the transient recording
cost — inflated at this repo's miniature scale; see EXPERIMENTS.md.

Shape to reproduce: ER averages a fraction of a percent; rr averages
tens of percent with a worst case above 100 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core import ExecutionReconstructor, ProductionSite
from ..interp.interpreter import Interpreter
from ..trace.encoder import PTEncoder
from ..trace.overhead import OverheadModel
from ..trace.ringbuffer import RingBuffer
from ..workloads import Workload, all_workloads
from .formatting import percent, render_table

RUNS = 10


@dataclass
class OverheadRow:
    name: str
    app: str
    er_mean: float
    er_stderr: float
    rr_mean: float
    rr_stderr: float
    instr_count: int
    trace_bytes: int
    #: extra overhead while the *last* iteration's ptwrites are deployed
    er_last_mean: float = 0.0
    ptwrites_last: int = 0


@dataclass
class Figure6Result:
    rows: List[OverheadRow]

    @property
    def er_average(self) -> float:
        return sum(r.er_mean for r in self.rows) / len(self.rows)

    @property
    def er_max(self) -> float:
        return max(r.er_mean for r in self.rows)

    @property
    def rr_average(self) -> float:
        return sum(r.rr_mean for r in self.rows) / len(self.rows)

    @property
    def rr_max(self) -> float:
        return max(r.rr_mean for r in self.rows)

    def render(self) -> str:
        headers = ["Application", "ER overhead", "rr overhead",
                   "ER last-iter", "instrs", "trace bytes"]
        rows = [[r.app,
                 f"{percent(r.er_mean)} ± {percent(r.er_stderr, 3)}",
                 f"{percent(r.rr_mean, 1)} ± {percent(r.rr_stderr, 2)}",
                 f"{percent(r.er_last_mean, 1)} "
                 f"({r.ptwrites_last} ptw)",
                 r.instr_count, r.trace_bytes]
                for r in self.rows]
        footer = (f"\nER: avg {percent(self.er_average)} "
                  f"(paper 0.3%), max {percent(self.er_max)} (paper 1.1%)"
                  f"\nrr: avg {percent(self.rr_average, 1)} "
                  f"(paper 48.0%), max {percent(self.rr_max, 1)} "
                  "(paper 142.2%)"
                  "\n('ER last-iter' is the transient cost while the "
                  "final iteration's ptwrites are deployed; it is "
                  "inflated here because the mini apps execute ~10^3 "
                  "instructions where the paper's execute ~10^6 — see "
                  "EXPERIMENTS.md)")
        return render_table(headers, rows,
                            "Figure 6 — runtime monitoring overhead") + footer


def _mean_stderr(samples: List[float]):
    mean = sum(samples) / len(samples)
    if len(samples) < 2:
        return mean, 0.0
    var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    return mean, math.sqrt(var / len(samples))


def measure_workload(workload: Workload, runs: int = RUNS,
                     measure_last_iteration: bool = True) -> OverheadRow:
    """Measure ER and rr overhead on one application's benchmark.

    The headline ER number is the steady-state monitoring cost
    (always-on control-flow tracing — what a deployment pays while
    waiting for failures).  ``measure_last_iteration`` additionally
    deploys the final reconstruction iteration's instrumented binary to
    measure the transient recording cost.
    """
    module = workload.fresh_module()
    model = OverheadModel(seed=hash(workload.name) & 0xFFFF)
    er_samples: List[float] = []
    rr_samples: List[float] = []
    instr_count = trace_bytes = 0
    for run_index in range(runs):
        env = workload.benign_env(run_index)
        encoder = PTEncoder(RingBuffer())
        result = Interpreter(module, env, tracer=encoder).run()
        if result.failure is not None:
            raise AssertionError(
                f"benchmark run failed: {result.failure}")
        er_samples.append(
            model.er_sample(result, encoder.bytes_emitted).overhead)
        rr_samples.append(model.rr_sample(result).overhead)
        instr_count = result.instr_count
        trace_bytes = encoder.bytes_emitted
    er_mean, er_se = _mean_stderr(er_samples)
    rr_mean, rr_se = _mean_stderr(rr_samples)

    er_last = 0.0
    ptwrites_last = 0
    if measure_last_iteration:
        reconstructor = ExecutionReconstructor(
            module, work_limit=workload.work_limit,
            max_occurrences=workload.max_occurrences)
        report = reconstructor.reconstruct(
            ProductionSite(workload.failing_env))
        final = report.final_module or module
        last_samples = []
        for run_index in range(max(2, runs // 3)):
            env = workload.benign_env(run_index)
            encoder = PTEncoder(RingBuffer())
            result = Interpreter(final, env, tracer=encoder).run()
            last_samples.append(
                model.er_sample(result, encoder.bytes_emitted).overhead)
            ptwrites_last = result.ptwrite_count
        # the model's noise term can dip a tiny sample mean below zero;
        # a deployment's overhead cannot be negative, so clamp
        er_last, _ = _mean_stderr(last_samples)
        er_last = max(0.0, er_last)
    return OverheadRow(workload.name, workload.app, er_mean, er_se,
                       rr_mean, rr_se, instr_count, trace_bytes,
                       er_last, ptwrites_last)


def run_figure6(names: Optional[List[str]] = None, runs: int = RUNS,
                measure_last_iteration: bool = True) -> Figure6Result:
    rows = []
    for workload in all_workloads():
        if names is not None and workload.name not in names:
            continue
        rows.append(measure_workload(workload, runs,
                                     measure_last_iteration))
    return Figure6Result(rows)
