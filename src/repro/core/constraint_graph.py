"""Constraint graph construction and bottleneck analysis (§3.2–3.3).

The constraint graph's nodes are the (hash-consed) terms reachable from
the stalled query: path constraints, the stalling terms, and the write
chains of every object with symbolic stores.  Edges are the term argument
relation; store nodes additionally distinguish *address* dependencies
(their index argument) from value dependencies, matching Fig. 4.

Bottleneck analysis finds the two structures the paper identifies as the
key contributors to constraint complexity:

1. the **longest symbolic write chain**, and
2. the **write chain updating the largest symbolic memory object**,

and collects the symbolic values read/written by the stores in those
chains — the *bottleneck set*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from .. import telemetry
from ..solver.terms import Term, base_array, iter_nodes
from ..symex.result import StallInfo


@dataclass
class WriteChain:
    """One maximal store chain, top (most recent) first."""

    stores: List[Term]

    def __len__(self) -> int:
        return len(self.stores)

    @property
    def top(self) -> Term:
        return self.stores[0]

    @property
    def base(self) -> Term:
        return base_array(self.stores[-1])

    @property
    def object_size(self) -> int:
        return self.base.width

    def symbolic_members(self) -> List[Term]:
        """Symbolic indices and values of the chain's stores, top first."""
        out: List[Term] = []
        seen: Set[Term] = set()
        for store_node in self.stores:
            _, index, value = store_node.args
            for term in (index, value):
                if not term.is_const and term not in seen:
                    seen.add(term)
                    out.append(term)
        return out


class ConstraintGraph:
    """The dependency graph over a stalled query's terms."""

    def __init__(self, roots: List[Term]):
        self.roots = roots
        self.nodes: List[Term] = list(iter_nodes(roots))
        self._node_set: Set[Term] = set(self.nodes)

    @classmethod
    def from_stall(cls, stall: StallInfo) -> "ConstraintGraph":
        roots = list(stall.constraints) + list(stall.stall_terms) + \
            [c for c in stall.chains if c is not None]
        graph = cls(roots)
        tel = telemetry.get()
        tel.count("graph.builds")
        tel.histogram("graph.nodes").record(graph.node_count)
        return graph

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    # -- chain discovery ---------------------------------------------------

    def write_chains(self) -> List[WriteChain]:
        """All maximal store chains in the graph."""
        store_nodes = [n for n in self.nodes if n.op == "store"]
        children = {n.args[0] for n in store_nodes
                    if n.args[0].op == "store"}
        chains: List[WriteChain] = []
        for top in store_nodes:
            if top in children:
                continue  # not a chain top
            stores = []
            node = top
            while node.op == "store":
                stores.append(node)
                node = node.args[0]
            chains.append(WriteChain(stores))
        return chains

    def longest_chain(self) -> Optional[WriteChain]:
        chains = self.write_chains()
        if not chains:
            return None
        return max(chains, key=len)

    def largest_object_chain(self) -> Optional[WriteChain]:
        chains = self.write_chains()
        if not chains:
            return None
        return max(chains, key=lambda c: c.object_size)

    # -- bottleneck set ------------------------------------------------------

    def bottleneck_set(self) -> List[Term]:
        """Symbolic values involved in the two bottleneck chains (§3.3.2).

        Returns terms in deterministic (chain, position) order; the two
        chains may coincide, in which case members appear once.
        """
        selected: List[Term] = []
        seen: Set[Term] = set()
        chain_hist = telemetry.get().histogram("graph.chain_length")
        for chain in (self.longest_chain(), self.largest_object_chain()):
            if chain is None:
                continue
            chain_hist.record(len(chain))
            for term in chain.symbolic_members():
                if term not in seen:
                    seen.add(term)
                    selected.append(term)
        return selected
