"""Work budgets: the mechanism behind symbolic-execution stalls.

Real constraint solvers spend wall-clock time; ER detects a *stall* when a
query exceeds a timeout (30 s in the paper's evaluation, §4).  Here solver
routines charge deterministic *work units* proportional to the structures
they traverse — notably symbolic write chains and large symbolic objects,
the paper's two sources of constraint complexity (§3.3.1).  A budget
overrun raises :class:`~repro.errors.SolverTimeout`, which is exactly the
signal that triggers key-data-value selection.

Work units map to modelled seconds via :data:`WORK_PER_SECOND` so that the
evaluation harnesses can report times comparable with the paper's.
"""

from __future__ import annotations

from ..errors import SolverTimeout

#: Work units the evaluation reports as one modelled second.
WORK_PER_SECOND = 200_000

#: Default per-query budget: the analog of the paper's 30 s solver timeout.
DEFAULT_WORK_LIMIT = 30 * WORK_PER_SECOND


class Budget:
    """A mutable work meter shared by solver calls of one query/session."""

    def __init__(self, limit: int = DEFAULT_WORK_LIMIT, context: str = ""):
        self.limit = limit
        self.spent = 0
        self.context = context

    def charge(self, amount: int) -> None:
        self.spent += amount
        if self.spent > self.limit:
            raise SolverTimeout(self.spent, self.limit, self.context)

    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent > self.limit

    def seconds(self) -> float:
        """Modelled solver time for reporting."""
        return self.spent / WORK_PER_SECOND


#: Nominal window an :class:`UnlimitedBudget` reports to callers that
#: size scratch budgets from ``remaining()`` (model probes, superset
#: verification).  Large enough that no real query ever nears it, small
#: enough that derived sub-budgets stay ordinary integers.
UNLIMITED_WINDOW = 1 << 62


class UnlimitedBudget(Budget):
    """A budget that never times out (used to disable stalls, Fig. 5).

    ``remaining()`` and ``exhausted`` are overridden alongside
    ``charge()``: callers size probe/verification windows from
    ``remaining()``, so it must stay a huge constant no matter how much
    work has been charged (an earlier version inherited ``limit=0``
    arithmetic, which silently disabled model probing whenever stalls
    were disabled).
    """

    def __init__(self, context: str = ""):
        super().__init__(limit=UNLIMITED_WINDOW, context=context)

    def charge(self, amount: int) -> None:
        self.spent += amount

    def remaining(self) -> int:
        return UNLIMITED_WINDOW

    @property
    def exhausted(self) -> bool:
        return False
