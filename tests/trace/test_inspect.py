"""Trace inspector rendering."""

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.inspect import format_chunk_events, format_trace
from repro.trace.packets import PtwEvent, TntEvent
from repro.trace.ringbuffer import RingBuffer


class TestFormatEvents:
    def test_tnt_symbols(self):
        lines = format_chunk_events([TntEvent(True), TntEvent(False)])
        assert lines == ["+-"]

    def test_ptw_inline(self):
        lines = format_chunk_events([TntEvent(True),
                                     PtwEvent(3, 0x10)])
        assert lines == ["+[ptw 3=0x10]"]

    def test_wrapping(self):
        lines = format_chunk_events([TntEvent(True)] * 50, per_line=24)
        assert len(lines) > 1
        assert all(len(line) <= 24 for line in lines)

    def test_empty(self):
        assert format_chunk_events([]) == [""]


class TestFormatTrace:
    def _trace(self, abort_module):
        encoder = PTEncoder(RingBuffer())
        Interpreter(abort_module, Environment({"stdin": b"\x05"}),
                    tracer=encoder).run()
        return decode(encoder.buffer)

    def test_header_counts(self, abort_module):
        trace = self._trace(abort_module)
        text = format_trace(trace)
        assert "1 chunk(s)" in text
        assert f"{trace.instr_count} instructions" in text

    def test_chunk_lines(self, abort_module):
        trace = self._trace(abort_module)
        text = format_trace(trace)
        assert "tid=0" in text

    def test_chunk_cap(self, spawn_module):
        encoder = PTEncoder(RingBuffer())
        Interpreter(spawn_module, Environment({}, quantum=2),
                    tracer=encoder).run()
        trace = decode(encoder.buffer)
        text = format_trace(trace, max_chunks=3)
        assert "more chunks" in text
