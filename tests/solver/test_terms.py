"""Term construction: interning, folding, array collapse, widths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.ir.ops import apply_binop, apply_cmp
from repro.solver import terms as T


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


class TestInterning:
    def test_structural_identity(self):
        assert T.const(5) is T.const(5)
        assert T.var("a") is T.var("a")

    def test_distinct_terms_differ(self):
        assert T.const(5) is not T.const(6)

    def test_compound_interning(self):
        a = T.binop("add", T.var("x"), T.const(1))
        b = T.binop("add", T.var("x"), T.const(1))
        assert a is b

    def test_cache_clear(self):
        a = T.var("x")
        T.clear_term_cache()
        assert T.var("x") is not a


class TestTermScopes:
    def test_scope_has_its_own_table(self):
        outer = T.var("x")
        with T.term_scope():
            inner = T.var("x")
            assert inner is not outer
            assert T.var("x") is inner        # interned within the scope
        assert T.var("x") is outer            # outer table untouched

    def test_structural_equality_across_scopes(self):
        outer = T.binop("add", T.var("x"), T.const(1))
        with T.term_scope():
            inner = T.binop("add", T.var("x"), T.const(1))
        assert inner is not outer
        assert inner == outer
        assert hash(inner) == hash(outer)

    def test_clear_only_resets_current_scope(self):
        outer = T.var("x")
        with T.term_scope():
            T.var("x")
            T.clear_term_cache()              # clears the scoped table
        assert T.var("x") is outer            # outer survived the clear

    def test_reuse_active_joins_enclosing_scope(self):
        with T.term_scope() as space:
            with T.term_scope(reuse_active=True) as inner:
                assert inner is space

    def test_reuse_active_without_scope_creates_one(self):
        outer = T.var("x")
        with T.term_scope(reuse_active=True):
            assert T.var("x") is not outer

    def test_true_false_shared_across_scopes(self):
        with T.term_scope():
            assert T.cmp("ult", T.const(1), T.const(2)) is T.TRUE
            assert T.not_(T.TRUE) is T.FALSE

    def test_nested_equality_not_recursive(self):
        # structural equality must survive terms deeper than the
        # recursion limit (real constraint chains get that deep)
        def chain():
            node = T.var("x")
            for i in range(4000):
                node = T.binop("add", node, T.const(1), 64)
            return node
        with T.term_scope():
            a = chain()
        with T.term_scope():
            b = chain()
        assert a == b

    def test_threads_are_isolated(self):
        import threading

        results = {}

        def worker(name):
            with T.term_scope():
                results[name] = T.var("shared")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results[0] is not results[1]
        assert results[0] == results[1]


class TestFolding:
    def test_binop_consts_fold(self):
        t = T.binop("add", T.const(200), T.const(100), 8)
        assert t.is_const and t.value == 44

    def test_cmp_consts_fold(self):
        assert T.cmp("ult", T.const(1), T.const(2)) is T.TRUE

    def test_add_zero_identity(self):
        x = T.var("x")
        assert T.binop("add", x, T.const(0)) is x

    def test_mul_zero_annihilates(self):
        assert T.binop("mul", T.var("x"), T.const(0)).value == 0

    def test_mul_one_identity(self):
        x = T.var("x")
        assert T.binop("mul", T.const(1), x) is x

    def test_nested_const_adds_fold(self):
        # (c1 + (c2 + x)) -> (c1+c2) + x keeps address bases foldable
        x = T.var("x")
        inner = T.binop("add", T.const(10), x)
        outer = T.binop("add", T.const(5), inner)
        assert outer.args[0].value == 15

    def test_eq_same_term_true(self):
        x = T.binop("add", T.var("x"), T.var("y"))
        assert T.cmp("eq", x, x) is T.TRUE
        assert T.cmp("ne", x, x) is T.FALSE

    def test_concat_consts(self):
        t = T.concat([T.const(0x34, 8), T.const(0x12, 8)])
        assert t.value == 0x1234

    def test_extract_of_concat(self):
        b0, b1 = T.var("a"), T.var("b")
        t = T.concat([b0, b1])
        assert T.extract(t, 0) is b0
        assert T.extract(t, 1) is b1

    def test_extract_beyond_width_is_zero(self):
        assert T.extract(T.var("a"), 3).value == 0

    def test_ite_folds_const_cond(self):
        a, b = T.var("a"), T.var("b")
        assert T.ite(T.TRUE, a, b) is a
        assert T.ite(T.FALSE, a, b) is b

    def test_not_flips_comparison(self):
        t = T.cmp("ult", T.var("a"), T.const(5))
        assert T.not_(t).op == "uge"

    def test_trunc_const(self):
        assert T.trunc(T.const(0x1FF), 8).value == 0xFF

    def test_sext_const(self):
        assert T.sext(T.const(0x80), 8).value == 0xFFFFFFFFFFFFFF80

    def test_division_by_const_zero_raises(self):
        with pytest.raises(SolverError):
            T.binop("udiv", T.const(5), T.const(0), 8)


class TestArrays:
    def test_read_concrete_base(self):
        arr = T.array("A", b"\x01\x02\x03")
        assert T.read(arr, T.const(1)).value == 2

    def test_read_over_matching_store(self):
        arr = T.array("A", bytes(8))
        st_ = T.store(arr, T.const(3), T.const(9, 8))
        assert T.read(st_, T.const(3)).value == 9

    def test_read_skips_nonmatching_const_store(self):
        arr = T.array("A", b"\x05" * 8)
        st_ = T.store(arr, T.const(3), T.const(9, 8))
        assert T.read(st_, T.const(4)).value == 5

    def test_read_blocked_by_symbolic_store(self):
        arr = T.array("A", bytes(8))
        st_ = T.store(arr, T.var("i"), T.const(9, 8))
        read = T.read(st_, T.const(3))
        assert read.op == "read"  # cannot see through

    def test_symbolic_index_stays_symbolic(self):
        arr = T.array("A", bytes(8))
        assert T.read(arr, T.var("i")).op == "read"

    def test_store_into_non_array_rejected(self):
        with pytest.raises(SolverError):
            T.store(T.var("x"), T.const(0), T.const(0))

    def test_chain_length(self):
        arr = T.array("A", bytes(4))
        node = arr
        for i in range(5):
            node = T.store(node, T.var(f"i{i}"), T.const(1, 8))
        assert T.chain_length(node) == 5
        assert T.base_array(node) is arr

    def test_symbolic_store_count(self):
        arr = T.array("A", bytes(4))
        node = T.store(arr, T.const(0), T.const(1, 8))
        node = T.store(node, T.var("i"), T.const(2, 8))
        assert T.symbolic_store_count(node) == 1


class TestFreeVars:
    def test_leaf_vars(self):
        assert T.var("a").free_vars() == frozenset({"a"})
        assert T.const(1).free_vars() == frozenset()

    def test_compound(self):
        t = T.binop("add", T.var("a"),
                    T.binop("mul", T.var("b"), T.const(2)))
        assert t.free_vars() == frozenset({"a", "b"})

    def test_through_arrays(self):
        arr = T.array("A", bytes(4))
        st_ = T.store(arr, T.var("i"), T.var("v"))
        assert T.read(st_, T.var("j")).free_vars() == \
            frozenset({"i", "v", "j"})


class TestWidths:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
           st.sampled_from((8, 16, 32, 64)))
    def test_binop_width_bounds_value(self, a, b, w):
        t = T.binop("add", T.const(a), T.const(b), w)
        assert t.value < (1 << t.width)

    def test_term_size(self):
        t = T.binop("add", T.var("a"), T.var("b"))
        assert T.term_size(t) == 3
