"""OpenMetrics rendering: format shape and parse round-trip."""

import pytest

from repro.telemetry import render_openmetrics, parse_openmetrics
from repro.telemetry.openmetrics import metric_name

SNAP = {
    "counters": {"solver.cache.hits": 42, "trace.decodes": 7},
    "gauges": {"graph.nodes": 186.0},
    "histograms": {
        "span.symex.run": {"count": 7, "sum": 0.0721, "min": 0.001,
                           "max": 0.02, "mean": 0.0103, "p50": 0.01,
                           "p90": 0.0137, "p99": 0.02},
    },
}


class TestRender:
    def test_metric_name_mapping(self):
        assert metric_name("solver.cache.hits") == \
            "repro_solver_cache_hits"
        assert metric_name("span.symex.run") == "repro_span_symex_run"

    def test_counter_gets_total_suffix(self):
        text = render_openmetrics(SNAP)
        assert "# TYPE repro_solver_cache_hits counter" in text
        assert "repro_solver_cache_hits_total 42" in text

    def test_gauge_sample(self):
        text = render_openmetrics(SNAP)
        assert "# TYPE repro_graph_nodes gauge" in text
        assert "repro_graph_nodes 186" in text

    def test_summary_quantiles_count_sum(self):
        text = render_openmetrics(SNAP)
        assert "# TYPE repro_span_symex_run summary" in text
        assert 'repro_span_symex_run{quantile="0.9"} 0.0137' in text
        assert "repro_span_symex_run_count 7" in text
        assert "repro_span_symex_run_sum 0.0721" in text

    def test_terminated_by_eof(self):
        assert render_openmetrics(SNAP).endswith("# EOF\n")

    def test_empty_snapshot_is_still_valid(self):
        text = render_openmetrics({})
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}


class TestRoundTrip:
    def test_full_round_trip(self):
        families = parse_openmetrics(render_openmetrics(SNAP))
        assert families["repro_solver_cache_hits"]["total"] == 42
        assert families["repro_solver_cache_hits"]["type"] == "counter"
        assert families["repro_trace_decodes"]["total"] == 7
        assert families["repro_graph_nodes"]["value"] == 186.0
        summary = families["repro_span_symex_run"]
        assert summary["type"] == "summary"
        assert summary["count"] == 7
        assert summary["sum"] == pytest.approx(0.0721)
        assert summary["quantiles"] == {"0.5": 0.01, "0.9": 0.0137,
                                        "0.99": 0.02}

    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x_total 1\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_openmetrics("!! not a sample\n# EOF\n")


class TestCliOpenmetrics:
    def test_stats_openmetrics_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "tel.jsonl"
        assert main(["reproduce", "nasm-2004-1287",
                     "--telemetry", str(log)]) == 0
        capsys.readouterr()
        assert main(["stats", str(log), "--openmetrics"]) == 0
        text = capsys.readouterr().out
        families = parse_openmetrics(text)
        assert families["repro_reconstruct_successes"]["total"] == 1
        assert families["repro_span_symex_run"]["count"] >= 1
