"""Engine edge cases: PTW mismatches, event framing, benign ends."""

import pytest

from repro.core.instrument import instrument
from repro.core.selection import RecordingItem
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder
from repro.ir.module import ProgramPoint
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.packets import PtwEvent
from repro.trace.ringbuffer import RingBuffer


def traced(module, env):
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module, env, tracer=encoder).run()
    return run, decode(encoder.buffer)


def instrumented_module():
    b = ModuleBuilder("ptwm")
    f = b.function("main", [])
    f.block("entry")
    x = f.input("stdin", 1, dest="%x")
    y = f.add("%x", 1, dest="%y")
    f.ptwrite("%y", tag=3)
    ok = f.cmp("ne", "%y", 0, width=8)
    f.assert_(ok, "wrapped to zero")
    f.ret(0)
    return b.build()


class TestPtwHandling:
    def test_tag_mismatch_diverges(self):
        module = instrumented_module()
        run, trace = traced(module, Environment({"stdin": b"\xff"}))
        assert run.failure is not None
        for chunk in trace.chunks:
            chunk.events[:] = [PtwEvent(99, e.value)
                               if isinstance(e, PtwEvent) else e
                               for e in chunk.events]
        result = ShepherdedSymex(module, trace, run.failure).run()
        assert result.status == "diverged"
        assert "tag" in result.divergence_reason

    def test_value_constrains_inputs(self):
        module = instrumented_module()
        run, trace = traced(module, Environment({"stdin": b"\x07"}))
        assert run.failure is None
        result = ShepherdedSymex(module, trace, None).run()
        assert result.completed
        assert result.model.streams()["stdin"][0] == 0x07

    def test_const_value_mismatch_diverges(self):
        b = ModuleBuilder("cptw")
        f = b.function("main", [])
        f.block("entry")
        c = f.const(5, dest="%c")
        f.ptwrite("%c", tag=0)
        f.ret(0)
        module = b.build()
        run, trace = traced(module, Environment({}))
        for chunk in trace.chunks:
            chunk.events[:] = [PtwEvent(0, 999)
                               if isinstance(e, PtwEvent) else e
                               for e in chunk.events]
        result = ShepherdedSymex(module, trace, None).run()
        assert result.status == "diverged"

    def test_missing_ptw_event_diverges(self):
        module = instrumented_module()
        run, trace = traced(module, Environment({"stdin": b"\x07"}))
        for chunk in trace.chunks:
            chunk.events[:] = [e for e in chunk.events
                               if not isinstance(e, PtwEvent)]
        result = ShepherdedSymex(module, trace, None).run()
        assert result.status == "diverged"


class TestBenignEnds:
    def test_main_return_value_irrelevant_to_replay(self, call_module):
        run, trace = traced(call_module, Environment({"stdin": b"\x09"}))
        result = ShepherdedSymex(call_module, trace, None).run()
        assert result.completed

    def test_outputs_collected_as_terms(self, abort_module):
        run, trace = traced(abort_module, Environment({"stdin": b"\x05"}))
        engine = ShepherdedSymex(abort_module, trace, None)
        result = engine.run()
        assert result.completed
        assert "stdout" in engine.outputs
        assert len(engine.outputs["stdout"]) == 1

    def test_failure_tid_checked(self, abort_module):
        import dataclasses

        run, trace = traced(abort_module, Environment({"stdin": b"\xff"}))
        wrong_tid = dataclasses.replace(run.failure, tid=5)
        result = ShepherdedSymex(abort_module, trace, wrong_tid).run()
        assert result.status == "diverged"

    def test_failure_point_checked(self, abort_module):
        import dataclasses

        run, trace = traced(abort_module, Environment({"stdin": b"\xff"}))
        wrong = dataclasses.replace(
            run.failure, point=ProgramPoint("main", "ok", 0))
        result = ShepherdedSymex(abort_module, trace, wrong).run()
        assert result.status == "diverged"


class TestInstrumentedRoundTrip:
    def test_selection_instrument_replay_cycle(self, table_module):
        """Manual one-iteration cycle: stall -> select -> instrument ->
        retrace -> complete, outside the reconstructor."""
        from repro.core.selection import select_key_values

        env = Environment({"stdin": bytes([9, 9])})
        run, trace = traced(table_module, env)
        first = ShepherdedSymex(table_module, trace, run.failure,
                                work_limit=30).run()
        assert first.stalled
        plan = select_key_values(first.stall)
        assert plan.items
        inst = instrument(table_module, plan.items)
        run2, trace2 = traced(inst.module, Environment(
            {"stdin": bytes([9, 9])}))
        assert run2.ptwrite_count >= 1
        second = ShepherdedSymex(inst.module, trace2, run2.failure,
                                 work_limit=100_000).run()
        assert second.completed
