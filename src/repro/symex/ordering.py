"""Chunk-order recovery for ambiguous timestamps (§3.4).

Intel PT timestamps (MTC) are coarse: when two threads' chunks carry the
*same* timestamp, their true order is unknown.  The paper's ER
"arbitrarily selects a sequence of instructions and tries to reconstruct
the execution"; if that order contradicts the trace, another is tried.

:func:`candidate_orders` enumerates chunk orderings that respect the
timestamp partial order, permuting only within ambiguous groups
(equal-timestamp runs spanning more than one thread), cheapest-first.
:func:`replay_with_order_recovery` drives shepherded symbolic execution
over the candidates until one replays without divergence.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from ..interp.failures import FailureInfo
from ..ir.module import Module
from ..trace.decoder import DecodedChunk, DecodedTrace
from .engine import ShepherdedSymex
from .result import SymexResult

#: permutations tried per ambiguous group (bounds the search)
MAX_GROUP_PERMUTATIONS = 24
#: total candidate orders tried before giving up
MAX_TOTAL_ORDERS = 256


def ambiguous_groups(chunks: List[DecodedChunk]) -> List[range]:
    """Index ranges of maximal equal-timestamp, multi-thread runs."""
    groups: List[range] = []
    start = 0
    while start < len(chunks):
        end = start + 1
        while end < len(chunks) and \
                chunks[end].timestamp == chunks[start].timestamp:
            end += 1
        tids = {chunks[i].tid for i in range(start, end)}
        if end - start > 1 and len(tids) > 1:
            groups.append(range(start, end))
        start = end
    return groups


def candidate_orders(chunks: List[DecodedChunk],
                     max_total: int = MAX_TOTAL_ORDERS
                     ) -> Iterator[List[DecodedChunk]]:
    """All bounded reorderings consistent with the timestamps.

    The identity order comes first (the paper's 'arbitrary selection'),
    then permutations of each ambiguous group, combined breadth-first so
    near-identity orders are tried before heavily-shuffled ones.
    """
    groups = ambiguous_groups(chunks)
    if not groups:
        yield list(chunks)
        return
    per_group = []
    for group in groups:
        perms = list(itertools.islice(
            itertools.permutations(group), MAX_GROUP_PERMUTATIONS))
        per_group.append(perms)
    emitted = 0
    for combo in itertools.product(*per_group):
        order = list(range(len(chunks)))
        for group, perm in zip(groups, combo):
            for slot, source in zip(group, perm):
                order[slot] = source
        yield [chunks[i] for i in order]
        emitted += 1
        if emitted >= max_total:
            return


def replay_with_order_recovery(module: Module, trace: DecodedTrace,
                               failure: Optional[FailureInfo],
                               max_attempts: int = MAX_TOTAL_ORDERS,
                               **engine_kwargs) -> SymexResult:
    """Shepherd the trace, searching over ambiguous chunk orders.

    Directed search: replay with the current order; on divergence,
    advance the permutation of the nearest ambiguous group at or before
    the diverging chunk and retry (later groups' choices are kept — the
    races the groups cover are independent in the coarse-interleaving
    regime).  Returns the first non-diverged result, or the last
    divergence with the attempt count recorded.
    """
    chunks = list(trace.chunks)
    groups = ambiguous_groups(chunks)
    perms: List[List[tuple]] = [
        list(itertools.islice(itertools.permutations(group),
                              MAX_GROUP_PERMUTATIONS))
        for group in groups
    ]
    state = [0] * len(groups)

    def current_order() -> List[DecodedChunk]:
        order = list(range(len(chunks)))
        for group, options, chosen in zip(groups, perms, state):
            for slot, source in zip(group, options[chosen]):
                order[slot] = source
        return [chunks[i] for i in order]

    last: Optional[SymexResult] = None
    for attempt in range(1, max_attempts + 1):
        candidate = DecodedTrace(chunks=current_order(),
                                 truncated=trace.truncated)
        result = ShepherdedSymex(module, candidate, failure,
                                 **engine_kwargs).run()
        if result.status != "diverged":
            return result
        last = result
        advanced = False
        # nearest group at or before the diverging chunk, falling back
        # to earlier ones whose permutations are not exhausted
        for index in reversed(range(len(groups))):
            if groups[index].start > result.diverged_chunk >= 0:
                continue
            if state[index] + 1 < len(perms[index]):
                state[index] += 1
                advanced = True
                break
            state[index] = 0  # exhausted: reset and carry to earlier
        if not advanced:
            break
    if last is not None:
        last.divergence_reason += f" (after {attempt} chunk orders)"
        return last
    raise ValueError("trace has no chunks")
