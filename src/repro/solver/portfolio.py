"""Race diverse search backends on one query; commit deterministically.

``race()`` runs the same query on N strategies (see
:mod:`repro.solver.backend`) sharing one budget *pool*: each racer gets
a private window equal to the caller budget's remaining work, the first
definitive answer wins, and the rest are cancelled through the same
cancel-Event / :class:`~repro.errors.SearchCancelled` machinery the
gap-search shards use.

**Commit rules** make the raced answer byte-identical to the reference
backend alone, independent of N and of thread timing:

* Only the **reference** backend may commit a *model* (and the
  assumption-stack snapshot riding with it).  Variant models are
  discarded — committing one would change which assignment downstream
  concretization sees, and a variant model found where the reference
  would have timed out would even change *stall* behaviour.
* Any backend may commit **unsat**: every backend is complete, so unsat
  is canonical — whoever proves it first ends the race.  A variant
  proving unsat where the reference would have timed out is a *rescue*
  (strictly less stalling, same verdict semantics); it is counted but
  disabled nowhere, because unsat-vs-timeout never reaches test-case
  bytes: an unsat per-access check and a stalled one both terminate the
  replay attempt the same way only faster.  When determinism across
  portfolio widths is the priority (the equality harness), rescues are
  the one sanctioned divergence: strictly fewer timeouts.
* **Timeout** is declared only when the reference exhausted its window
  and no racer proved unsat.

**Charging** is exactly-once: the caller's budget is charged with the
*winner's* spend (the modelled-time analog of "the portfolio answers as
fast as its best member"); loser work is real CPU but modelled-parallel,
so it lands in the ``solver.portfolio.loser_work`` histogram instead of
the query budget.  The ``_metered`` wrapper upstream then attributes the
query once, from the budget delta.
"""

from __future__ import annotations

import logging
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import SearchCancelled, SolverTimeout, UnsatError
from .budget import Budget
from .terms import Term

__all__ = ["race", "RaceBudget"]

logger = logging.getLogger(__name__)


class RaceBudget(Budget):
    """A racer's private window, cancellable by the shared Event.

    The cancel check rides on ``charge`` — the hot path every solver
    routine already calls — so a cancelled racer stops within one
    evaluation step without any polling machinery of its own.
    """

    def __init__(self, limit: int, context: str, cancel: threading.Event):
        super().__init__(limit, context)
        self._cancel = cancel

    def charge(self, amount: int) -> None:
        self.spent += amount
        if self._cancel.is_set():
            raise SearchCancelled()
        if self.spent > self.limit:
            raise SolverTimeout(self.spent, self.limit, self.context)


def race(backends: Sequence, constraints: Sequence[Term], budget: Budget,
         hints: Optional[Dict[str, int]] = None, retained=None):
    """Run one query on every backend; return ``(model, snapshot)``.

    Raises :class:`UnsatError` or :class:`SolverTimeout` exactly as the
    reference backend alone would (modulo unsat rescues, see module
    docstring).  The caller's ``budget`` is charged once, with the
    winner's spend.
    """
    tel = telemetry.get()
    tel.count("solver.portfolio.races")
    cancel = threading.Event()
    window = budget.remaining()
    #: slot i: (outcome, spent); outcome in sat/unsat/timeout/cancelled
    slots: List[Optional[Tuple[str, int]]] = [None] * len(backends)

    def run_variant(index: int, backend) -> None:
        racer = RaceBudget(window, budget.context, cancel)
        try:
            backend.search(constraints, racer, hints=hints,
                           retained=retained)
            outcome = "sat"  # not committable: only reference models win
        except UnsatError:
            outcome = "unsat"
            cancel.set()  # canonical verdict: end the race, stop the rest
        except SolverTimeout:
            outcome = "timeout"
        except SearchCancelled:
            outcome = "cancelled"
        except Exception:  # never let a racer bug hang the join below
            logger.exception("portfolio backend %s crashed", backend.name)
            outcome = "cancelled"
        slots[index] = (outcome, racer.spent)

    threads = [threading.Thread(target=run_variant, args=(i, b),
                                name=f"portfolio-{b.name}", daemon=True)
               for i, b in enumerate(backends[1:], start=1)]
    for thread in threads:
        thread.start()

    # the reference races on the calling thread, under the same
    # cancellable window, so a variant's unsat proof stops it mid-DFS
    reference = RaceBudget(window, budget.context, cancel)
    ref_model = ref_snapshot = None
    #: the reference's own definitive exception; carries its assumption-
    #: stack harvest (``exc.snapshot``).  Only an *uncancelled* reference
    #: harvest may reach the stack: variant harvests (and a reference cut
    #: short by a variant's proof) are dropped so the retained state is
    #: byte-identical to what the serial reference would have produced.
    ref_exc = None
    try:
        ref_model, ref_snapshot = backends[0].search(
            constraints, reference, hints=hints, retained=retained)
        ref_outcome = "sat"
        cancel.set()
    except UnsatError as exc:
        ref_outcome = "unsat"
        ref_exc = exc
        cancel.set()
    except SolverTimeout as exc:
        ref_outcome = "timeout"  # no cancel: a variant may still rescue
        ref_exc = exc
    except SearchCancelled:
        ref_outcome = "cancelled"
    for thread in threads:
        thread.join()
    slots[0] = (ref_outcome, reference.spent)

    def settle(winner_index: int) -> None:
        name = backends[winner_index].name
        tel.count(f"solver.portfolio.wins.{name}")
        for index, slot in enumerate(slots):
            if index == winner_index or slot is None:
                continue
            outcome, spent = slot
            if outcome == "cancelled":
                tel.count("solver.portfolio.cancelled")
            if outcome == "sat":
                tel.count("solver.portfolio.variant_sat_discarded")
            # loser CPU is modelled-parallel: telemetry, not the budget
            tel.histogram("solver.portfolio.loser_work").record(spent)
        budget.charge(slots[winner_index][1])

    ref_harvest = getattr(ref_exc, "snapshot", None) if ref_exc else None
    if ref_outcome == "sat":
        settle(0)
        return ref_model, ref_snapshot
    if ref_outcome == "unsat":
        settle(0)
        raise ref_exc  # the reference's own proof, harvest attached
    # reference timed out or was cancelled: an unsat racer (the only
    # definitive variant outcome) decides; lowest index for stability
    for index, slot in enumerate(slots):
        if slot is not None and slot[0] == "unsat":
            if ref_outcome == "timeout":
                tel.count("solver.portfolio.rescues")
            settle(index)
            err = UnsatError("no satisfying assignment")
            # the verdict is the variant's, but the retainable facts are
            # still the (uncancelled, timed-out) reference's own
            err.snapshot = ref_harvest
            raise err
    # no definitive answer anywhere: the portfolio stalls exactly like
    # the serial reference (whose spend overran the window, so charging
    # it trips the caller's budget)
    settle(0)
    err = SolverTimeout(budget.spent, budget.limit, budget.context)
    err.snapshot = ref_harvest
    raise err
