"""Simulated Intel PT: packets, ring buffer, encoder/decoder, overhead."""

from .decoder import DecodedChunk, DecodedTrace, decode
from .degrade import DEFAULT_LOSS, degrade_trace, gap_count
from .encoder import PTEncoder
from .inspect import format_trace
from .merge import merge_by_timestamp, merge_trace_by_timestamp, split_per_cpu
from .overhead import OverheadModel, OverheadSample
from .packets import GapEvent, PtwEvent, TntEvent
from .ringbuffer import DEFAULT_CAPACITY, RingBuffer

__all__ = [
    "DecodedChunk",
    "DecodedTrace",
    "decode",
    "DEFAULT_LOSS",
    "degrade_trace",
    "gap_count",
    "PTEncoder",
    "format_trace",
    "merge_by_timestamp",
    "merge_trace_by_timestamp",
    "split_per_cpu",
    "OverheadModel",
    "OverheadSample",
    "GapEvent",
    "PtwEvent",
    "TntEvent",
    "RingBuffer",
    "DEFAULT_CAPACITY",
]
