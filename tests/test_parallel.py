"""The batch reconstruction runner and its telemetry merging."""

import json

import pytest

from repro import telemetry
from repro.parallel import BatchResult, run_batch, write_merged_jsonl

#: small, fast workloads — the batch tests stay well under a second each
FAST = ["objdump-2018-6323", "matrixssl-2014-1569"]


class TestRunBatch:
    def test_serial_batch(self):
        result = run_batch(FAST, parallel=1)
        assert [i.workload for i in result.items] == FAST
        assert result.succeeded == len(FAST)
        assert all(i.error is None for i in result.items)
        assert all(i.occurrences >= 1 for i in result.items)

    def test_parallel_matches_serial(self):
        serial = run_batch(FAST, parallel=1)
        parallel = run_batch(FAST, parallel=2)
        fingerprint = lambda r: [(i.workload, i.success, i.verified,
                                  i.occurrences, i.unrelated_occurrences)
                                 for i in r.items]
        assert fingerprint(parallel) == fingerprint(serial)

    def test_merged_telemetry_sums_counters(self):
        result = run_batch(FAST, parallel=1)
        counters = result.telemetry["counters"]
        assert counters["reconstruct.runs"] == len(FAST)
        # every worker's solver traffic is visible in the merged view
        assert counters["reconstruct.successes"] == len(FAST)

    def test_solver_cache_stats_surface(self):
        result = run_batch(FAST, parallel=1)
        stats = result.solver_cache_stats
        assert {"hits", "misses", "hit_rate"} <= set(stats)
        assert stats["misses"] >= 0

    def test_bad_workload_isolated(self):
        result = run_batch(["objdump-2018-6323", "no-such-workload"])
        good, bad = result.items
        assert good.success and good.error is None
        assert not bad.success and "no-such-workload" in bad.error
        assert result.succeeded == 1

    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ValueError):
            run_batch(FAST, parallel=0)

    def test_to_dict_round_trips_through_json(self):
        result = run_batch(FAST[:1])
        data = json.loads(json.dumps(result.to_dict()))
        assert data["total"] == 1
        assert data["items"][0]["workload"] == FAST[0]


class TestMergedJsonl:
    def test_merged_log_readable_by_stats(self, tmp_path):
        result = run_batch(FAST, parallel=1, capture_events=True)
        path = tmp_path / "merged.jsonl"
        lines = write_merged_jsonl(result, path)
        events = telemetry.read_jsonl(path)
        assert len(events) == lines
        # events are tagged with their workload
        tagged = {e.get("workload") for e in events if "workload" in e}
        assert tagged == set(FAST)
        # the final snapshot carries the merged counters
        snapshot = telemetry.final_snapshot(events)
        assert snapshot["counters"]["reconstruct.runs"] == len(FAST)
        # and the human renderer accepts the stream
        assert "iter" in telemetry.render_stats(events)

    def test_no_events_without_capture(self):
        result = run_batch(FAST[:1], parallel=1)
        assert result.items[0].events == []


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = telemetry.merge_snapshots([
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            {"counters": {"x": 2, "y": 5}, "gauges": {}, "histograms": {}},
            None,
        ])
        assert merged["counters"] == {"x": 3, "y": 5}

    def test_gauges_keep_max(self):
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {"g": 3}, "histograms": {}},
            {"counters": {}, "gauges": {"g": 7}, "histograms": {}},
        ])
        assert merged["gauges"]["g"] == 7

    def test_histograms_merge_exact_aggregates(self):
        h1 = {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
              "mean": 5.0, "p50": 5.0, "p90": 9.0, "p99": 9.0}
        h2 = {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0,
              "mean": 3.0, "p50": 3.0, "p90": 4.0, "p99": 4.0}
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
            {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
        ])["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["sum"] == 16.0
        assert merged["min"] == 1.0 and merged["max"] == 9.0
        assert merged["mean"] == 4.0

    def test_empty_input(self):
        merged = telemetry.merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}
