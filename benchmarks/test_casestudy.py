"""Benchmark: the §5.4 invariant-based failure localization case study."""

import pytest

from repro.evaluation.casestudy import run_casestudy


@pytest.mark.benchmark(group="casestudy")
def test_mimic_case_study(benchmark, save_artifact):
    """MIMIC finds the same root causes from ER output as from the
    original failing test (od and pr)."""
    result = benchmark.pedantic(run_casestudy, rounds=1, iterations=1)
    save_artifact("casestudy", result.render())
    assert result.all_match
    assert {r.program for r in result.rows} == {"od", "pr"}
