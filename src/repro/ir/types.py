"""Scalar value helpers for the miniature IR.

All IR registers hold 64-bit unsigned integers.  Narrower operations
(``add.32`` and friends) mask their results to the operation width, which is
how the workloads model C integer overflow (e.g. the PHP-2012-2386 and
Objdump-2018-6323 bugs in Table 1).
"""

from __future__ import annotations

WORD_BITS = 64
MASK64 = (1 << WORD_BITS) - 1

#: Widths accepted by binary operations and comparisons.
VALID_WIDTHS = (1, 8, 16, 32, 64)

#: Sizes (bytes) accepted by loads and stores.
VALID_ACCESS_SIZES = (1, 2, 4, 8)


def mask(value: int, width: int = WORD_BITS) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit integer."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int = WORD_BITS) -> int:
    """Interpret an unsigned ``width``-bit value as two's-complement."""
    value = mask(value, width)
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def from_signed(value: int, width: int = WORD_BITS) -> int:
    """Encode a (possibly negative) Python int as unsigned ``width`` bits."""
    return value & ((1 << width) - 1)


def sign_extend(value: int, from_width: int, to_width: int = WORD_BITS) -> int:
    """Sign-extend a ``from_width``-bit value to ``to_width`` bits."""
    return from_signed(to_signed(value, from_width), to_width)


def bytes_le(value: int, size: int) -> bytes:
    """Encode ``value`` as ``size`` little-endian bytes."""
    return mask(value, size * 8).to_bytes(size, "little")


def int_le(data: bytes) -> int:
    """Decode little-endian bytes into an unsigned integer."""
    return int.from_bytes(data, "little")
