"""Deep-term regression: evaluation must not hit the recursion limit.

Loop-heavy programs build terms tens of thousands of nodes deep; the
evaluator is iterative precisely so those do not blow Python's stack.
"""

import pytest

from repro.solver import terms as T
from repro.solver.budget import Budget, UnlimitedBudget
from repro.solver.evaluator import tv_eval
from repro.solver.solver import Solver


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def deep_chain(depth, base=None):
    node = base if base is not None else T.var("x")
    for i in range(depth):
        node = T.binop("xor", T.binop("shl", node, T.const(1), 32),
                       T.const(i), 32)
    return node


class TestDeepEvaluation:
    def test_50k_deep_term_evaluates(self):
        term = deep_chain(25_000)  # ~50k nodes deep
        value = tv_eval(term, {"x": 7}, UnlimitedBudget())
        assert value is not None

    def test_50k_deep_matches_reference(self):
        term = deep_chain(5_000)
        got = tv_eval(term, {"x": 3}, UnlimitedBudget())
        expected = 3
        for i in range(5_000):
            expected = (((expected << 1) & 0xFFFFFFFF) ^ i) & 0xFFFFFFFF
        assert got == expected

    def test_deep_unknown_propagates(self):
        term = deep_chain(20_000)
        assert tv_eval(term, {}, UnlimitedBudget()) is None

    def test_deep_read_chain(self):
        arr = T.array("A", bytes(64))
        node = arr
        for i in range(8_000):
            node = T.store(node, T.const(i % 64), T.const(i & 0xFF, 8))
        read = T.read(node, T.var("j"))
        value = tv_eval(read, {"j": 5}, UnlimitedBudget())
        # topmost store to index 5: i = 7941 (largest i%64==5)
        assert value == 7941 & 0xFF

    def test_deep_term_in_solver(self):
        term = deep_chain(4_000)
        cs = [T.cmp("eq", T.binop("and", term, T.const(0), 32),
                    T.const(0), 32)]
        model = Solver().solve(cs)
        assert model is not None

    def test_budget_still_charged(self):
        term = deep_chain(1_000)
        budget = Budget(10**9)
        tv_eval(term, {"x": 1}, budget)
        assert budget.spent >= 2_000  # >= one charge per node

    def test_ite_untaken_branch_not_evaluated(self):
        # the untaken branch holds a read of an undefined-op; evaluating
        # it would raise — taken-branch laziness must survive iteration
        poison = T.binop("udiv", T.const(1), T.var("z"), 8)
        term = T.ite(T.cmp("eq", T.var("c"), T.const(1), 8),
                     T.const(42), poison)
        assert tv_eval(term, {"c": 1}, UnlimitedBudget()) == 42

    def test_shared_subterms_memoized_once(self):
        shared = deep_chain(2_000)
        tree = T.binop("add", shared, shared, 32)
        budget = Budget(10**9)
        tv_eval(tree, {"x": 1}, budget)
        # roughly one visit per distinct node, not two
        assert budget.spent < 2 * 2 * 2_000 + 100
