"""Likely-invariant inference (Daikon-lite) and MIMIC localization."""

from .daikon import (Invariant, InvariantMiner, Sample, SampleCollector,
                     check_invariants)
from .mimic import Localization, MimicLocalizer

__all__ = [
    "Invariant",
    "InvariantMiner",
    "Sample",
    "SampleCollector",
    "check_invariants",
    "Localization",
    "MimicLocalizer",
]
