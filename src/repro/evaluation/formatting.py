"""Plain-text table/series rendering for the evaluation harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Column-aligned text table (the harnesses' human-readable output)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, points: Sequence, x_label: str,
                  y_label: str) -> str:
    """Render an (x, y) series as indented text (figure data)."""
    lines = [f"{title}  [{x_label} -> {y_label}]"]
    for x, y in points:
        lines.append(f"  {x:>12}  {y}")
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    return f"{value * 100:.{digits}f}%"
