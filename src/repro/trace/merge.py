"""Merging per-CPU trace buffers (the real Intel PT deployment shape).

Hardware PT writes one buffer per logical CPU; an offline decoder merges
them into a global order using the coarse timestamp packets.  Chunks that
share a timestamp have *unknown* relative order after the merge — the
ambiguity §3.4's order recovery (``repro.symex.ordering``) resolves.

This module simulates that pipeline: split a faithful single-buffer
trace into per-thread streams (as per-CPU buffers would hold them) and
re-merge by timestamp only.
"""

from __future__ import annotations

from typing import Dict, List

from .decoder import DecodedChunk, DecodedTrace


def split_per_cpu(trace: DecodedTrace) -> Dict[int, List[DecodedChunk]]:
    """Per-thread chunk streams, order within each stream preserved."""
    streams: Dict[int, List[DecodedChunk]] = {}
    for chunk in trace.chunks:
        streams.setdefault(chunk.tid, []).append(chunk)
    return streams


def merge_by_timestamp(streams: Dict[int, List[DecodedChunk]]
                       ) -> DecodedTrace:
    """Merge per-CPU streams using timestamps alone.

    A stable merge keyed by (timestamp, tid): chunks with equal
    timestamps come out in tid order, which may *differ* from the true
    execution order — the information genuinely lost by coarse
    timestamps.
    """
    indexed = []
    for tid, chunks in streams.items():
        for position, chunk in enumerate(chunks):
            indexed.append((chunk.timestamp, tid, position, chunk))
    indexed.sort(key=lambda item: (item[0], item[1], item[2]))
    return DecodedTrace(chunks=[item[3] for item in indexed])


def merge_trace_by_timestamp(trace: DecodedTrace) -> DecodedTrace:
    """Round-trip a trace through the per-CPU split + timestamp merge."""
    return merge_by_timestamp(split_per_cpu(trace))
