"""Ablations for the design choices DESIGN.md calls out.

* **Solver-timeout sensitivity** (the paper's 30 s knob, §4): shorter
  budgets trade more failure occurrences for less per-occurrence solver
  work; longer budgets reproduce in fewer occurrences.
* **Ring-buffer sizing** (§5.3 sensitivity): the paper found no
  statistical overhead difference across 4 KB–64 MB buffers; tracing
  cost depends on bytes *produced*, not retained.
* **Per-access feasibility checks** (§3.2): disabling the per-access
  solver calls defers all work to the final solve.
"""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.evaluation.formatting import render_table
from repro.interp.interpreter import Interpreter
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.overhead import OverheadModel
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload


@pytest.mark.benchmark(group="ablation")
def test_solver_timeout_sensitivity(benchmark, save_artifact):
    workload = get_workload("sqlite-4e8e485")

    def sweep():
        rows = []
        for limit in (10_000, 40_000, 160_000, 640_000):
            er = ExecutionReconstructor(workload.fresh_module(),
                                        work_limit=limit,
                                        max_occurrences=15)
            report = er.reconstruct(ProductionSite(workload.failing_env))
            rows.append((limit, report.occurrences,
                         report.total_symex_modelled_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["work limit", "#Occur", "total symbex (modelled s)"],
        [[l, o, f"{s:.1f}"] for l, o, s in rows],
        f"Ablation — solver-timeout sensitivity ({workload.name})")
    save_artifact("ablation_timeout", table)
    occurrences = [o for _, o, _ in rows]
    assert all(o >= 1 for o in occurrences)
    # more budget never needs more occurrences
    assert occurrences == sorted(occurrences, reverse=True) or \
        max(occurrences) - min(occurrences) <= 3


@pytest.mark.benchmark(group="ablation")
def test_ring_buffer_sizing(benchmark, save_artifact):
    workload = get_workload("sqlite-7be932d")
    module = workload.fresh_module()
    model = OverheadModel(noise=0.0)

    def measure():
        rows = []
        for capacity in (4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20):
            encoder = PTEncoder(RingBuffer(capacity))
            run = Interpreter(module, workload.benign_env(0),
                              tracer=encoder).run()
            overhead = model.er_sample(run, encoder.bytes_emitted).overhead
            rows.append((capacity, overhead))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["buffer", "ER overhead"],
        [[f"{c >> 10} KiB", f"{o * 100:.3f}%"] for c, o in rows],
        "Ablation — ring-buffer sizing (paper: no significant difference)")
    save_artifact("ablation_ringbuffer", table)
    overheads = [o for _, o in rows]
    assert max(overheads) - min(overheads) < 1e-9


@pytest.mark.benchmark(group="ablation")
def test_per_access_feasibility_checks(benchmark, save_artifact):
    """§3.2's per-access solver calls vs deferring to the final solve.

    Uses a symbolic-write-chain program (the Fig. 3 pattern) so symbolic
    memory accesses actually occur; the per-access mode pays solver calls
    during the replay, the deferred mode concentrates them at the end.
    """
    from repro.interp.env import Environment
    from repro.ir.builder import ModuleBuilder

    b = ModuleBuilder("feas-ablation")
    b.global_("V", 512)
    f = b.function("main", [])
    f.block("entry")
    g = f.global_addr("V", dest="%V")
    f.const(0, dest="%k")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%k", 8)
    f.br(done, "chk", "body")
    f.block("body")
    idx = f.input("stdin", 1, dest="%idx")
    p = f.gep("%V", "%idx", 1)
    f.store(p, "%k", 1)
    f.add("%k", 1, dest="%k")
    f.jmp("loop")
    f.block("chk")
    probe = f.input("stdin", 1, dest="%probe")
    q = f.gep("%V", "%probe", 1)
    v = f.load(q, 1, dest="%v")
    bad = f.cmp("eq", "%v", 7, width=8)
    f.br(bad, "boom", "ok")
    f.block("boom")
    f.abort("probe hit the last write")
    f.block("ok")
    f.ret(0)
    module = b.build()
    data = bytes([10, 20, 30, 40, 50, 60, 70, 80, 80])
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module, Environment({"stdin": data}),
                      tracer=encoder).run()
    assert run.failure is not None
    trace = decode(encoder.buffer)

    def both():
        with_checks = ShepherdedSymex(
            module, trace, run.failure, work_limit=10_000_000,
            check_feasibility=True).run()
        without = ShepherdedSymex(
            module, trace, run.failure, work_limit=10_000_000,
            check_feasibility=False).run()
        return with_checks, without

    with_checks, without = benchmark.pedantic(both, rounds=1, iterations=1)
    table = render_table(
        ["mode", "status", "solver calls", "solver work"],
        [["per-access checks", with_checks.status,
          with_checks.stats.solver_calls, with_checks.stats.solver_work],
         ["final solve only", without.status,
          without.stats.solver_calls, without.stats.solver_work]],
        "Ablation — per-access feasibility checks")
    save_artifact("ablation_feasibility", table)
    assert with_checks.completed and without.completed
    assert with_checks.stats.solver_calls > without.stats.solver_calls
