"""IR 'standard library': routines shared by the workload applications.

These helpers add commonly-needed functions to a module under
construction — byte copies, string length, FNV-style hashing, a
case-folding table — so workloads read like small programs rather than
instruction soup, and so the same code patterns recur across apps the
way libc does in the paper's targets.
"""

from __future__ import annotations

from ..ir.builder import FunctionBuilder, ModuleBuilder

#: name of the 256-byte lowercase-folding table global
CASE_TABLE = "case_fold_table"


def case_fold_bytes() -> bytes:
    """tolower() translation table: 'A'-'Z' fold to 'a'-'z'."""
    table = bytearray(range(256))
    for ch in range(ord("A"), ord("Z") + 1):
        table[ch] = ch + 32
    return bytes(table)


def add_case_table(b: ModuleBuilder) -> str:
    """Install the case-folding table global (used by the SQL tokenizer)."""
    b.module.add_global(CASE_TABLE, 256, case_fold_bytes())
    return CASE_TABLE


def add_memcpy(b: ModuleBuilder) -> str:
    """``memcpy(dst, src, n)``: byte copy, returns dst."""
    f = b.function("memcpy", ["dst", "src", "n"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n")
    f.br(done, "out", "body")
    f.block("body")
    src_p = f.gep("%src", "%i", 1)
    byte = f.load(src_p, 1)
    dst_p = f.gep("%dst", "%i", 1)
    f.store(dst_p, byte, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%dst")
    return "memcpy"


def add_memset(b: ModuleBuilder) -> str:
    """``memset(dst, value, n)``: byte fill, returns dst."""
    f = b.function("memset", ["dst", "value", "n"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n")
    f.br(done, "out", "body")
    f.block("body")
    p = f.gep("%dst", "%i", 1)
    f.store(p, "%value", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%dst")
    return "memset"


def add_strlen(b: ModuleBuilder) -> str:
    """``strlen(s)``: scan for NUL."""
    f = b.function("strlen", ["s"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    p = f.gep("%s", "%i", 1)
    byte = f.load(p, 1)
    done = f.cmp("eq", byte, 0, width=8)
    f.br(done, "out", "next")
    f.block("next")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%i")
    return "strlen"


def add_fnv_hash(b: ModuleBuilder) -> str:
    """``fnv(buf, n)``: 32-bit FNV-1a over n bytes (symbol-table hashing)."""
    f = b.function("fnv", ["buf", "n"])
    f.block("entry")
    f.const(0x811C9DC5, dest="%h")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n")
    f.br(done, "out", "body")
    f.block("body")
    p = f.gep("%buf", "%i", 1)
    byte = f.load(p, 1)
    f.xor("%h", byte, width=32, dest="%h")
    f.mul("%h", 0x01000193, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%h")
    return "fnv"


def add_read_bytes(b: ModuleBuilder, stream: str = "stdin") -> str:
    """``read_bytes(dst, n)``: read n input bytes into dst; returns n."""
    name = f"read_bytes_{stream}"
    f = b.function(name, ["dst", "n"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n")
    f.br(done, "out", "body")
    f.block("body")
    byte = f.input(stream, 1)
    p = f.gep("%dst", "%i", 1)
    f.store(p, byte, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%n")
    return name


def emit_case_fold(f: FunctionBuilder, byte_reg: str,
                   table_reg: str) -> str:
    """Inline lowercase-fold of one byte via the case table."""
    p = f.gep(table_reg, byte_reg, 1)
    return f.load(p, 1)


def encode_u32(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def encode_u16(value: int) -> bytes:
    return (value & 0xFFFF).to_bytes(2, "little")
