"""Environment streams, clock, event accounting."""

from repro.interp.env import CLOCK_STREAM, IO_CHUNK, Environment


class TestStreams:
    def test_sequential_reads(self):
        env = Environment({"s": b"abcd"})
        assert env.read("s", 2) == b"ab"
        assert env.read("s", 2) == b"cd"

    def test_dry_stream_yields_zeros(self):
        env = Environment({"s": b"a"})
        assert env.read("s", 4) == b"a\x00\x00\x00"
        assert env.read("s", 2) == b"\x00\x00"

    def test_unknown_stream_is_empty(self):
        env = Environment({})
        assert env.read("nope", 3) == b"\x00\x00\x00"

    def test_bytes_consumed(self):
        env = Environment({"s": b"abcdef"})
        env.read("s", 4)
        assert env.bytes_consumed("s") == 4

    def test_clone_resets_cursors(self):
        env = Environment({"s": b"ab"})
        env.read("s", 2)
        clone = env.clone()
        assert clone.read("s", 1) == b"a"

    def test_clone_preserves_quantum(self):
        env = Environment({}, quantum=7)
        assert env.clone().quantum == 7


class TestClock:
    def test_clock_monotonic(self):
        env = Environment({}, clock_start=100, clock_step=5)
        first = int.from_bytes(env.read(CLOCK_STREAM, 8), "little")
        second = int.from_bytes(env.read(CLOCK_STREAM, 8), "little")
        assert second == first + 5

    def test_clock_truncates_to_size(self):
        env = Environment({}, clock_start=0x1FF, clock_step=1)
        assert env.read(CLOCK_STREAM, 1) == b"\xff"


class TestEvents:
    def test_events_recorded_in_order(self):
        env = Environment({"a": b"xy", "b": b"z"})
        env.read("a", 1)
        env.read("b", 1)
        env.read("a", 1)
        assert [e.stream for e in env.events] == ["a", "b", "a"]

    def test_event_count(self):
        env = Environment({"a": b"xyz"})
        for _ in range(3):
            env.read("a", 1)
        assert env.event_count() == 3

    def test_syscall_estimate_buffers_stream_io(self):
        env = Environment({"a": bytes(IO_CHUNK * 2)})
        for _ in range(IO_CHUNK * 2):
            env.read("a", 1)
        # 2 chunks of buffered reads + spawn/exit
        assert env.syscall_estimate() == 2 + 2

    def test_syscall_estimate_counts_clock_individually(self):
        env = Environment({})
        for _ in range(5):
            env.read(CLOCK_STREAM, 8)
        assert env.syscall_estimate() == 5 + 2
