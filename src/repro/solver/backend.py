"""Pluggable search backends behind the budgeted solver.

The solver's single search strategy (:class:`~repro.solver.solver._Search`:
propagation + candidate-guided DFS in first-appearance variable order)
is right *on average* but pathological on individual queries — a
constraint whose satisfying value sits late in the reference candidate
order burns the whole budget walking there.  A portfolio of cheap
strategy *variants* hedges that variance: each backend runs the same
complete search with a different exploration order, so whichever order
happens to fit the query resolves it first.

``SolverBackend`` is the protocol: ``search(constraints, budget,
hints=None, retained=None)`` returns ``(model, snapshot)`` or raises
:class:`~repro.errors.UnsatError` / :class:`~repro.errors.SolverTimeout`
/ :class:`~repro.errors.SearchCancelled`.  ``snapshot`` is the
post-propagation ``(env, satisfied, learned, skipped)`` harvest feeding
the assumption stack (see :mod:`repro.solver.incremental`); ``retained``
seeds the search from it.  Definitive failures carry the same harvest on
the exception (``exc.snapshot``): an unsat proof's learned conflicts are
exactly the expensive facts worth retaining for the sibling query.
Every backend is *complete*: given enough budget it finds a
model or proves unsat, so variants can only differ from the reference
in which they reach first — never in the verdict.

Backends are stateless and cheap; a :class:`~repro.solver.solver.Solver`
instantiates its set once (see :func:`make_backends`) and the
portfolio racer (:mod:`repro.solver.portfolio`) runs them against each
other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SolverTimeout, UnsatError
from .budget import Budget
from .model import Model
from .solver import _Search
from .terms import Term

__all__ = ["SolverBackend", "ReferenceBackend", "ReverseCandidateBackend",
           "ReverseVariableBackend", "StagedBackend", "make_backends",
           "BACKEND_ORDER"]

#: the (env, satisfied-constraints, learned-conflicts, skipped-count)
#: harvest of one search — propagation facts plus DFS conflict clauses
Snapshot = Tuple[Dict[str, int], frozenset, Dict[str, Dict[int, int]], int]


class SolverBackend:
    """Protocol: one complete search strategy over one query."""

    name: str = "abstract"

    def search(self, constraints: Sequence[Term], budget: Budget,
               hints: Optional[Dict[str, int]] = None,
               retained: Optional[Snapshot] = None
               ) -> Tuple[Model, Optional[Snapshot]]:
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceBackend(SolverBackend):
    """Today's `_Search`, verbatim — the strategy whose answers commit."""

    name = "reference"
    search_cls = _Search

    def search(self, constraints, budget, hints=None, retained=None):
        search = self.search_cls(list(constraints), budget, hints=hints,
                                 retained=retained)
        try:
            model = search.run()
        except (UnsatError, SolverTimeout) as exc:
            # a definitive refutation (and even a timed-out search's
            # completed subtrees) still proved retainable facts
            exc.snapshot = search.harvest()
            raise
        return model, search.harvest()


class _ReverseCandidateSearch(_Search):
    """Anti-correlated candidate order: exhaustive tail (descending)
    first, derived/hint candidates last.  Complete — same candidate
    *set*, opposite order — so it wins exactly the queries whose value
    the reference order reaches last."""

    def _candidates(self, name, buckets, depth):
        yield from reversed(list(super()._candidates(name, buckets, depth)))

    def _word_candidates(self, node, names, buckets, depth):
        yield from reversed(
            list(super()._word_candidates(node, names, buckets, depth)))


class _ReverseVariableSearch(_Search):
    """Decide variables in reverse first-appearance order.  Word groups
    stay contiguous (reversal is chunk-wise), so late-appearing
    variables — typically the ones closest to the failure — are pinned
    first and prune early."""

    def _variable_order(self, active, groups=None):
        base = super()._variable_order(active, groups)
        groups = groups or {}
        chunks: List[List[str]] = []
        i = 0
        while i < len(base):
            group = groups.get(base[i])
            names = group[0] if group else None
            if names and list(names) == base[i:i + len(names)]:
                chunks.append(base[i:i + len(names)])
                i += len(names)
            else:
                chunks.append([base[i]])
                i += 1
        return [name for chunk in reversed(chunks) for name in chunk]


class ReverseCandidateBackend(ReferenceBackend):
    name = "reverse-candidates"
    search_cls = _ReverseCandidateSearch


class ReverseVariableBackend(ReferenceBackend):
    name = "reverse-variables"
    search_cls = _ReverseVariableSearch


class _StageExhausted(SolverTimeout):
    """A restart stage hit its slice cap (internal to StagedBackend)."""


class _SlicedBudget(Budget):
    """A stage-local cap that still charges (and obeys) the race budget.

    Every unit flows through the parent first, so cancellation and the
    racer's own window fire mid-stage; the slice cap then raises the
    *distinct* :class:`_StageExhausted`, which only the restart ladder
    catches.
    """

    def __init__(self, parent: Budget, cap: int, context: str = ""):
        super().__init__(cap, context)
        self._parent = parent

    def charge(self, amount: int) -> None:
        self._parent.charge(amount)
        self.spent += amount
        if self.spent > self.limit:
            raise _StageExhausted(self.spent, self.limit, self.context)


class StagedBackend(SolverBackend):
    """Budget-schedule variant: a restart ladder over the other orders.

    Short slices of the variant orders catch easy-for-them queries
    almost free; the remaining window then runs the reference order to
    completion.  Unsat from any stage is a complete proof (the stage
    exhausted its search space, not its slice) and commits immediately.
    """

    name = "staged"

    def search(self, constraints, budget, hints=None, retained=None):
        window = budget.remaining()
        ladder = [(_ReverseCandidateSearch, max(1, window // 16)),
                  (_ReverseVariableSearch, max(1, window // 8)),
                  (_Search, None)]
        for search_cls, cap in ladder:
            sub = budget if cap is None else _SlicedBudget(
                budget, cap, budget.context)
            try:
                search = search_cls(list(constraints), sub, hints=hints,
                                    retained=retained)
                return search.run(), search.harvest()
            except _StageExhausted:
                continue  # slice spent: restart with the next strategy
            except (UnsatError, SolverTimeout) as exc:
                exc.snapshot = search.harvest()
                raise
        raise SolverTimeout(budget.spent, budget.limit, budget.context)


#: portfolio composition, reference first — ``--portfolio N`` races the
#: first N (capped: strategies beyond these would duplicate an order)
BACKEND_ORDER = (ReferenceBackend, ReverseCandidateBackend,
                 ReverseVariableBackend, StagedBackend)


def make_backends(n: int) -> List[SolverBackend]:
    """The first ``n`` strategies, reference always included and first."""
    if n < 1:
        raise ValueError(f"portfolio width must be >= 1, got {n}")
    return [cls() for cls in BACKEND_ORDER[:min(n, len(BACKEND_ORDER))]]
