"""Term serialize → deserialize → re-intern round trip.

Disk-cache keys are digests of the canonical serialization, so these
properties are load-bearing: the round trip must preserve structural
equality and hashing *across term scopes*, structurally equal terms
must serialize identically regardless of how their DAGs are shared,
and deep terms must not blow the recursion limit.
"""

import json
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver import terms as T
from repro.solver.terms import deserialize_term, serialize_term, term_digest


@pytest.fixture(autouse=True)
def fresh_terms():
    with T.term_scope():
        yield


def sample_terms():
    a, b = T.var("a"), T.var("b")
    arr = T.array("tbl", bytes(range(16)))
    return [
        T.const(0),
        T.const(255, 8),
        a,
        T.cmp("eq", a, T.const(5), 8),
        T.binop("add", a, T.binop("xor", b, T.const(3), 8), 8),
        T.read(T.store(arr, a, b), T.binop("add", a, T.const(1))),
        T.trunc(T.concat([a, b]), 8),
        T.sext(a, 8),
    ]


class TestRoundTrip:
    def test_samples_round_trip(self):
        for term in sample_terms():
            text = serialize_term(term)
            back = deserialize_term(text)
            assert back == term
            assert hash(back) == hash(term)
            assert back is term  # re-interned into the live space

    def test_round_trip_across_scopes(self):
        # serialize in one scope, deserialize in a brand-new one: the
        # rebuilt term must be structurally equal and hash-stable even
        # though the intern tables share nothing
        originals = sample_terms()
        texts = [serialize_term(t) for t in originals]
        digests = [term_digest(t) for t in originals]
        with T.term_scope():
            rebuilt = [deserialize_term(text) for text in texts]
            for term, original in zip(rebuilt, originals):
                assert term == original
                assert hash(term) == hash(original)
            assert [term_digest(t) for t in rebuilt] == digests

    def test_canonical_across_sharing(self):
        # same structure, different DAG sharing: one term reuses a
        # single subterm node, the other builds two separate-but-equal
        # subterms — the canonical form must not see the difference
        a = T.var("a")
        shared = T.binop("add", a, T.const(1), 8)
        t1 = T.binop("xor", shared, shared, 8)
        with T.term_scope():
            left = T.binop("add", T.var("a"), T.const(1), 8)
            right = T.binop("add", T.var("a"), T.const(1), 8)
            t2 = T.binop("xor", left, right, 8)
            assert serialize_term(t2) == serialize_term(t1)
            assert term_digest(t2) == term_digest(t1)

    def test_distinct_terms_distinct_serializations(self):
        texts = {serialize_term(t) for t in sample_terms()}
        assert len(texts) == len(sample_terms())

    def test_width_distinguishes(self):
        assert serialize_term(T.const(1, 8)) != serialize_term(T.const(1, 16))
        assert term_digest(T.var("a", 8)) != term_digest(T.var("a", 16))

    def test_deep_term_no_recursion(self):
        node = T.var("x")
        for i in range(2 * sys.getrecursionlimit()):
            node = T.binop("add", node, T.const(i & 0xFF), 8)
        back = deserialize_term(serialize_term(node))
        assert back == node

    def test_array_bytes_round_trip(self):
        arr = T.array("tbl", bytes([7, 8, 9]))
        back = deserialize_term(serialize_term(arr))
        assert back == arr
        assert back.args[1] == bytes([7, 8, 9])

    def test_prov_excluded(self):
        a = T.cmp("eq", T.var("a"), T.const(5), 8)
        before = serialize_term(a)
        a.prov = ("pp", "reg", 1)
        assert serialize_term(a) == before


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            deserialize_term("[]")

    def test_garbage_rejected(self):
        with pytest.raises((SolverError, json.JSONDecodeError, ValueError)):
            deserialize_term("not json")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["add", "sub", "xor", "and"]),
                          st.integers(0, 255)),
                min_size=0, max_size=12),
       st.sampled_from(["a", "b", "c"]))
def test_random_chains_round_trip(ops, name):
    with T.term_scope():
        node = T.var(name)
        for op, value in ops:
            node = T.binop(op, node, T.const(value), 8)
        text = serialize_term(node)
        digest = term_digest(node)
        assert deserialize_term(text) == node
    with T.term_scope():
        rebuilt = deserialize_term(text)
        assert term_digest(rebuilt) == digest
