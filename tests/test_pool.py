"""The persistent generation-tagged worker pool (repro.parallel)."""

import os

import pytest

from repro import telemetry
from repro.parallel import (WorkerPool, close_pool, get_pool,
                            in_pool_worker, private_pool)


def _double(x):
    return x * 2


def _pid(_):
    return os.getpid()


def _boom(_):
    raise ValueError("intentional task failure")


def _report_in_pool(_):
    return in_pool_worker()


def _run_all(job, n):
    """Collect ``n`` results keyed by task id (skipping steal splits)."""
    out = {}
    while len(out) < n:
        kind, task_id, body = job.next_message()
        if kind == "split":
            continue
        out[task_id] = (kind, body)
    return out


class TestWorkerPool:
    def test_lazy_spawn(self):
        pool = WorkerPool(2)
        try:
            assert not pool.alive
            assert pool.pids() == []
            assert pool.spinups == 0
        finally:
            pool.close()

    def test_round_trip_and_generation_reuse(self):
        pool = WorkerPool(2)
        try:
            job = pool.begin_job({})
            for i in range(4):
                job.submit(_double, i)
            results = _run_all(job, 4)
            job.finish()
            assert {k: v for k, (_, v) in results.items()} == \
                {0: 0, 1: 2, 2: 4, 3: 6}
            pids_before = sorted(pool.pids())
            assert pool.spinups == 1

            # second job: same processes, new generation, no respawn
            job = pool.begin_job({})
            job.submit(_double, 21)
            results = _run_all(job, 1)
            job.finish()
            assert results[0] == ("done", 42)
            assert sorted(pool.pids()) == pids_before
            assert pool.spinups == 1
            assert pool.jobs == 2
        finally:
            pool.close()

    def test_tasks_fan_out_across_workers(self):
        pool = WorkerPool(2)
        try:
            job = pool.begin_job({})
            for i in range(8):
                job.submit(_pid, i)
            results = _run_all(job, 8)
            job.finish()
            seen_pids = {v for _, v in results.values()}
            assert seen_pids <= set(pool.pids())
        finally:
            pool.close()

    def test_error_surfaces_without_killing_the_pool(self):
        pool = WorkerPool(1)
        try:
            job = pool.begin_job({})
            job.submit(_boom, None)
            results = _run_all(job, 1)
            job.finish()
            kind, body = results[0]
            assert kind == "err"
            assert "intentional task failure" in body
            assert pool.alive  # the worker caught it and kept running

            job = pool.begin_job({})
            job.submit(_double, 3)
            assert _run_all(job, 1)[0] == ("done", 6)
            job.finish()
        finally:
            pool.close()

    def test_single_active_job_enforced(self):
        pool = WorkerPool(1)
        try:
            job = pool.begin_job({})
            with pytest.raises(RuntimeError, match="active job"):
                pool.begin_job({})
            job.finish()
            pool.begin_job({}).finish()  # released after finish
        finally:
            pool.close()

    def test_idle_reap_and_respawn(self):
        pool = WorkerPool(1, idle_reap_seconds=60.0)
        try:
            job = pool.begin_job({})
            job.submit(_double, 1)
            _run_all(job, 1)
            job.finish()
            assert pool.alive
            assert not pool.maybe_reap()  # too recent
            assert pool.maybe_reap(now=pool._last_used + 61.0)
            assert not pool.alive
            assert not pool.closed

            # the next job pays a fresh spin-up, transparently
            job = pool.begin_job({})
            job.submit(_double, 5)
            assert _run_all(job, 1)[0] == ("done", 10)
            job.finish()
            assert pool.spinups == 2
        finally:
            pool.close()

    def test_reap_disabled_when_threshold_none(self):
        pool = WorkerPool(1, idle_reap_seconds=None)
        try:
            job = pool.begin_job({})
            job.submit(_double, 1)
            _run_all(job, 1)
            job.finish()
            assert not pool.maybe_reap(now=pool._last_used + 1e9)
            assert pool.alive
        finally:
            pool.close()

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(1)
        job = pool.begin_job({})
        job.submit(_double, 1)
        _run_all(job, 1)
        job.finish()
        pool.close()
        assert not pool.alive
        pool.close()  # no-op
        with pytest.raises(RuntimeError, match="closed"):
            pool.begin_job({})

    def test_grow_spawns_extra_workers(self):
        pool = WorkerPool(1)
        try:
            job = pool.begin_job({})
            job.submit(_double, 1)
            _run_all(job, 1)
            job.finish()
            assert len(pool.pids()) == 1
            pool.grow(2)
            assert len(pool.pids()) == 2
            pool.grow(1)  # never shrinks
            assert len(pool.pids()) == 2
        finally:
            pool.close()

    def test_spinup_telemetry(self):
        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            pool = WorkerPool(1)
            try:
                pool.begin_job({}).finish()
                pool.begin_job({}).finish()
            finally:
                pool.close()
        snap = registry.snapshot()
        assert snap["counters"]["parallel.pool.spinups"] == 1
        assert snap["counters"]["parallel.pool.generations"] == 2
        assert snap["counters"]["parallel.pool.reuses"] == 1
        assert snap["histograms"]["span.parallel.pool_spinup"]["count"] == 1


class TestPoolHelpers:
    def test_in_pool_worker_false_in_parent(self):
        assert not in_pool_worker()

    def test_in_pool_worker_true_inside_worker(self):
        with private_pool(1) as pool:
            job = pool.begin_job({})
            job.submit(_report_in_pool, None)
            assert _run_all(job, 1)[0] == ("done", True)
            job.finish()

    def test_private_pool_closes_on_exit(self):
        with private_pool(1) as pool:
            job = pool.begin_job({})
            job.submit(_double, 2)
            assert _run_all(job, 1)[0] == ("done", 4)
            job.finish()
        assert pool.closed

    def test_get_pool_shares_and_grows(self):
        close_pool()
        try:
            first = get_pool(1)
            again = get_pool(2)
            assert again is first
            assert first.workers == 2
        finally:
            close_pool()
