"""Benchmark support: every benchmark renders its table/figure to
``benchmarks/out/`` so the regenerated evaluation artifacts survive the
run even when pytest captures stdout."""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    def save(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
    return save
