"""Gap-tolerant shepherding: recovering lost TNT bits (§4).

The paper's x86→LLVM mapping drops ~8.5 % of control-flow events; KLEE
then "deals with partially-recovered traces at the expense of slight
path explosion".  This module is that bounded exploration: branches with
concrete conditions recover their outcome for free during replay; the
remaining symbolic-condition gaps form a small decision vector the
driver searches depth-first, pruning with the divergence position —
choosing a wrong bit typically contradicts a *later recorded* bit
quickly.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from .. import telemetry
from ..errors import SearchCancelled
from ..interp.failures import FailureInfo
from ..ir.module import Module
from ..solver import terms as T
from ..solver.cache import SolverCache
from ..solver.incremental import AssumptionStack
from ..trace.decoder import DecodedTrace
from .engine import ShepherdedSymex
from .result import SymexResult

logger = logging.getLogger(__name__)

#: bound on replays (exponential worst case; divergence-guided in practice)
MAX_GAP_ATTEMPTS = 512

#: re-export: :class:`SearchCancelled` historically lived here; the
#: portfolio racer shares it now, so the class moved to ``repro.errors``
__all__ = ["SearchCancelled", "replay_with_gap_recovery",
           "MAX_GAP_ATTEMPTS"]


def replay_with_gap_recovery(module: Module, trace: DecodedTrace,
                             failure: Optional[FailureInfo],
                             max_attempts: int = MAX_GAP_ATTEMPTS,
                             shards: int = 1,
                             cache_dir: Optional[str] = None,
                             steal: bool = True,
                             incremental: bool = True,
                             preshard=None,
                             **engine_kwargs) -> SymexResult:
    """Shepherd a trace containing :class:`GapEvent`s.

    DFS over the symbolic-gap outcomes: default each gap to 'taken'; on
    divergence, backtrack within the bits actually consumed (later gaps
    were never reached, so their defaults are untouched).  Returns the
    first non-diverged result, or the last divergence after the search
    is exhausted.

    ``shards > 1`` fans the search out over worker processes (see
    :func:`repro.parallel.shard_gap_search`): the decision tree is split
    into prefix subspaces explored concurrently, and the first solution
    in serial DFS order wins, so the result matches the serial search.
    ``steal`` selects the work-stealing scheduler (idle workers split a
    busy sibling's subspace; the default) over the static 2^k prefix
    fan-out.  ``cache_dir`` points every worker (and the serial search)
    at a shared persistent solver cache.  ``incremental`` (default on)
    gives the session an :class:`AssumptionStack`, so sibling attempts'
    queries along a shared constraint prefix re-solve only the delta;
    switching it off re-solves every sibling from scratch (the A/B the
    benchmark harness measures).  ``preshard`` is the pipelined loop's
    predicted prefix partition, forwarded to the sharded search purely
    for hit/miss accounting.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    # every attempt replays the same module and trace, so all attempts
    # share one term space and one solver cache: the common prefix's
    # queries hit the cache instead of being re-solved per replay
    cache = engine_kwargs.pop("solver_cache", None)
    if cache is None:
        cache = SolverCache(persistent=_open_disk_cache(cache_dir))
    elif cache.persistent is None and cache_dir is not None:
        cache.persistent = _open_disk_cache(cache_dir)
    if shards > 1:
        from ..parallel import shard_gap_search  # lazy: avoid import cycle
        return shard_gap_search(module, trace, failure,
                                shards=shards, max_attempts=max_attempts,
                                solver_cache=cache, cache_dir=cache_dir,
                                steal=steal, incremental=incremental,
                                preshard=preshard,
                                **engine_kwargs)
    if incremental and cache.assumptions is None:
        cache.assumptions = AssumptionStack()
    with T.term_scope(reuse_active=True):
        return _search_gap_decisions(module, trace, failure, max_attempts,
                                     cache, engine_kwargs)


def _open_disk_cache(cache_dir):
    if cache_dir is None:
        return None
    from ..solver.diskcache import DiskSolverCache
    return DiskSolverCache(cache_dir)


def _search_gap_decisions(module, trace, failure, max_attempts,
                          cache, engine_kwargs,
                          initial_decisions: Optional[List[bool]] = None,
                          locked_prefix: int = 0,
                          control=None):
    """Serial DFS over gap decisions, optionally confined to a subspace.

    ``initial_decisions`` seeds the first replay's decision vector and
    ``locked_prefix`` freezes its first N bits: backtracking never flips
    a locked bit, so the search covers exactly the subspace under that
    prefix — this is the per-shard body of the parallel search.  A
    divergence *inside* the locked prefix exhausts the subspace
    immediately (no sibling under this prefix can replay further).

    ``control`` is the work-stealing hook: its
    ``checkpoint(decisions, locked_prefix, attempts)`` runs before every
    replay and returns the (possibly extended) locked prefix length —
    extending it donates the untouched sibling half of the subspace to a
    thief.  It may raise :class:`SearchCancelled` to stop the shard once
    the parent has committed a winner in an earlier subspace.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    decisions: List[bool] = list(initial_decisions or [])
    last: Optional[SymexResult] = None
    attempts = 0
    while attempts < max_attempts:
        if control is not None:
            locked_prefix = control.checkpoint(decisions, locked_prefix,
                                               attempts)
        if cache.assumptions is not None:
            # attempt boundary (where steal checkpoints change the
            # prefix one decision at a time): the stack keeps the
            # surviving common-prefix frames; the first query of this
            # replay pops exactly the abandoned sibling's frames
            cache.assumptions.mark_attempt()
        engine = ShepherdedSymex(module, trace, failure,
                                 gap_decisions=decisions,
                                 solver_cache=cache, **engine_kwargs)
        result = engine.run()
        attempts += 1
        result.gap_attempts = attempts
        if result.status != "diverged":
            telemetry.count("symex.gap_recoveries")
            telemetry.get().histogram(
                "symex.gap_attempts").record(attempts)
            if attempts > 1:
                logger.debug("gap recovery converged after %d replays",
                             attempts)
            return result
        telemetry.count("symex.gap_replays")
        last = result
        # the bits consumed up to the divergence are the DFS prefix
        prefix = list(result.gap_bits)
        while len(prefix) > locked_prefix and prefix[-1] is False:
            prefix.pop()          # False branch exhausted: backtrack
        if len(prefix) <= locked_prefix:
            break                 # subspace (or whole space) explored
        prefix[-1] = False        # try the other outcome
        decisions = prefix
    if last is None:
        raise ValueError("trace has no chunks")
    last.divergence_reason += f" (after {attempts} gap assignments)"
    return last
