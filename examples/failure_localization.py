#!/usr/bin/env python3
"""Invariant-based failure localization on ER output (§5.4 case study).

MIMIC-style workflow: learn likely invariants (Daikon templates) from
passing test runs of the ``od`` mini-coreutil, reconstruct a production
failure with ER, and feed the *generated* execution to the localizer.
The candidates must match what the original failing input yields — ER's
output is executable, so dynamic tools run on top of it unchanged.

Run:  python examples/failure_localization.py
"""

from repro.core import ExecutionReconstructor, ProductionSite
from repro.invariants import MimicLocalizer
from repro.workloads.coreutils import (build_od, od_failing_env,
                                       od_passing_envs)


def main():
    module = build_od()

    print("=== learn likely invariants from 4 passing runs ===")
    localizer = MimicLocalizer(module)
    invariants = localizer.learn(od_passing_envs())
    for invariant in invariants:
        print(f"  {invariant.describe()}")

    print("\n=== localize with the original failing test ===")
    direct = localizer.localize(od_failing_env())
    print(f"failure    : {direct.failure}")
    print(f"violations : {direct.violated_invariants()}")
    print(f"candidates : {direct.candidate_functions()}")

    print("\n=== localize with the ER-reconstructed execution ===")
    er = ExecutionReconstructor(module, work_limit=400_000)
    report = er.reconstruct(
        ProductionSite(lambda occ: od_failing_env(seed=occ)))
    print(f"reconstructed in {report.occurrences} occurrence(s); "
          f"generated argv = {report.test_case.streams.get('argv')!r}")
    via_er = localizer.localize(report.test_case.environment())
    print(f"violations : {via_er.violated_invariants()}")
    print(f"candidates : {via_er.candidate_functions()}")

    assert direct.candidate_functions() == via_er.candidate_functions()
    print("\nsame potential root causes — ER gives production failures "
          "to tools that need executable reproductions")


if __name__ == "__main__":
    main()
