"""ER's core: constraint graph, key-data-value selection, iteration."""

from .constraint_graph import ConstraintGraph, WriteChain
from .instrument import InstrumentationResult, instrument
from .minimize import ddmin, minimize_test_case
from .production import DeferredOccurrence, Occurrence, ProductionSite
from .reconstructor import ExecutionReconstructor
from .report import IterationRecord, ReconstructionReport, TestCase
from .selection import RecordingItem, RecordingPlan, select_key_values
from .signature import FaultSignature, canonical_signature, \
    normalize_failure

__all__ = [
    "ConstraintGraph",
    "WriteChain",
    "InstrumentationResult",
    "instrument",
    "ddmin",
    "minimize_test_case",
    "DeferredOccurrence",
    "Occurrence",
    "ProductionSite",
    "ExecutionReconstructor",
    "IterationRecord",
    "ReconstructionReport",
    "TestCase",
    "RecordingItem",
    "RecordingPlan",
    "select_key_values",
    "FaultSignature",
    "canonical_signature",
    "normalize_failure",
]
