"""Process-wide telemetry for the ER pipeline.

Counters, gauges, and histograms aggregate in a :class:`Telemetry`
registry; nestable timed spans and structured events stream to a
pluggable sink (:class:`NullSink` by default — near-zero overhead,
:class:`MemorySink` for tests, :class:`JsonlSink` for
``repro reproduce --telemetry out.jsonl``).

Library code addresses the *current* registry through the module-level
helpers so a CLI run or a test can swap in a fresh one::

    from repro import telemetry

    with telemetry.span("symex.run", iteration=i):
        ...
    telemetry.count("solver.timeouts")

    # a scoped registry for one run
    with telemetry.scoped(telemetry.Telemetry(JsonlSink(path))) as tel:
        ...
"""

from __future__ import annotations

from contextlib import contextmanager

from .context import TraceContext, new_trace_id
from .metrics import Counter, Gauge, Histogram
from .openmetrics import parse_openmetrics, render_openmetrics
from .registry import Span, Telemetry
from .sinks import (NULL_SINK, JsonlSink, MemorySink, NullSink, Sink,
                    TeeSink, read_jsonl)
from .stats import (final_snapshot, iteration_rows, merge_snapshots,
                    overhead_attribution, render_stats)
from .traceexport import build_trace, validate_trace, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Telemetry",
    "TraceContext",
    "new_trace_id",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "NULL_SINK",
    "read_jsonl",
    "iteration_rows",
    "final_snapshot",
    "merge_snapshots",
    "overhead_attribution",
    "render_stats",
    "build_trace",
    "write_trace",
    "validate_trace",
    "render_openmetrics",
    "parse_openmetrics",
    "get",
    "set_current",
    "scoped",
    "span",
    "event",
    "count",
    "counter",
    "gauge",
    "histogram",
    "current_context",
]

#: the process-wide default registry (null sink: metrics only)
_current = Telemetry()


def get() -> Telemetry:
    """The current process-wide registry."""
    return _current


def set_current(telemetry: Telemetry) -> Telemetry:
    """Replace the current registry; returns the previous one."""
    global _current
    previous = _current
    _current = telemetry
    return previous


@contextmanager
def scoped(telemetry: Telemetry):
    """Temporarily install ``telemetry`` as the current registry."""
    previous = set_current(telemetry)
    try:
        yield telemetry
    finally:
        set_current(previous)


# -- convenience passthroughs to the current registry -------------------

def span(name: str, **attrs) -> Span:
    return _current.span(name, **attrs)


def event(name: str, **fields) -> None:
    _current.event(name, **fields)


def count(name: str, amount: int = 1) -> None:
    _current.count(name, amount)


def counter(name: str) -> Counter:
    return _current.counter(name)


def gauge(name: str) -> Gauge:
    return _current.gauge(name)


def histogram(name: str) -> Histogram:
    return _current.histogram(name)


def current_context() -> TraceContext:
    """The current registry's handoff record for spawning a worker."""
    return _current.trace_context()
