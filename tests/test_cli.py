"""The ``python -m repro`` command-line interface."""

import json
import logging
import pathlib

import pytest

from repro.cli import main
from repro.ir import format_module

EIR = pathlib.Path(__file__).parent.parent / "examples" / "programs" \
    / "checksum.eir"


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "php-2012-2386" in out and "pbzip2-uaf" in out


class TestRun:
    def test_runs_eir_program(self, capsys):
        assert main(["run", str(EIR), "--stream",
                     "stdin=text:hello"]) == 0
        out = capsys.readouterr().out
        assert "exit value: 0" in out

    def test_hex_stream(self, capsys):
        assert main(["run", str(EIR), "--stream", "stdin=414200"]) == 0

    def test_file_stream(self, capsys, tmp_path):
        data = tmp_path / "input.bin"
        data.write_bytes(b"xy\x00")
        assert main(["run", str(EIR), "--stream",
                     f"stdin=@{data}"]) == 0

    def test_failure_returns_nonzero(self, capsys):
        # empty input: h stays 0 -> the program aborts
        assert main(["run", str(EIR)]) == 1
        assert "FAILURE" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nope/missing.eir"]) == 2

    def test_bad_stream_spec(self):
        with pytest.raises(SystemExit):
            main(["run", str(EIR), "--stream", "garbage"])


class TestTrace:
    def test_dumps_decoded_trace(self, capsys):
        assert main(["trace", str(EIR), "--stream",
                     "stdin=text:hi"]) == 0
        out = capsys.readouterr().out
        assert "decoded trace" in out and "chunk" in out
        assert "trace bytes" in out


class TestReproduce:
    def test_reproduces_workload(self, capsys):
        assert main(["reproduce", "bash-108885"]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out and "verified by replay: True" in out

    def test_unknown_workload(self, capsys):
        assert main(["reproduce", "no-such-bug"]) == 2

    def test_work_limit_override(self, capsys):
        assert main(["reproduce", "libpng-2004-0597",
                     "--work-limit", "400000"]) == 0

    def test_json_output(self, capsys):
        assert main(["reproduce", "nasm-2004-1287", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["success"] is True
        assert data["workload"] == "nasm-2004-1287"
        assert data["occurrences"] == len(data["iterations"])
        assert data["iterations"][-1]["status"] == "completed"
        assert data["totals"]["recorded_bytes"] >= 0
        assert data["test_case"]["streams"]
        assert "counters" in data["telemetry"]

    def test_verbose_logs_iterations(self, capsys, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["reproduce", "nasm-2004-1287", "-v"]) == 0
        assert any("waiting for the failure" in r.message
                   for r in caplog.records)


class TestTelemetryFlag:
    def test_reproduce_writes_jsonl_with_layer_spans(self, tmp_path,
                                                     capsys):
        out = tmp_path / "tel.jsonl"
        assert main(["reproduce", "sqlite-7be932d",
                     "--telemetry", str(out)]) == 0
        from repro.telemetry import read_jsonl

        events = read_jsonl(out)
        span_names = {e["name"] for e in events if e["type"] == "span"}
        for expected in ("production.attempt", "trace.decode",
                         "symex.run", "solver.query",
                         "selection.select_key_values"):
            assert expected in span_names, expected
        assert events[-1]["type"] == "snapshot"

    def test_stats_renders_breakdown_from_log(self, tmp_path, capsys):
        out = tmp_path / "tel.jsonl"
        main(["reproduce", "sqlite-7be932d", "--telemetry", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Per-iteration cost breakdown" in text
        assert "completed" in text
        assert "Span timings" in text

    def test_stats_json(self, tmp_path, capsys):
        out = tmp_path / "tel.jsonl"
        main(["reproduce", "nasm-2004-1287", "--telemetry", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["iterations"]
        assert data["snapshot"]["counters"]["reconstruct.successes"] == 1

    def test_stats_missing_file(self, capsys):
        assert main(["stats", "/nope/missing.jsonl"]) == 2

    def test_stats_empty_file_clean_exit(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no telemetry events" in err
        assert "Traceback" not in err

    def test_stats_span_free_log_clean_exit(self, tmp_path, capsys):
        log = tmp_path / "other.jsonl"
        log.write_text('{"kind": "unrelated", "x": 1}\n')
        assert main(["stats", str(log)]) == 2
        err = capsys.readouterr().err
        assert "telemetry" in err
        assert "Traceback" not in err

    def test_stats_non_json_file_clean_exit(self, tmp_path, capsys):
        log = tmp_path / "garbage.jsonl"
        log.write_text("not json at all\nstill not\n")
        assert main(["stats", str(log)]) == 2
        assert "Traceback" not in capsys.readouterr().err


class TestTraceOut:
    def test_reproduce_trace_out_validates(self, tmp_path, capsys):
        from repro.telemetry import validate_trace

        trace = tmp_path / "trace.json"
        assert main(["reproduce", "nasm-2004-1287",
                     "--trace-out", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert validate_trace(doc) == []
        names = {r["name"] for r in doc["traceEvents"]}
        assert "reconstruct.run" in names

    def test_trace_export_from_merged_log(self, tmp_path, capsys):
        from repro.telemetry import validate_trace

        log = tmp_path / "tel.jsonl"
        main(["reproduce", "nasm-2004-1287", "--telemetry", str(log)])
        capsys.readouterr()
        trace = tmp_path / "trace.json"
        assert main(["trace-export", str(log),
                     "-o", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert validate_trace(doc) == []

    def test_trace_export_missing_input(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace-export", "/nope/missing.jsonl",
                     "-o", str(out)]) == 2
        assert "Traceback" not in capsys.readouterr().err


class TestReport:
    def test_report_subset_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        assert main(["report", "--only", "Figure 1",
                     "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# ER evaluation report" in text
        assert "Figure 1" in text


class TestBench:
    FAST = ["objdump-2018-6323", "matrixssl-2014-1569"]

    def test_serial_bench_table(self, capsys):
        assert main(["bench", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "Batch reconstruction" in out
        assert "solver cache" in out
        for name in self.FAST:
            assert name in out

    def test_parallel_bench_writes_artifacts(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_parallel.json"
        merged = tmp_path / "merged.jsonl"
        assert main(["bench", *self.FAST, "--parallel", "2",
                     "-o", str(bench),
                     "--merged-telemetry", str(merged)]) == 0
        data = json.loads(bench.read_text())
        assert data["parallelism"] == 2
        assert data["speedup"] is not None
        assert data["serial_wall_seconds"] > 0
        assert data["parallel_wall_seconds"] > 0
        assert {"hits", "misses", "hit_rate"} <= set(data["solver_cache"])
        assert len(data["parallel"]["items"]) == len(self.FAST)
        # the merged log renders through `repro stats`
        assert main(["stats", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "solver cache" in out or "Counters" in out

    def test_bench_json_output(self, capsys):
        assert main(["bench", self.FAST[0], "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workloads"] == [self.FAST[0]]
        assert data["speedup"] is None        # no parallel leg requested

    def test_bench_pool_width_matrix(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_parallel.json"
        assert main(["bench", *self.FAST, "--parallel", "1,2",
                     "-o", str(bench)]) == 0
        data = json.loads(bench.read_text())
        legs = data["matrix"]
        assert [leg["parallelism"] for leg in legs] == [1, 2]
        assert legs[0]["speedup"] is None      # the baseline leg
        assert legs[1]["speedup"] is not None
        for leg in legs:
            assert leg["wall_seconds"] > 0
            load = leg["worker_load"]
            assert sum(e["tasks"] for e in load.values()) == len(self.FAST)
        # the top-level summary keeps the last width (back-compat shape)
        assert data["parallelism"] == 2
        assert data["speedup"] == legs[-1]["speedup"]
        out = capsys.readouterr().out
        assert "width 1" in out and "width 2" in out

    def test_bench_bad_pool_width_spec(self):
        for spec in ("garbage", "0", "2,x", ""):
            with pytest.raises(SystemExit):
                main(["bench", self.FAST[0], "--parallel", spec])

    def test_bench_cache_dir_warm_start(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        assert main(["bench", self.FAST[0], "--json",
                     "--cache-dir", str(cache)]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["bench", self.FAST[0], "--json",
                     "--cache-dir", str(cache)]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert (cache / "solver-cache.jsonl").exists()
        assert warm["solver_cache"]["hit_rate"] > \
            cold["solver_cache"]["hit_rate"]

    def test_bench_unknown_workload_fails(self, capsys):
        assert main(["bench", "no-such-workload"]) == 1
        assert "no-such-workload" in capsys.readouterr().out


class TestServe:
    def test_serve_table_output(self, capsys):
        assert main(["serve", "sqlite-7be932d", "--instances", "2"]) == 0
        captured = capsys.readouterr()
        assert "Fleet serve" in captured.out
        assert "sqlite-7be932d" in captured.out
        assert "new bucket" in captured.err  # per-bucket progress

    def test_serve_converges_to_single_site_reconstruction(self, capsys):
        assert main(["reproduce", "sqlite-7be932d", "--json"]) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(["serve", "sqlite-7be932d", "--instances", "3",
                     "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        bucket = fleet["buckets"][0]
        assert bucket["streams"] == single["test_case"]["streams"]
        assert bucket["iterations"] == len(single["iterations"])
        assert fleet["succeeded"] is True

    def test_serve_writes_summary_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        assert main(["serve", "sqlite-7be932d", "--instances", "2",
                     "--parallel", "2", "--pipeline",
                     "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["instances"] == 2
        assert data["pipeline"] is True
        assert data["buckets"][0]["signature"]["digest"]
        assert "telemetry" in data
        assert data["telemetry"]["counters"]["serve.reports"] >= 2

    def test_serve_telemetry_jsonl(self, capsys, tmp_path):
        log = tmp_path / "serve.jsonl"
        assert main(["serve", "sqlite-7be932d", "--instances", "2",
                     "--telemetry", str(log)]) == 0
        assert main(["stats", str(log)]) == 0
        out = capsys.readouterr().out
        assert "fleet serve" in out
        assert "signature bucket" in out

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "no-such-bug"]) == 2


class TestReproduceSharded:
    """`reproduce --shards/--cache-dir/--mapping-loss` end to end."""

    def test_mapping_loss_with_shards(self, capsys):
        assert main(["reproduce", "objdump-2018-6323",
                     "--mapping-loss", "0.085", "--shards", "2"]) == 0
        assert "succeeded" in capsys.readouterr().out

    def test_cache_dir_second_run_hits(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        args = ["reproduce", "objdump-2018-6323", "--json",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)

        def rate(report):
            counters = report["telemetry"]["counters"]
            hits = counters.get("solver.cache.hits", 0)
            misses = counters.get("solver.cache.misses", 0)
            return hits / max(1, hits + misses)

        assert (cache / "solver-cache.jsonl").exists()
        assert rate(warm) > rate(cold)
        assert warm["telemetry"]["counters"].get(
            "solver.cache.disk_hits", 0) >= 1


class TestCacheCommand:
    """`repro cache stats|compact|merge|verify` against real stores."""

    def _store(self, path, keys, feasible=False):
        from repro.solver import DiskSolverCache
        cache = DiskSolverCache(path)
        for key in keys:
            cache.store(key, feasible)
        return cache

    def test_stats_table(self, capsys, tmp_path):
        self._store(tmp_path / "c", [["d1"], ["d2"]])
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "Segments" in out and "2 entries" in out

    def test_compact_drops_merged_duplicates(self, capsys, tmp_path):
        keys = [[f"d{i}"] for i in range(10)]
        self._store(tmp_path / "a", keys)
        self._store(tmp_path / "b", keys)
        assert main(["cache", "merge", str(tmp_path / "a"),
                     str(tmp_path / "b"), "-o", str(tmp_path / "out"),
                     "--no-compact", "--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["entries_out"] == 20
        assert main(["cache", "compact", "--cache-dir",
                     str(tmp_path / "out"), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries_in"] == 20 and stats["entries_out"] == 10
        assert stats["bytes_out"] < stats["bytes_in"]

    def test_merged_store_serves_both_sources(self, capsys, tmp_path):
        from repro.solver import DiskSolverCache
        self._store(tmp_path / "a", [["d1"]])
        self._store(tmp_path / "b", [["d2"]])
        assert main(["cache", "merge", str(tmp_path / "a"),
                     str(tmp_path / "b"), "-o",
                     str(tmp_path / "out")]) == 0
        merged = DiskSolverCache(tmp_path / "out")
        assert merged.lookup(["d1"])[0] is False
        assert merged.lookup(["d2"])[0] is False

    def test_merge_into_nonempty_store_fails(self, capsys, tmp_path):
        self._store(tmp_path / "a", [["d1"]])
        self._store(tmp_path / "b", [["d2"]])
        self._store(tmp_path / "out", [["d3"]])
        assert main(["cache", "merge", str(tmp_path / "a"),
                     str(tmp_path / "b"), "-o",
                     str(tmp_path / "out")]) == 2
        assert "already holds" in capsys.readouterr().err

    def test_verify_ok(self, capsys, tmp_path):
        self._store(tmp_path / "c", [["d1"]])
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "c")]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupt_manifest_nonzero(self, capsys, tmp_path):
        self._store(tmp_path / "c", [["d1"]])
        (tmp_path / "c" / "solver-cache.manifest.json").write_text(
            "{broken")
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "c")]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out

    def test_verify_json_reports_problems(self, capsys, tmp_path):
        self._store(tmp_path / "c", [["d1"]])
        (tmp_path / "c" / "solver-cache.manifest.json").write_text(
            json.dumps({"version": 99}))
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "c"), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False and report["problems"]


class TestEirFixture:
    def test_sample_program_roundtrips(self):
        from repro.ir import parse_module, verify_module

        module = parse_module(EIR.read_text())
        verify_module(module)
        assert format_module(module) == EIR.read_text()
