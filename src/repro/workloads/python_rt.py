"""Mini file-object runtime: Python CVE-2018-1000030 (shared data
corruption).

The real bug: CPython 2.7's file ``readahead`` buffer is not thread
safe; two threads iterating one file object corrupt the shared buffer
position and crash.  The mini runtime keeps the same shape: a shared
file object (buffer + position + length) filled from input, and two
reader threads that each check ``pos < len`` and then — after a
checksum loop long enough to span a scheduler quantum — reload the
position, advance it, and index the buffer with the *stale* check.
Under the failing schedule both readers pass the check near the end of
the buffer, the position jumps past ``len``, and the indexing reads out
of bounds: shared-data corruption surfacing as a crash.

File content arrives on the ``file`` stream; reader work orders on
``job0``/``job1``.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

FILE_BUF = 64


def build_python_readahead() -> Module:
    b = ModuleBuilder("python-2018-1000030")
    b.global_("file_buf_ptr", 8)   # heap readahead buffer, sized to fit
    b.global_("file_pos", 8)
    b.global_("file_len", 8)
    b.global_("digest_tbl", 32 * 8)

    # checksum(n): busy work inside the race window + hash-table insert
    f = b.function("checksum", ["seed", "n"])
    f.block("entry")
    f.const(0, dest="%i")
    f.binop("add", "%seed", 0, dest="%acc")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n")
    f.br(done, "ins", "body")
    f.block("body")
    sh = f.shl("%acc", 1, width=32)
    f.add(sh, "%i", width=32, dest="%acc")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("ins")
    slot = f.urem("%acc", 32, dest="%slot")
    tbl = f.global_addr("digest_tbl")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%acc", 8)
    f.ret("%acc")

    # reader thread body: the racy readahead step
    for wid in (0, 1):
        stream = f"job{wid}"
        f = b.function(f"reader{wid}", [])
        f.block("entry")
        pp = f.global_addr("file_pos", dest="%pp")
        lp = f.global_addr("file_len", dest="%lp")
        fbp = f.global_addr("file_buf_ptr", dest="%fbp")
        fb = f.load("%fbp", 8, dest="%fb")
        f.jmp("next")
        f.block("next")
        work = f.input(stream, 1, dest="%work")
        stop = f.cmp("eq", "%work", 0, width=8)
        f.br(stop, "out", "check")
        f.block("check")
        pos = f.load("%pp", 8, dest="%pos")
        flen = f.load("%lp", 8, dest="%flen")
        avail = f.cmp("ult", "%pos", "%flen")
        f.br(avail, "consume", "next")
        f.block("consume")
        # readahead refill: a read(2)-like syscall per consumed chunk
        f.input("clock", 8)
        # the race window: checksum work spans a quantum
        f.call("checksum", ["%pos", "%work"])
        pos2 = f.load("%pp", 8, dest="%pos2")   # reload: may have moved
        newpos = f.add("%pos2", 1, dest="%newpos")
        f.store("%pp", "%newpos", 8)
        # BUG: indexes with the re-read position but the *old* check
        bp = f.gep("%fb", "%pos2", 1)
        byte = f.load(bp, 1, dest="%byte")
        f.output(f"out{wid}", "%byte", 1)
        f.jmp("next")
        f.block("out")
        f.ret(0)

    f = b.function("main", [])
    f.block("entry")
    # load the file: length byte + content
    n = f.input("file", 1, dest="%n")
    ok = f.cmp("ule", "%n", FILE_BUF, width=8)
    f.br(ok, "fill", "bad")
    f.block("fill")
    lp = f.global_addr("file_len", dest="%lp")
    f.store("%lp", "%n", 8)
    buf = f.malloc("%n", dest="%fb")       # readahead buffer: exactly n
    fbp = f.global_addr("file_buf_ptr", dest="%fbp")
    f.store("%fbp", "%fb", 8)
    f.const(0, dest="%i")
    f.jmp("floop")
    f.block("floop")
    done = f.cmp("uge", "%i", "%n", width=8)
    f.br(done, "run", "fbody")
    f.block("fbody")
    ch = f.input("file", 1)
    p = f.gep("%fb", "%i", 1)
    f.store(p, ch, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("floop")
    f.block("run")
    t0 = f.spawn("reader0", [], dest="%t0")
    t1 = f.spawn("reader1", [], dest="%t1")
    f.join("%t0")
    f.join("%t1")
    f.ret(0)
    f.block("bad")
    f.ret(1)
    return b.build()


def _file_payload(rng: random.Random, n: int) -> bytes:
    return bytes((n,)) + bytes(rng.randint(1, 255) for _ in range(n))


def _failing_python(occurrence: int) -> Environment:
    rng = random.Random(600 + occurrence)
    # a tiny file: both readers race for the last byte
    n = 2
    jobs0 = bytes((9, 9, 9, 0))
    jobs1 = bytes((9, 9, 9, 0))
    return Environment({"file": _file_payload(rng, n),
                        "job0": jobs0, "job1": jobs1}, quantum=25)


def _benign_python(seed: int) -> Environment:
    rng = random.Random(seed)
    n = rng.randint(32, FILE_BUF)
    # single reader active: no interleaving on the shared position
    jobs0 = bytes(rng.randint(60, 120) for _ in range(rng.randint(60, 90))) \
        + b"\x00"
    jobs1 = b"\x00"
    return Environment({"file": _file_payload(rng, n),
                        "job0": jobs0, "job1": jobs1}, quantum=250)


def python_workloads():
    return [Workload(
        name="python-2018-1000030", app="Python 2.7.14",
        bug_id="CVE-2018-1000030",
        bug_type="Shared data corruption", multithreaded=True,
        expected_kind=FailureKind.OUT_OF_BOUNDS,
        build=build_python_readahead,
        failing_env=_failing_python, benign_env=_benign_python,
        bench_name="From PyPy benchmarks",
        work_limit=10_000,
        paper_occurrences=2, paper_instrs=36_108_946)]
