"""§5.2 ablation: key data value selection vs random recording.

The random strategy records the *same number of bytes* per iteration as
ER's selection would, but picks uniformly among the constraint graph's
recordable nodes, and gets the same number of failure occurrences ER
needed.  The paper reports that random recording reproduces only one of
the failures that need data values (Nasm-2004-1287); the others keep
stalling because the random values do not simplify the bottleneck
constraints.  (Our mini applications have far smaller constraint graphs
than the paper's — tens of recordable values rather than tens of
thousands — so a lucky random pick is more likely; the comparison uses
several seeds and reports the per-seed success rate.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.random_selection import random_selection
from ..core import ExecutionReconstructor, ProductionSite
from ..errors import ReconstructionError
from ..workloads import all_workloads
from .formatting import render_table


@dataclass
class RandomCmpRow:
    name: str
    er_occurrences: int
    er_success: bool
    random_successes: int      # over the seeds tried
    seeds_tried: int
    needs_data: bool   # ER needed >1 occurrence (i.e. data recording)

    @property
    def random_success(self) -> bool:
        """Majority of seeds reproduced the failure."""
        return self.random_successes * 2 > self.seeds_tried


@dataclass
class RandomCmpResult:
    rows: List[RandomCmpRow]
    max_occurrences: int

    @property
    def needing_data(self) -> List[RandomCmpRow]:
        return [r for r in self.rows if r.needs_data]

    @property
    def er_wins(self) -> int:
        return sum(1 for r in self.needing_data
                   if r.er_success and not r.random_success)

    def render(self) -> str:
        headers = ["Failure", "needs data?", "ER #Occur",
                   "random (same #Occur budget)"]
        rows = [[r.name, "yes" if r.needs_data else "no",
                 f"{r.er_occurrences} ({'ok' if r.er_success else 'FAIL'})",
                 f"{r.random_successes}/{r.seeds_tried} seeds"]
                for r in self.rows]
        needing = self.needing_data
        reproduced = sum(1 for r in needing if r.random_success)
        footer = (f"\nrandom recording reproduced {reproduced}/"
                  f"{len(needing)} of the failures that need data values "
                  "within ER's occurrence budget (paper: 1/11)")
        return render_table(
            headers, rows,
            "Key-data-value selection vs random recording") + footer


def run_random_comparison(names: Optional[List[str]] = None,
                          seeds: int = 3) -> RandomCmpResult:
    rows = []
    for workload in all_workloads():
        if names is not None and workload.name not in names:
            continue
        er = ExecutionReconstructor(
            workload.fresh_module(), work_limit=workload.work_limit,
            max_occurrences=workload.max_occurrences)
        er_report = er.reconstruct(ProductionSite(workload.failing_env))

        successes = 0
        for seed in range(seeds):
            rand = ExecutionReconstructor(
                workload.fresh_module(), work_limit=workload.work_limit,
                max_occurrences=er_report.occurrences,
                selection=random_selection(1000 + seed))
            try:
                rand_report = rand.reconstruct(
                    ProductionSite(workload.failing_env))
                if rand_report.success and rand_report.verified:
                    successes += 1
            except ReconstructionError:
                pass
        rows.append(RandomCmpRow(
            name=workload.name,
            er_occurrences=er_report.occurrences,
            er_success=er_report.success and er_report.verified,
            random_successes=successes,
            seeds_tried=seeds,
            needs_data=er_report.occurrences > 1,
        ))
    return RandomCmpResult(rows, er_report.occurrences)
