"""Shepherded symbolic execution: replay, constraints, concretization."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer


def trace_of(module, env, **interp_kwargs):
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder, **interp_kwargs).run()
    return result, decode(encoder.buffer)


def symex_of(module, env, **kwargs):
    result, trace = trace_of(module, env)
    engine = ShepherdedSymex(module, trace, result.failure, **kwargs)
    return result, engine.run()


def replay(module, sym_result, quantum=50):
    env = Environment(sym_result.model.streams(), quantum=quantum)
    return Interpreter(module, env).run()


class TestBasicReplay:
    def test_abort_reproduced(self, abort_module):
        run, res = symex_of(abort_module, Environment({"stdin": b"\xc8"}))
        assert res.completed
        rerun = replay(abort_module, res)
        assert rerun.failure is not None
        assert rerun.failure.matches(run.failure)

    def test_generated_input_respects_constraints(self, abort_module):
        _, res = symex_of(abort_module, Environment({"stdin": b"\xc8"}))
        assert res.model.streams()["stdin"][0] >= 100

    def test_benign_trace_completes_without_failure(self, abort_module):
        run, trace = trace_of(abort_module, Environment({"stdin": b"\x01"}))
        assert run.failure is None
        res = ShepherdedSymex(abort_module, trace, None).run()
        assert res.completed

    def test_instruction_counts_match(self, abort_module):
        run, trace = trace_of(abort_module, Environment({"stdin": b"\x01"}))
        res = ShepherdedSymex(abort_module, trace, None).run()
        assert res.stats.instrs_executed == run.instr_count

    def test_exec_counts_track_points(self, abort_module):
        run, trace = trace_of(abort_module, Environment({"stdin": b"\x01"}))
        res = ShepherdedSymex(abort_module, trace, None).run()
        assert sum(res.exec_counts.values()) == run.instr_count

    def test_call_return_replay(self, call_module):
        run, res = symex_of(call_module, Environment({"stdin": b"\x15"}))
        assert res.completed


class TestSymbolicMemory:
    def test_symbolic_store_replayed(self, table_module):
        env = Environment({"stdin": bytes([5, 5])})
        run, res = symex_of(table_module, env)
        assert res.completed
        rerun = replay(table_module, res)
        assert rerun.failure is not None and rerun.failure.matches(run.failure)

    def test_alias_constraint_enforced(self, table_module):
        env = Environment({"stdin": bytes([5, 5])})
        _, res = symex_of(table_module, env)
        stdin = res.model.streams()["stdin"]
        assert stdin[0] == stdin[1]  # the abort requires x == y

    def test_non_alias_path(self, table_module):
        env = Environment({"stdin": bytes([5, 9])})  # benign path
        run, trace = trace_of(table_module, env)
        assert run.failure is None
        res = ShepherdedSymex(table_module, trace, None).run()
        assert res.completed
        stdin = res.model.streams()["stdin"]
        assert stdin[0] != stdin[1]


class TestFailureKinds:
    def _module_oob(self):
        b = ModuleBuilder("oob")
        b.global_("buf", 16)
        f = b.function("main", [])
        f.block("entry")
        n = f.input("stdin", 1, dest="%n")
        g = f.global_addr("buf")
        p = f.gep(g, "%n", 1)
        f.store(p, 1, 1)
        f.ret(0)
        return b.build()

    def test_oob_write_reproduced(self):
        module = self._module_oob()
        run, res = symex_of(module, Environment({"stdin": bytes([40])}))
        assert run.failure is not None and res.completed
        assert res.model.streams()["stdin"][0] >= 16
        rerun = replay(module, res)
        assert rerun.failure.matches(run.failure)

    def test_null_deref_reproduced(self):
        b = ModuleBuilder("null")
        b.global_("slot", 8)
        f = b.function("main", [])
        f.block("entry")
        x = f.input("stdin", 1, dest="%x")
        g = f.global_addr("slot", dest="%g")
        is_zero = f.cmp("eq", "%x", 0, width=8)
        ptr = f.select(is_zero, 0, "%g")
        v = f.load(ptr, 8)
        f.ret(v)
        module = b.build()
        run, res = symex_of(module, Environment({"stdin": b"\x00"}))
        assert res.completed
        assert res.model.streams()["stdin"][0] == 0

    def test_div_by_zero_reproduced(self):
        b = ModuleBuilder("div")
        f = b.function("main", [])
        f.block("entry")
        x = f.input("stdin", 1, dest="%x")
        q = f.udiv(100, "%x", width=8)
        f.output("stdout", q, 1)
        f.ret(0)
        module = b.build()
        run, res = symex_of(module, Environment({"stdin": b"\x00"}))
        assert res.completed
        assert res.model.streams()["stdin"][0] == 0

    def test_assert_failure_reproduced(self):
        b = ModuleBuilder("asrt")
        f = b.function("main", [])
        f.block("entry")
        x = f.input("stdin", 1, dest="%x")
        ok = f.cmp("ne", "%x", 7, width=8)
        f.assert_(ok, "x must not be 7")
        f.ret(0)
        module = b.build()
        run, res = symex_of(module, Environment({"stdin": b"\x07"}))
        assert res.completed
        assert res.model.streams()["stdin"][0] == 7

    def test_use_after_free_reproduced(self):
        b = ModuleBuilder("uaf")
        f = b.function("main", [])
        f.block("entry")
        p = f.malloc(8, dest="%p")
        x = f.input("stdin", 1, dest="%x")
        f.br(f.cmp("eq", "%x", 1, width=8), "bad", "good")
        f.block("bad")
        f.free("%p")
        f.jmp("use")
        f.block("good")
        f.jmp("use")
        f.block("use")
        v = f.load("%p", 1)
        f.ret(v)
        module = b.build()
        run, res = symex_of(module, Environment({"stdin": b"\x01"}))
        assert res.completed
        assert res.model.streams()["stdin"][0] == 1


class TestPtwriteConcretization:
    def _instrumented(self):
        b = ModuleBuilder("ptw")
        b.global_("V", 64)
        f = b.function("main", [])
        f.block("entry")
        a = f.input("stdin", 1, dest="%a")
        bb = f.input("stdin", 1, dest="%b")
        x = f.add("%a", "%b", width=8, dest="%x")
        f.ptwrite("%x", tag=0)
        g = f.global_addr("V")
        p = f.gep(g, "%x", 1)
        f.store(p, 1, 1)
        v = f.load(p, 1, dest="%v")
        f.assert_(f.cmp("eq", "%v", 1, width=8), "readback")
        f.ret(0)
        return b.build()

    def test_ptw_value_consumed_and_constrains(self):
        module = self._instrumented()
        env = Environment({"stdin": bytes([3, 4])})
        run, res = symex_of(module, env)
        assert res.completed
        streams = res.model.streams()
        assert (streams["stdin"][0] + streams["stdin"][1]) % 256 == 7

    def test_ptw_makes_downstream_concrete(self):
        module = self._instrumented()
        env = Environment({"stdin": bytes([3, 4])})
        run, trace = trace_of(module, env)
        engine = ShepherdedSymex(module, trace, run.failure)
        result = engine.run()
        # the store index was concretized: no object has a write chain
        assert not engine.memory.objects_with_chains()


class TestDivergence:
    def test_wrong_program_version_diverges(self, abort_module):
        run, trace = trace_of(abort_module, Environment({"stdin": b"\xc8"}))
        other = abort_module.clone()
        # flip the branch targets: trace no longer matches
        br = other.function("main").block("entry").instrs[-1]
        br.if_true, br.if_false = br.if_false, br.if_true
        res = ShepherdedSymex(other, trace, run.failure).run()
        assert res.status == "diverged"

    def test_truncated_events_diverge(self, abort_module):
        run, trace = trace_of(abort_module, Environment({"stdin": b"\xc8"}))
        trace.chunks[0].events.append(
            __import__("repro.trace.packets", fromlist=["TntEvent"])
            .TntEvent(True))
        res = ShepherdedSymex(abort_module, trace, run.failure).run()
        assert res.status == "diverged"


class TestConcurrencyReplay:
    def test_chunked_schedule_replayed(self, spawn_module):
        env = Environment({}, quantum=3)
        run, trace = trace_of(spawn_module, env)
        res = ShepherdedSymex(spawn_module, trace, None).run()
        assert res.completed
        assert res.stats.instrs_executed == run.instr_count

    def test_race_outcome_identical(self, spawn_module):
        # the racy counter value is reproduced exactly by chunk replay
        env = Environment({}, quantum=3)
        run, trace = trace_of(spawn_module, env)
        engine = ShepherdedSymex(spawn_module, trace, None)
        res = engine.run()
        counter_obj = next(o for o in engine.memory.objects()
                           if o.name == "counter")
        final = int.from_bytes(bytes(counter_obj.data), "little")
        assert final == int.from_bytes(run.outputs["stdout"], "little")
