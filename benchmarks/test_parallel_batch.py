"""Benchmark: parallel batch reconstruction vs the serial baseline.

Runs the heavier Table-1 workloads through ``repro.parallel.run_batch``
once serially and once over a process pool, and records the speedup and
solver-cache traffic to ``benchmarks/out/BENCH_parallel.json`` — the
same summary ``repro bench`` emits, and the artifact the CI smoke job
uploads.  The speedup assertion only arms on multi-core machines: on a
single CPU the pool can't beat the serial loop and the run is recorded
as informational.
"""

import json
import os

import pytest

from repro.parallel import measure_incremental_ab, run_batch

#: the longest-running Table-1 workloads — enough serial work that the
#: pool's fork/pickle overhead is amortized
WORKLOADS = [
    "php-2012-2386",
    "php-74194",
    "sqlite-7be932d",
    "sqlite-787fa71",
    "sqlite-4e8e485",
    "nasm-2004-1287",
]

POOL_WIDTH = 2


def test_parallel_speedup(artifact_dir):
    serial = run_batch(WORKLOADS, parallel=1)
    parallel = run_batch(WORKLOADS, parallel=POOL_WIDTH)

    assert serial.succeeded == len(WORKLOADS)
    assert parallel.succeeded == len(WORKLOADS)
    speedup = (serial.wall_seconds / parallel.wall_seconds
               if parallel.wall_seconds else 0.0)

    # assumption-stack A/B on the gap-recovery bench: sibling decisions
    # re-solve only their divergent suffix, so total solver work drops
    ab = measure_incremental_ab()
    assert ab["verdicts_equal"] and ab["models_equal"]
    assert ab["solver_work_reduction"] >= 0.20, (
        f"incremental solving saved only "
        f"{ab['solver_work_reduction']:.1%} solver work (need >=20%)")

    data = {
        "workloads": WORKLOADS,
        "parallelism": POOL_WIDTH,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 4),
        "parallel_wall_seconds": round(parallel.wall_seconds, 4),
        "speedup": round(speedup, 3),
        "solver_cache": parallel.solver_cache_stats,
        "incremental_ab": ab,
        "serial": serial.to_dict(),
        "parallel": parallel.to_dict(),
    }
    (artifact_dir / "BENCH_parallel.json").write_text(
        json.dumps(data, indent=2) + "\n")
    print(f"\nserial {serial.wall_seconds:.2f}s, "
          f"parallel({POOL_WIDTH}) {parallel.wall_seconds:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} cpu(s)")

    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5, (
            f"expected >=1.5x on a multi-core host, got {speedup:.2f}x")
    else:
        pytest.skip(f"single CPU: speedup {speedup:.2f}x recorded, "
                    "not asserted")
