"""Result types for shepherded symbolic execution."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.module import ProgramPoint
from ..solver.model import Model
from ..solver.terms import Term


#: cap on retained progress samples; above it the series is decimated
PROGRESS_SAMPLE_CAP = 4096


@dataclass
class SymexStats:
    """Bookkeeping for one shepherded run (feeds Fig. 5 / Table 1)."""

    instrs_executed: int = 0
    solver_calls: int = 0
    solver_work: int = 0
    wall_seconds: float = 0.0
    #: (instructions executed, cumulative solver work) samples, bounded
    #: by :data:`PROGRESS_SAMPLE_CAP` via stride-doubling decimation
    progress: List[Tuple[int, int]] = field(default_factory=list)
    _progress_stride: int = 1
    _progress_pending: int = 0

    def add_progress(self, instrs: int, work: int) -> None:
        """Append a (instrs, cumulative work) sample, decimating at the
        cap: every other sample is dropped and the keep-stride doubles,
        so memory stays O(cap) over arbitrarily long runs while the
        series keeps its shape (both axes are monotone)."""
        self._progress_pending += 1
        if self._progress_pending < self._progress_stride:
            return
        self._progress_pending = 0
        self.progress.append((instrs, work))
        if len(self.progress) >= PROGRESS_SAMPLE_CAP:
            del self.progress[::2]
            self._progress_stride *= 2

    def modelled_seconds(self) -> float:
        from ..solver.budget import WORK_PER_SECOND

        return self.solver_work / WORK_PER_SECOND

    def to_dict(self) -> dict:
        """Plain-data form (the CLI ``--json`` surface)."""
        return {
            "instrs_executed": self.instrs_executed,
            "solver_calls": self.solver_calls,
            "solver_work": self.solver_work,
            "wall_seconds": self.wall_seconds,
            "modelled_seconds": self.modelled_seconds(),
            "progress_samples": len(self.progress),
            "progress_stride": self._progress_stride,
        }


@dataclass
class StallInfo:
    """Everything key-data-value selection needs after a solver timeout."""

    #: path constraints accumulated up to the stall
    constraints: List[Term]
    #: the terms of the query that timed out (reads, bounds checks)
    stall_terms: List[Term]
    #: write-chain tops of every object with symbolic stores
    chains: List[Term]
    #: dynamic execution count per program point (recording cost input)
    exec_counts: Counter
    #: solver work spent by the stalling query
    work_spent: int = 0
    #: where symbolic execution stalled
    point: Optional[ProgramPoint] = None
    #: (repr(term), value) of the most recent concretization pick, when
    #: the stall may stem from it (retry protocol for Fig.-5 drivers)
    concretization_conflict: Optional[Tuple[str, int]] = None


@dataclass
class SymexResult:
    """Outcome of one shepherded symbolic execution."""

    status: str  # 'completed' | 'stalled' | 'diverged'
    constraints: List[Term] = field(default_factory=list)
    model: Optional[Model] = None
    stall: Optional[StallInfo] = None
    stats: SymexStats = field(default_factory=SymexStats)
    exec_counts: Counter = field(default_factory=Counter)
    divergence_reason: str = ""
    #: index of the trace chunk being replayed when divergence hit
    diverged_chunk: int = -1
    #: outcomes chosen for lost TNT bits at *symbolic* branches, in
    #: consumption order (concrete branches recover their bit for free)
    gap_bits: List[bool] = field(default_factory=list)
    #: replays a gap-recovery driver needed to find this result
    gap_attempts: int = 1

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def stalled(self) -> bool:
        return self.status == "stalled"
