"""Engine options: no_timeout, feasibility toggling, banned picks."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer


def traced_run(module, env):
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder).run()
    return result, decode(encoder.buffer)


def chain_module(stores=40, table=2048):
    """A long symbolic write chain + dependent check (stall generator)."""
    b = ModuleBuilder("chain")
    b.global_("T", table)
    f = b.function("main", [])
    f.block("entry")
    g = f.global_addr("T", dest="%T")
    f.const(0, dest="%k")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%k", stores)
    f.br(done, "chk", "body")
    f.block("body")
    idx = f.input("stdin", 1, dest="%idx")
    p = f.gep("%T", "%idx", 1)
    f.store(p, "%k", 1)
    f.add("%k", 1, dest="%k")
    f.jmp("loop")
    f.block("chk")
    probe = f.input("stdin", 1, dest="%probe")
    q = f.gep("%T", "%probe", 1)
    v = f.load(q, 1, dest="%v")
    bad = f.cmp("eq", "%v", stores - 1, width=8)
    f.br(bad, "boom", "ok")
    f.block("boom")
    f.abort("hit the last write")
    f.block("ok")
    f.ret(0)
    return b.build()


def chain_env(stores=40):
    data = bytes(range(10, 10 + stores)) + bytes([10 + stores - 1])
    return Environment({"stdin": data})


class TestStallBehaviour:
    def test_small_budget_stalls(self):
        module = chain_module()
        run, trace = traced_run(module, chain_env())
        result = ShepherdedSymex(module, trace, run.failure,
                                 work_limit=300).run()
        assert result.stalled
        assert result.stall.chains  # the write chain is in the graph

    def test_no_timeout_completes(self):
        module = chain_module()
        run, trace = traced_run(module, chain_env())
        result = ShepherdedSymex(module, trace, run.failure,
                                 no_timeout=True).run()
        assert result.completed
        assert result.stats.solver_work > 300  # more than the stall budget

    def test_continue_on_stall_reaches_trace_end(self):
        module = chain_module()
        run, trace = traced_run(module, chain_env())
        capped = ShepherdedSymex(module, trace, run.failure,
                                 work_limit=300, continue_on_stall=True)
        result = capped.run()
        # per-access checks get skipped; replay itself continues
        assert result.stats.instrs_executed >= trace.instr_count or \
            result.stalled

    def test_stall_point_identifies_access(self):
        module = chain_module()
        run, trace = traced_run(module, chain_env())
        result = ShepherdedSymex(module, trace, run.failure,
                                 work_limit=300).run()
        assert result.stall.point is not None

    def test_work_accounted_in_stats(self):
        module = chain_module(stores=4)
        run, trace = traced_run(module, chain_env(stores=4))
        result = ShepherdedSymex(module, trace, run.failure,
                                 no_timeout=True).run()
        assert result.stats.solver_calls >= 1
        assert result.stats.progress  # (instrs, work) samples recorded
        xs = [x for x, _ in result.stats.progress]
        assert xs == sorted(xs)


class TestBannedConcretizations:
    def _malloc_module(self):
        b = ModuleBuilder("alloc")
        f = b.function("main", [])
        f.block("entry")
        n = f.input("stdin", 1, dest="%n")
        ok = f.cmp("uge", "%n", 4, width=8)
        f.br(ok, "sz2", "out")
        f.block("sz2")
        ok2 = f.cmp("ule", "%n", 32, width=8)
        f.br(ok2, "alloc", "out")
        f.block("alloc")
        buf = f.malloc("%n", dest="%buf")
        f.const(0, dest="%i")
        f.jmp("fill")
        f.block("fill")
        done = f.cmp("uge", "%i", "%n", width=8)
        f.br(done, "boom", "body")
        f.block("body")
        p = f.gep("%buf", "%i", 1)
        f.store(p, "%i", 1)
        f.add("%i", 1, dest="%i")
        f.jmp("fill")
        f.block("boom")
        over = f.gep("%buf", "%n", 1)
        f.load(over, 1)   # one past the end: the failure
        f.ret(0)
        f.block("out")
        f.ret(0)
        return b.build()

    def test_conflicting_pick_reported_as_stall(self):
        module = self._malloc_module()
        run, trace = traced_run(module,
                                Environment({"stdin": bytes([9])}))
        assert run.failure is not None
        result = ShepherdedSymex(module, trace, run.failure).run()
        # first feasible size (4) contradicts the 9-iteration fill loop
        assert result.stalled
        assert result.stall.concretization_conflict is not None

    def test_banning_the_pick_retries_to_success(self):
        module = self._malloc_module()
        run, trace = traced_run(module,
                                Environment({"stdin": bytes([9])}))
        banned = {}
        for _ in range(40):
            result = ShepherdedSymex(module, trace, run.failure,
                                     banned_concretizations=banned).run()
            if result.completed:
                break
            conflict = result.stall.concretization_conflict
            assert conflict is not None
            banned.setdefault(conflict[0], set()).add(conflict[1])
        assert result.completed
        assert result.model.streams()["stdin"][0] == 9
