"""Benchmark: portfolio-width invariance across the full Table-1 set.

Reconstructs all 13 workloads at solver-portfolio widths 1, 2 and 4 and
asserts the outcomes are byte-identical: same success/verified verdicts,
same reoccurrence counts, same recorded input bytes.  The commit rules
(`repro.solver.portfolio`) promise exactly this — only the reference
backend's models commit, variants may only rescue unsat-vs-timeout —
so any drift here is a racer leaking nondeterminism into results.
Records the equality matrix plus the race/win/rescue counters to
``benchmarks/out/BENCH_portfolio.json``.
"""

import json
import os

from repro.parallel import run_batch
from repro.workloads import workload_names

WIDTHS = (1, 2, 4)


def _signature(item):
    """The externally observable outcome of one reconstruction."""
    return {
        "success": item.success,
        "verified": item.verified,
        "occurrences": item.occurrences,
        "unrelated_occurrences": item.unrelated_occurrences,
        "recorded_bytes": item.recorded_bytes,
        "error": item.error,
    }


def test_portfolio_width_invariance(artifact_dir):
    names = workload_names()
    runs = {width: run_batch(names, portfolio=width) for width in WIDTHS}

    reference = {item.workload: _signature(item)
                 for item in runs[1].items}
    for width in WIDTHS[1:]:
        for item in runs[width].items:
            assert _signature(item) == reference[item.workload], (
                f"portfolio={width} diverged on {item.workload}")
        counters = runs[width].telemetry.get("counters", {})
        assert counters.get("solver.portfolio.races", 0) > 0, (
            f"portfolio={width} never raced")

    def portfolio_counters(result):
        counters = result.telemetry.get("counters", {})
        return {name: value for name, value in sorted(counters.items())
                if name.startswith("solver.portfolio.")}

    data = {
        "workloads": names,
        "widths": list(WIDTHS),
        "cpu_count": os.cpu_count(),
        "signatures": reference,
        "wall_seconds": {width: round(runs[width].wall_seconds, 4)
                         for width in WIDTHS},
        "portfolio_counters": {width: portfolio_counters(runs[width])
                               for width in WIDTHS},
    }
    (artifact_dir / "BENCH_portfolio.json").write_text(
        json.dumps(data, indent=2) + "\n")
    succeeded = runs[1].succeeded
    print(f"\n{len(names)} workloads byte-identical at widths "
          f"{WIDTHS} ({succeeded} succeeded); "
          f"races at width 4: "
          f"{data['portfolio_counters'][4].get('solver.portfolio.races', 0)}")
