"""End-to-end: the instrumented ER pipeline emits a coherent stream."""

import pytest

from repro import telemetry
from repro.telemetry import (JsonlSink, MemorySink, Telemetry,
                             iteration_rows, read_jsonl, render_stats)
from repro.workloads import get_workload
from repro.core import ExecutionReconstructor, ProductionSite


@pytest.fixture(scope="module")
def run():
    """One instrumented reconstruction; shared across assertions."""
    workload = get_workload("sqlite-7be932d")
    tel = Telemetry(MemorySink())
    with telemetry.scoped(tel):
        er = ExecutionReconstructor(workload.fresh_module(),
                                    work_limit=workload.work_limit)
        report = er.reconstruct(ProductionSite(workload.failing_env))
    tel.emit_snapshot()
    return report, tel


class TestLayerCoverage:
    def test_spans_from_every_layer(self, run):
        _, tel = run
        span_names = {e["name"] for e in tel.sink.events
                      if e["type"] == "span"}
        # production, trace-decode, symex, solver, selection
        assert "production.attempt" in span_names
        assert "trace.decode" in span_names
        assert "symex.run" in span_names
        assert "solver.query" in span_names
        assert "selection.select_key_values" in span_names
        assert "reconstruct.run" in span_names

    def test_counters_from_every_layer(self, run):
        _, tel = run
        counters = tel.snapshot()["counters"]
        assert counters["production.runs"] >= 1
        assert counters["trace.decodes"] >= 1
        assert counters["trace.tnt_bits"] > 0
        assert counters["symex.runs"] >= 1
        assert counters["symex.solver_calls"] > 0
        assert counters["solver.timeouts"] >= 1      # it stalls twice
        assert counters["selection.rounds"] >= 1
        assert counters["reconstruct.successes"] == 1

    def test_solver_work_histogram_populated(self, run):
        _, tel = run
        hist = tel.snapshot()["histograms"]["solver.work_per_query"]
        assert hist["count"] > 0 and hist["max"] > 0

    def test_stats_folded_into_registry_match_report(self, run):
        report, tel = run
        counters = tel.snapshot()["counters"]
        assert counters["symex.solver_calls"] == sum(
            it.solver_calls for it in report.iterations)

    def test_iteration_events_and_phase_timeline(self, run):
        report, tel = run
        rows = iteration_rows(tel.sink.events)
        assert len(rows) == len(report.iterations) == report.occurrences
        assert rows[-1]["status"] == "completed"
        assert rows[0]["status"] == "stalled"
        assert rows[0]["recorded_bytes"] > 0
        for it in report.iterations:
            assert it.phase_seconds["production"] > 0
            assert it.phase_seconds["symex"] > 0
        timeline = report.timeline()
        assert [r["occurrence"] for r in timeline] == \
            [it.occurrence for it in report.iterations]

    def test_report_to_dict_round_trips_via_json(self, run):
        import json

        report, tel = run
        data = json.loads(json.dumps(
            report.to_dict(telemetry_snapshot=tel.snapshot())))
        assert data["success"] is True
        assert data["occurrences"] == report.occurrences
        assert len(data["iterations"]) == len(report.iterations)
        assert data["telemetry"]["counters"]["production.runs"] >= 1
        assert data["test_case"]["streams"]    # hex-encoded inputs

    def test_render_stats_produces_breakdown(self, run):
        _, tel = run
        text = render_stats(tel.sink.events)
        assert "Per-iteration cost breakdown" in text
        assert "stalled" in text and "completed" in text
        assert "Counters" in text and "Span timings" in text


class TestJsonlPipeline:
    def test_reconstruction_stream_survives_jsonl(self, tmp_path):
        workload = get_workload("nasm-2004-1287")
        path = tmp_path / "tel.jsonl"
        tel = Telemetry(JsonlSink(path))
        with telemetry.scoped(tel):
            er = ExecutionReconstructor(workload.fresh_module(),
                                        work_limit=workload.work_limit)
            report = er.reconstruct(ProductionSite(workload.failing_env))
        tel.close()
        assert report.success
        events = read_jsonl(path)
        rows = iteration_rows(events)
        assert len(rows) == report.occurrences
        assert events[-1]["type"] == "snapshot"


class TestDisabledPipeline:
    def test_null_sink_reconstruction_still_counts_metrics(self):
        workload = get_workload("nasm-2004-1287")
        tel = Telemetry()        # null sink: no events, metrics only
        with telemetry.scoped(tel):
            er = ExecutionReconstructor(workload.fresh_module(),
                                        work_limit=workload.work_limit)
            report = er.reconstruct(ProductionSite(workload.failing_env))
        assert report.success
        counters = tel.snapshot()["counters"]
        assert counters["production.runs"] >= 1
        assert counters["reconstruct.successes"] == 1
