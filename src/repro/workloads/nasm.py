"""Mini-assembler: NASM-2004-1287 (stack buffer overrun).

The real bug: NASM's preprocessor copies the message of a ``%error``
directive into a fixed stack buffer without a bounds check.  The mini
assembler keeps the surrounding structure: a line reader, a label pass
that interns labels into a hash table (the write-chain fuel), a
mnemonic matcher, and the vulnerable directive handler with its 48-byte
stack buffer.

Input (assembly text) arrives on the ``asm`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

LABEL_SLOTS = 32
ERR_BUF = 48


def build_nasm() -> Module:
    b = ModuleBuilder("nasm-2004-1287")
    b.global_("line_buf", 128)
    b.global_("label_table", LABEL_SLOTS * 8)
    b.string("mn_mov", "mov")
    b.string("mn_add", "add")
    b.string("mn_jmp", "jmp")

    # read_line(): like the SQL engine's, newline/NUL terminated
    f = b.function("read_line", [])
    f.block("entry")
    f.global_addr("line_buf", dest="%buf")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    full = f.cmp("uge", "%i", 127)
    f.br(full, "out", "rd")
    f.block("rd")
    ch = f.input("asm", 1, dest="%ch")
    isnl = f.cmp("eq", "%ch", 10, width=8)
    f.br(isnl, "out", "chk0")
    f.block("chk0")
    is0 = f.cmp("eq", "%ch", 0, width=8)
    f.br(is0, "out", "put")
    f.block("put")
    p = f.gep("%buf", "%i", 1)
    f.store(p, "%ch", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    endp = f.gep("%buf", "%i", 1)
    f.store(endp, 0, 1)
    f.ret("%i")

    # intern_label(line, len): additive hash into the label table
    f = b.function("intern_label", ["line", "len"])
    f.block("entry")
    f.const(0, dest="%h")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "ins", "body")
    f.block("body")
    p = f.gep("%line", "%i", 1)
    ch = f.load(p, 1, dest="%ch")
    f.add("%h", "%ch", width=32, dest="%h")
    sh = f.shl("%h", 2, width=32)
    f.add("%h", sh, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("ins")
    slot = f.urem("%h", LABEL_SLOTS, dest="%slot")
    tbl = f.global_addr("label_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")

    # strprefix(s, t): 1 if t (NUL-terminated) prefixes s
    f = b.function("strprefix", ["s", "t"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    tp = f.gep("%t", "%i", 1)
    tc = f.load(tp, 1, dest="%tc")
    end = f.cmp("eq", "%tc", 0, width=8)
    f.br(end, "yes", "cmp")
    f.block("cmp")
    sp = f.gep("%s", "%i", 1)
    sc = f.load(sp, 1, dest="%sc")
    same = f.cmp("eq", "%sc", "%tc", width=8)
    f.br(same, "next", "no")
    f.block("next")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("yes")
    f.ret(1)
    f.block("no")
    f.ret(0)

    # handle_error(line, len): the vulnerable %error handler
    f = b.function("handle_error", ["line", "len"])
    f.block("entry")
    buf = f.alloca("errmsg", ERR_BUF)
    f.const(6, dest="%i")  # skip '%error'
    f.const(0, dest="%o")
    f.jmp("copy")
    f.block("copy")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "out", "body")
    f.block("body")
    sp = f.gep("%line", "%i", 1)
    ch = f.load(sp, 1, dest="%ch")
    dp = f.gep(buf, "%o", 1)
    f.store(dp, "%ch", 1)   # BUG: no bound check against ERR_BUF
    f.add("%i", 1, dest="%i")
    f.add("%o", 1, dest="%o")
    f.jmp("copy")
    f.block("out")
    f.output("stderr", "%o", 4)
    f.ret("%o")

    # assemble_line(line, len): mnemonic dispatch
    f = b.function("assemble_line", ["line", "len"])
    f.block("entry")
    for i, mn in enumerate(("mn_mov", "mn_add", "mn_jmp")):
        g = f.global_addr(mn)
        m = f.call("strprefix", ["%line", g], dest=f"%m{i}")
        f.br(f"%m{i}", f"emit{i}", f"next{i}")
        f.block(f"emit{i}")
        f.output("obj", i + 1, 1)
        f.ret(1)
        f.block(f"next{i}")
    f.ret(0)

    f = b.function("main", [])
    f.block("entry")
    f.jmp("lines")
    f.block("lines")
    n = f.call("read_line", [], dest="%n")
    empty = f.cmp("eq", "%n", 0)
    f.br(empty, "out", "classify")
    f.block("classify")
    buf = f.global_addr("line_buf", dest="%buf")
    c0 = f.load("%buf", 1, dest="%c0")
    is_dir = f.cmp("eq", "%c0", ord("%"), width=8)
    f.br(is_dir, "directive", "chk_label")
    f.block("directive")
    # '%error ...'?
    p1 = f.gep("%buf", 1, 1)
    c1 = f.load(p1, 1, dest="%c1")
    is_err = f.cmp("eq", "%c1", ord("e"), width=8)
    f.br(is_err, "err", "lines")
    f.block("err")
    f.call("handle_error", ["%buf", "%n"])
    f.jmp("lines")
    f.block("chk_label")
    # a line ending in ':' is a label
    last = f.sub("%n", 1)
    lp = f.gep("%buf", last, 1)
    lc = f.load(lp, 1, dest="%lc")
    is_lbl = f.cmp("eq", "%lc", ord(":"), width=8)
    f.br(is_lbl, "label", "instr")
    f.block("label")
    f.call("intern_label", ["%buf", last])
    f.jmp("lines")
    f.block("instr")
    f.call("assemble_line", ["%buf", "%n"])
    f.jmp("lines")
    f.block("out")
    f.ret(0)
    return b.build()


def _asm(*lines: str) -> bytes:
    return ("\n".join(lines) + "\n").encode() + b"\x00"


def _failing_nasm(occurrence: int) -> Environment:
    labels = ["start", "loop1", "fini", "reloc"]
    lbl = labels[occurrence % len(labels)]
    message = "macro exploded badly " * 3  # > 48 bytes after '%error'
    return Environment({"asm": _asm(
        f"{lbl}:",
        "mov ax bx",
        f"%error {message}",
    )})


def _benign_nasm(seed: int) -> Environment:
    rng = random.Random(seed)
    lines = []
    for _ in range(rng.randint(150, 200)):
        kind = rng.random()
        if kind < 0.2:
            lines.append(rng.choice(["start:", "top:", "done:", "l1:"]))
        elif kind < 0.3:
            lines.append("%error short")
        else:
            lines.append(rng.choice(["mov ax bx", "add cx dx", "jmp top"]))
    return Environment({"asm": _asm(*lines)})


def nasm_workloads():
    return [Workload(
        name="nasm-2004-1287", app="Nasm 0.98.34", bug_id="CVE-2004-1287",
        bug_type="Stack buffer overrun", multithreaded=False,
        expected_kind=FailureKind.OUT_OF_BOUNDS,
        build=build_nasm,
        failing_env=_failing_nasm, benign_env=_benign_nasm,
        bench_name="Assemble a large asm file",
        work_limit=4_000,
        paper_occurrences=3, paper_instrs=1_480_285)]
