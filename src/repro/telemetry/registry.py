"""The telemetry registry: metrics, nestable timed spans, event stream.

One :class:`Telemetry` instance aggregates everything observable about a
run of the ER pipeline:

* **metrics** — named :class:`~repro.telemetry.metrics.Counter` /
  ``Gauge`` / ``Histogram`` objects, created on first use and read back
  via :meth:`Telemetry.snapshot`;
* **spans** — ``with telemetry.span("symex.run", iteration=3):`` times a
  pipeline stage, feeds a per-name duration histogram, and (when a sink
  is attached) emits a structured ``span`` event carrying its nesting
  depth, parent, and trace identity; and
* **events** — ``telemetry.event("production.ring_wrap", bytes=...)``
  point records, forwarded to the sink.

Every registry belongs to a *trace*: spans get ``span_id``/``parent_id``
and carry the registry's ``trace_id``, and a worker registry built from
a parent's :class:`~repro.telemetry.context.TraceContext` joins the
parent's trace — its root spans parent on the handoff span and its event
clock is rebased onto the parent's timeline (see :mod:`.context`).

The process-wide current registry lives in :mod:`repro.telemetry`
(module functions ``get`` / ``set_current`` / ``scoped``); library code
reaches it through those so the CLI and tests can swap in a fresh
registry per run.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

from .context import TraceContext, new_trace_id
from .metrics import Counter, Gauge, Histogram
from .sinks import NULL_SINK, Sink

__all__ = ["Telemetry", "Span"]

#: per-process registry numbering; keeps span ids unique when several
#: registries coexist in one process (serial batch, tests)
_REGISTRY_IDS = itertools.count(1)


class Span:
    """One timed, attributed region; returned by :meth:`Telemetry.span`.

    Usable only as a context manager.  After exit, :attr:`seconds` holds
    the measured wall time — callers that want the number (e.g. the
    reconstructor's per-iteration timeline) keep the object around::

        with telemetry.span("trace.decode", bytes=n) as sp:
            ...
        record.phase_seconds["decode"] = sp.seconds

    ``span_id``/``parent_id``/``trace_id`` are assigned at entry:
    ``parent_id`` is the enclosing span on this thread, or — for a
    worker registry's root spans — the parent process's handoff span.
    """

    __slots__ = ("telemetry", "name", "attrs", "seconds", "_started",
                 "span_id", "parent_id", "trace_id")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self.telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.seconds: float = 0.0
        self._started: float = 0.0
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None

    def __enter__(self) -> "Span":
        self.telemetry._enter_span(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._started
        self.telemetry._exit_span(self, error=exc_type is not None)


class Telemetry:
    """A registry of metrics plus a structured event stream.

    Thread-compatible by construction: metric updates are plain attribute
    arithmetic (atomic enough under the GIL) and the span stack is
    thread-local, so concurrent production runs cannot corrupt nesting.

    ``context`` links this registry into an existing trace (worker
    processes); without one, the registry starts a fresh trace.
    """

    def __init__(self, sink: Optional[Sink] = None,
                 context: Optional[TraceContext] = None):
        self.sink: Sink = sink if sink is not None else NULL_SINK
        self.context = context
        self.trace_id = (context.trace_id if context is not None
                         else new_trace_id())
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._local = threading.local()
        self._seq = 0
        self._span_seq = 0
        self._registry_id = next(_REGISTRY_IDS)
        self._pid = os.getpid()
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()
        # clock alignment at handoff: how far into the parent timeline
        # this registry was born (0 for a root registry)
        self._ts_base = 0.0
        if context is not None and context.wall_origin is not None:
            self._ts_base = max(self._epoch_wall - context.wall_origin,
                                0.0)

    # -- metric accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            metric = self._histograms[name] = Histogram(name)
            return metric

    def count(self, name: str, amount: int = 1) -> None:
        """Convenience one-shot counter increment."""
        self.counter(name).add(amount)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A nestable timed region; see :class:`Span`."""
        return Span(self, name, attrs)

    def _span_stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _next_span_id(self) -> str:
        # pid alone cannot disambiguate: the serial batch path runs one
        # registry per workload inside a single process
        self._span_seq += 1
        return f"{self._pid:x}.{self._registry_id:x}.{self._span_seq:x}"

    def _enter_span(self, span: Span) -> None:
        stack = self._span_stack()
        span.span_id = self._next_span_id()
        if stack:
            span.parent_id = stack[-1].span_id
        elif self.context is not None:
            # root span of a worker registry: link across the process
            # boundary to the parent's handoff span
            span.parent_id = self.context.span_id
        span.trace_id = self.trace_id
        stack.append(span)

    def _exit_span(self, span: Span, error: bool) -> None:
        stack = self._span_stack()
        depth = len(stack)
        parent = stack[-2].name if depth >= 2 else None
        stack.pop()
        self.histogram(f"span.{span.name}").record(span.seconds)
        if self.sink.enabled:
            event = {"type": "span", "name": span.name,
                     "dur_s": span.seconds, "depth": depth,
                     "parent": parent,
                     "span_id": span.span_id,
                     "parent_id": span.parent_id,
                     "trace_id": span.trace_id}
            if error:
                event["error"] = True
            if span.attrs:
                event["attrs"] = span.attrs
            self._emit(event)

    # -- trace handoff ---------------------------------------------------

    def trace_context(self) -> TraceContext:
        """The handoff record for a worker spawned right now.

        The handoff span is the innermost span open on the calling
        thread (or this registry's own inherited handoff span when none
        is open); ``wall_origin`` re-expresses the *root* timeline's
        zero point so chained handoffs (batch → reconstruction → shard)
        keep one shared clock.
        """
        stack = self._span_stack()
        if stack:
            span_id = stack[-1].span_id
        elif self.context is not None:
            span_id = self.context.span_id
        else:
            span_id = None
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            wall_origin=self._epoch_wall - self._ts_base)

    # -- events ----------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Emit one structured point event (dropped when sink disabled)."""
        if not self.sink.enabled:
            return
        event = {"type": "event", "name": name}
        if fields:
            event["attrs"] = fields
        self._emit(event)

    def forward(self, events: Iterable[Dict]) -> None:
        """Re-emit pre-formed worker events into this registry's sink.

        Events keep their own ``seq``/``ts``/``pid`` — a worker registry
        built from this registry's :meth:`trace_context` already stamped
        them on the shared timeline, so rewriting them here would break
        cross-process comparability.  No-op when the sink is disabled.
        """
        if not self.sink.enabled:
            return
        for event in events:
            if event.get("type") == "snapshot":
                continue  # per-worker snapshots are merged, not streamed
            self.sink.emit(dict(event))

    def emit_snapshot(self) -> None:
        """Emit the full metric state as one ``snapshot`` event."""
        if not self.sink.enabled:
            return
        self._emit({"type": "snapshot", "name": "telemetry.snapshot",
                    "metrics": self.snapshot()})

    def _emit(self, event: Dict) -> None:
        self._seq += 1
        event["seq"] = self._seq
        event["ts"] = round(self._ts_base
                            + time.perf_counter() - self._epoch, 6)
        event["pid"] = self._pid
        self.sink.emit(event)

    # -- lifecycle / export ----------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when a real (non-null) sink is attached."""
        return self.sink.enabled

    def snapshot(self) -> Dict[str, Dict]:
        """All metric values as plain data (the ``--json`` surface)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def absorb(self, snapshot: Optional[Dict]) -> None:
        """Fold a worker's metric snapshot into this registry.

        Counters sum, gauges keep the max (the only order-independent
        merge), histograms absorb the aggregate (exact count/sum/min/
        max; the percentile sketch inherits the worker's quantile
        points — approximate, like :func:`~.stats.merge_snapshots`).
        Parents use this so worker metrics stay visible in their own
        final snapshot, not just in a side-channel merge.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, agg in snapshot.get("histograms", {}).items():
            self.histogram(name).absorb(agg)

    def reset(self) -> None:
        """Drop all metrics (the sink and its stream are untouched)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def close(self) -> None:
        """Emit a final snapshot and close the sink."""
        self.emit_snapshot()
        self.sink.close()
