"""Packet-level format of the simulated Intel PT stream.

The format mirrors the roles (not the exact bit layout) of the real Intel
PT packets ER consumes:

* ``PSB``  — stream synchronization point (decoders resync here).
* ``CHD``  — chunk header: thread id + coarse timestamp.  Plays the role of
  PIP/MTC context packets; one per scheduler chunk (§3.4).
* ``CHE``  — chunk end: retired-instruction count of the chunk (CYC-like).
* ``TNT``  — taken/not-taken bits for up to six conditional branches,
  packed into one payload byte exactly like a short TNT packet.
* ``PTW``  — a key data value recorded by a ``ptwrite`` instruction:
  varint tag + 8-byte little-endian value.
* ``OVF``  — emitted logically when the ring buffer wrapped.

Integers are LEB128 varints; every packet starts with a one-byte kind tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..errors import TraceError

PSB = 0x01
CHD = 0x02
CHE = 0x03
TNT = 0x04
PTW = 0x05
OVF = 0x06

#: PSB emitted after this many payload bytes (real PT: every 4 KiB).
PSB_PERIOD = 4096

#: Max branch bits per TNT packet (short TNT).
TNT_CAPACITY = 6


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise TraceError(f"varint cannot encode negative {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode LEB128 at ``pos``; returns (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceError("varint too long")


def encode_tnt(bits: List[bool]) -> bytes:
    """Pack 1..6 branch bits into a short-TNT payload byte.

    Layout: a leading 1 marker bit above the bits, bits stored LSB-first
    (first branch in bit 0).
    """
    if not 1 <= len(bits) <= TNT_CAPACITY:
        raise TraceError(f"TNT holds 1..{TNT_CAPACITY} bits, got {len(bits)}")
    payload = 1 << len(bits)
    for i, bit in enumerate(bits):
        if bit:
            payload |= 1 << i
    return bytes((TNT, payload))


def decode_tnt(payload: int) -> List[bool]:
    """Unpack a short-TNT payload byte."""
    if payload <= 1:
        raise TraceError(f"bad TNT payload {payload:#x}")
    count = payload.bit_length() - 1
    return [bool(payload & (1 << i)) for i in range(count)]


@dataclass(frozen=True)
class TntEvent:
    taken: bool


@dataclass(frozen=True)
class PtwEvent:
    tag: int
    value: int


@dataclass(frozen=True)
class GapEvent:
    """A branch whose TNT bit was lost (e.g. the paper's 8.5 % of x86
    control-flow events that cannot be mapped back to IR, §4).  The
    gap-tolerant replay (:mod:`repro.symex.gaps`) searches over the
    missing outcome."""


ChunkEvent = Union[TntEvent, PtwEvent, GapEvent]
