"""Benchmark: solver-cache compaction after a fleet merge.

Two "machines" reconstruct the same workloads cold, each building its
own persistent solver cache; a fleet merge (``repro cache merge
--no-compact``) unions them into one duplicate-heavy store — every
query both machines solved appears twice.  Compaction must shrink that
store substantially (the acceptance bar is ≥30 %; deduplicating a
two-way merge lands near 50 %) while changing *no* answer: a live
``DiskSolverCache`` handle open across the compaction and a warm batch
run both observe identical results before and after.  The measured
pre/post sizes and warm hit rates land in
``benchmarks/out/BENCH_cache.json`` — the artifact the CI cache leg
uploads.
"""

import json
import shutil

from repro.parallel import run_batch
from repro.solver.diskcache import DiskSolverCache
from repro.solver.segments import (SegmentLayout, compact_store,
                                   iter_lines, merge_caches,
                                   store_stats)

#: the CI disk-cache smoke workloads: cheap, deterministic, enough
#: solver traffic to make the duplicate-heavy merge meaningful
WORKLOADS = ["objdump-2018-6323", "matrixssl-2014-1569"]


def _all_keys(path):
    """Every digest-set key the store holds (for live-handle probing)."""
    layout = SegmentLayout(path)
    manifest = layout.load_manifest()
    keys = []
    seen = set()
    for name in manifest.segments + [manifest.active]:
        for line in iter_lines(layout.file(name)):
            entry = json.loads(line)
            key = tuple(sorted(entry.get("k", ())))
            if key and key not in seen:
                seen.add(key)
                keys.append(list(key))
    return keys


def test_merge_then_compact_shrinks_without_changing_answers(
        artifact_dir, tmp_path):
    # -- two machines build independent caches of the same workloads
    machine_a = tmp_path / "cache-a"
    machine_b = tmp_path / "cache-b"
    cold_a = run_batch(WORKLOADS, parallel=1, cache_dir=str(machine_a))
    cold_b = run_batch(WORKLOADS, parallel=1, cache_dir=str(machine_b))
    assert cold_a.succeeded == cold_b.succeeded == len(WORKLOADS)

    # -- fleet merge, raw union: the duplicate-heavy store under test
    merged = tmp_path / "merged"
    merge_result = merge_caches(machine_a, machine_b, merged,
                                compact=False)
    assert merge_result["entries_out"] == \
        merge_result["entries_a"] + merge_result["entries_b"]
    pre = store_stats(merged)
    assert pre["total_bytes"] > 0

    # -- a warm run against (a copy of) the raw union; the copy keeps
    # -- the measured store byte-identical for the size comparison
    raw_copy = tmp_path / "merged-raw-run"
    shutil.copytree(merged, raw_copy)
    warm_raw = run_batch(WORKLOADS, parallel=1,
                         cache_dir=str(raw_copy))

    # -- live handle open across the compaction
    live = DiskSolverCache(merged)
    keys = _all_keys(merged)
    assert keys
    before = [found[:2] if (found := live.lookup(key)) else None
              for key in keys]

    _manifest, compaction = compact_store(merged)
    post = store_stats(merged)

    after = [found[:2] if (found := live.lookup(key)) else None
             for key in keys]
    assert after == before  # the live handle never notices

    warm_compacted = run_batch(WORKLOADS, parallel=1,
                               cache_dir=str(merged))

    # -- identical outcomes and warm hit rates, raw vs compacted
    assert warm_compacted.succeeded == warm_raw.succeeded \
        == len(WORKLOADS)
    for raw_item, compacted_item in zip(warm_raw.items,
                                        warm_compacted.items):
        assert raw_item.workload == compacted_item.workload
        assert raw_item.success == compacted_item.success
    rate_raw = warm_raw.solver_cache_stats["hit_rate"]
    rate_compacted = warm_compacted.solver_cache_stats["hit_rate"]
    assert rate_compacted == rate_raw

    # -- the acceptance bar: ≥30 % smaller on the merged workload
    shrink = 1.0 - post["total_bytes"] / pre["total_bytes"]
    assert shrink >= 0.30, (pre["total_bytes"], post["total_bytes"])

    data = {
        "workloads": WORKLOADS,
        "pre_bytes": pre["total_bytes"],
        "post_bytes": post["total_bytes"],
        "shrink": round(shrink, 4),
        "pre_entries": pre["total_entries"],
        "post_entries": post["total_entries"],
        "compaction": compaction.to_dict(),
        "warm_hit_rate_raw": rate_raw,
        "warm_hit_rate_compacted": rate_compacted,
        "warm_disk_hits_raw":
            warm_raw.solver_cache_stats["disk_hits"],
        "warm_disk_hits_compacted":
            warm_compacted.solver_cache_stats["disk_hits"],
        "live_handle_queries": len(keys),
    }
    (artifact_dir / "BENCH_cache.json").write_text(
        json.dumps(data, indent=2) + "\n")
    print(f"\ncache compaction: {pre['total_bytes']} -> "
          f"{post['total_bytes']} bytes ({shrink:.1%} smaller), warm "
          f"hit rate {rate_raw:.1%} == {rate_compacted:.1%}\n")
