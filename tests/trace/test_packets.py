"""Packet codecs: varint, TNT bit packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.packets import (TNT_CAPACITY, decode_tnt, decode_varint,
                                 encode_tnt, encode_varint)


class TestVarint:
    def test_small(self):
        assert encode_varint(5) == b"\x05"

    def test_multibyte(self):
        assert encode_varint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(TraceError):
            decode_varint(b"\x80", 0)

    @given(st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, pos = decode_varint(data, 0)
        assert decoded == value and pos == len(data)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.integers(min_value=0, max_value=1 << 40))
    def test_concatenated_stream(self, a, b):
        data = encode_varint(a) + encode_varint(b)
        first, pos = decode_varint(data, 0)
        second, end = decode_varint(data, pos)
        assert (first, second, end) == (a, b, len(data))


class TestTnt:
    def test_single_bit(self):
        packet = encode_tnt([True])
        assert decode_tnt(packet[1]) == [True]

    def test_full_packet(self):
        bits = [True, False, True, True, False, False]
        packet = encode_tnt(bits)
        assert decode_tnt(packet[1]) == bits

    def test_capacity_enforced(self):
        with pytest.raises(TraceError):
            encode_tnt([True] * (TNT_CAPACITY + 1))
        with pytest.raises(TraceError):
            encode_tnt([])

    def test_bad_payload(self):
        with pytest.raises(TraceError):
            decode_tnt(0)

    @given(st.lists(st.booleans(), min_size=1, max_size=TNT_CAPACITY))
    def test_roundtrip(self, bits):
        assert decode_tnt(encode_tnt(bits)[1]) == bits
