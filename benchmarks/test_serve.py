"""Benchmark: fleet-mode serve scalability (``BENCH_serve.json``).

The claim behind ``repro serve``: with N production instances running
each deployed version, the reconstruction's wait for the next failure
reoccurrence ends at the *first* fleet-wide report, so the accumulated
wait shrinks as the fleet grows — while the reconstruction itself
stays byte-identical to the single-site path (every instance runs
every version exactly once, so any instance's occurrence is the same
occurrence).

The recorded matrix runs one multi-iteration workload at fleet sizes
1 → 2 → 4 under a simulated reoccurrence delay and asserts both
halves: monotone wait shrinkage (deterministic, thanks to the
per-(instance, version) delay jitter) and identical outcomes.
"""

import json

from repro.core import ExecutionReconstructor, ProductionSite
from repro.serve import FleetService
from repro.workloads.registry import get_workload

#: needs several key-value iterations so the fleet races more than one
#: reoccurrence wait (pbzip2 converges in 4 occurrences)
WORKLOAD = "pbzip2-uaf"
FLEET_SIZES = [1, 2, 4]
#: simulated mean delay between failure reoccurrences; jittered
#: 0.5-1.5x per (instance, version) — §3.3's minutes-to-hours wait,
#: scaled to keep the bench fast
REOCCURRENCE_DELAY = 0.3


def test_serve_scalability(artifact_dir):
    workload = get_workload(WORKLOAD)
    single = ExecutionReconstructor(
        workload.fresh_module(), work_limit=workload.work_limit,
        max_occurrences=workload.max_occurrences).reconstruct(
        ProductionSite(workload.failing_env))
    assert single.success
    expected_streams = {name: data.hex() for name, data
                        in sorted(single.test_case.streams.items())}

    legs = []
    for instances in FLEET_SIZES:
        summary = FleetService(
            [WORKLOAD], instances=instances,
            reoccurrence_delay=REOCCURRENCE_DELAY).run()
        assert summary.succeeded, summary.unserviced
        bucket = summary.buckets[0]
        # byte-identity: the fleet converges to the single-site answer
        # at every fleet size
        assert bucket.streams == expected_streams, (
            f"fleet({instances}) diverged from the single-site "
            f"reconstruction")
        assert bucket.iterations == len(single.iterations)
        legs.append({
            "instances": instances,
            "wait_seconds": bucket.wait_seconds,
            "wall_seconds": summary.wall_seconds,
            "occurrences_consumed": bucket.occurrences_consumed,
            "reports": bucket.reports,
            "deduplicated": bucket.deduplicated + bucket.stale,
            "instance_runs": summary.instance_runs,
            "iterations": bucket.iterations,
        })

    # the headline effect: accumulated reoccurrence wait shrinks
    # strictly as the fleet grows (deterministic delay jitter)
    waits = [leg["wait_seconds"] for leg in legs]
    assert waits[0] > waits[1] > waits[2], (
        f"fleet-wide wait did not shrink with instance count: {waits}")
    # consumed occurrences stay constant — dedup absorbs the extra
    # reports instead of burning reconstruction budget
    consumed = {leg["occurrences_consumed"] for leg in legs}
    assert len(consumed) == 1

    summary_doc = {
        "workload": WORKLOAD,
        "reoccurrence_delay": REOCCURRENCE_DELAY,
        "single_site_iterations": len(single.iterations),
        "byte_identical": True,
        "legs": legs,
        "wait_reduction": round(1 - waits[-1] / waits[0], 4),
    }
    path = artifact_dir / "BENCH_serve.json"
    path.write_text(json.dumps(summary_doc, indent=2) + "\n")
    print(f"\nfleet wait {waits[0]:.2f}s -> {waits[-1]:.2f}s "
          f"({summary_doc['wait_reduction']:.0%} reduction over "
          f"{FLEET_SIZES[0]} -> {FLEET_SIZES[-1]} instances); "
          f"wrote {path}")
