"""Mechanics of the remaining workload bugs, at the guest level.

Each Table-1 bug has a specific arithmetic or interleaving mechanism
(a 32-bit wrap, a 16-bit check truncation, a TOCTOU window); these
tests pin the mechanism itself, not just 'it crashes'.
"""

import pytest

from repro.interp.env import Environment
from repro.interp.failures import FailureKind
from repro.interp.interpreter import Interpreter
from repro.workloads.libpng import TYPE_IEND, TYPE_TRNS, _chunk, _png
from repro.workloads.libpng import build_libpng
from repro.workloads.objdump import _obj_file, build_objdump
from repro.workloads.php import (_php2386_payload, _php74194_payload,
                                 build_php_2012_2386, build_php_74194)
from repro.workloads.pbzip2 import _tar, build_pbzip2
import random


class TestPhpIntegerOverflow:
    @pytest.fixture(scope="class")
    def module(self):
        return build_php_2012_2386()

    def _run(self, module, count, elems=()):
        payload = _php2386_payload("Obj", count, elems)
        return Interpreter(module, Environment({"php": payload})).run()

    def test_small_count_is_safe(self, module):
        assert self._run(module, 3, [1, 2, 3]).failure is None

    def test_wrap_point_exact(self, module):
        # 12 + 12*count == 4 (mod 2^32): the minimal overflowing count
        count = 0x2AAAAAAA
        result = self._run(module, count)
        assert result.failure is not None
        assert result.failure.kind == FailureKind.OUT_OF_BOUNDS

    def test_large_but_nonwrapping_rejected(self, module):
        # total > 4096 without wrapping: the size check rejects it
        assert self._run(module, 100_000).failure is None

    def test_other_wrap_values_also_crash(self, module):
        # 12 + 12*count == 16 (mod 2^32) -> a 16-byte alloc, header fits,
        # so the first element write crashes instead
        count = (0x100000004 // 12) + 1  # makes body wrap past 2^32
        result = self._run(module, 0x2AAAAAAB, [7])
        assert result.failure is not None


class TestPhpEscapeExpansion:
    @pytest.fixture(scope="class")
    def module(self):
        return build_php_74194()

    def _run(self, module, payload):
        cfg = [(0, 0)] * 3
        data = _php74194_payload(cfg, payload)
        return Interpreter(module, Environment({"php": data})).run()

    def test_low_bytes_fit_exactly(self, module):
        assert self._run(module, bytes(range(16))).failure is None

    def test_all_high_bytes_overflow(self, module):
        result = self._run(module, bytes([0x80] * 24))
        assert result.failure is not None
        assert result.failure.kind == FailureKind.OUT_OF_BOUNDS

    def test_boundary_density(self, module):
        # n=24, buffer 40: crash needs the cursor to pass 39 before the
        # last write; 15 high bytes keeps j <= 39 for every write
        ok = bytes([0x80] * 15 + [0x00] * 9)
        assert self._run(module, ok).failure is None


class TestObjdumpTruncatedCheck:
    @pytest.fixture(scope="class")
    def module(self):
        return build_objdump()

    def _run(self, module, nsec, entsize):
        data = _obj_file(nsec, entsize, bytes(64))
        return Interpreter(module, Environment({"obj": data})).run()

    def test_small_entsize_safe(self, module):
        assert self._run(module, 8, 16).failure is None

    def test_wrapping_end_check_bypassed(self, module):
        # idx=1: off = 0xFFFE, end16 = 2 <= 256 passes, read is wild
        result = self._run(module, 2, 0xFFFE)
        assert result.failure is not None
        assert result.failure.kind == FailureKind.OUT_OF_BOUNDS

    def test_nonwrapping_large_entsize_skipped(self, module):
        # end check (no 16-bit wrap within 8 sections): all skipped
        assert self._run(module, 8, 0x1000).failure is None

    def test_bad_magic_rejected(self, module):
        result = Interpreter(module, Environment(
            {"obj": b"XX" + bytes(70)})).run()
        assert result.failure is None


class TestPbzipWindow:
    def test_fine_quantum_races(self):
        module = build_pbzip2()
        rng = random.Random(1)
        result = Interpreter(module, Environment({"tar": _tar(rng, 2)},
                                                  quantum=10)).run()
        assert result.failure is not None
        assert result.failure.kind == FailureKind.USE_AFTER_FREE
        assert result.failure.point.func == "consumer"

    def test_coarse_quantum_safe(self):
        module = build_pbzip2()
        rng = random.Random(1)
        result = Interpreter(module, Environment({"tar": _tar(rng, 2)},
                                                  quantum=400)).run()
        assert result.failure is None

    def test_single_block_still_races_fine_quantum(self):
        module = build_pbzip2()
        rng = random.Random(1)
        result = Interpreter(module, Environment({"tar": _tar(rng, 1)},
                                                  quantum=10)).run()
        # the last (only) block is the eagerly-freed one
        assert result.failure is not None


class TestLibpngChunks:
    @pytest.fixture(scope="class")
    def module(self):
        return build_libpng()

    def test_exact_buffer_fill_is_safe(self, module):
        trns = _chunk(TYPE_TRNS, bytes(256))
        result = Interpreter(module, Environment({"png": _png(trns)})).run()
        assert result.failure is None

    def test_one_past_crashes(self, module):
        trns = _chunk(TYPE_TRNS, bytes(257))
        result = Interpreter(module, Environment({"png": _png(trns)})).run()
        assert result.failure is not None

    def test_unknown_chunks_skipped(self, module):
        blob = _chunk(0x12345678, bytes(500))
        result = Interpreter(module, Environment({"png": _png(blob)})).run()
        assert result.failure is None

    def test_iend_stops_parsing(self, module):
        data = _png() + b"\xff" * 50  # trailing garbage after IEND
        result = Interpreter(module, Environment({"png": data})).run()
        assert result.failure is None
