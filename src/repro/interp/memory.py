"""Concrete byte-addressed memory with object bounds and liveness.

The address space is segmented so that faults classify naturally:

* ``[0, 0x1000)``            — the null page; any access is a NULL_DEREF.
* ``[0x0001_0000, ...)``     — globals, laid out at module load.
* ``[0x1000_0000, ...)``     — stack objects (``alloca``), freed on return.
* ``[0x2000_0000, ...)``     — heap objects (``malloc``/``free``).

Every object keeps its identity after ``free`` so that dangling accesses
report USE_AFTER_FREE rather than a generic wild access — the pbzip2
workload depends on this.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.module import Module
from ..ir.types import int_le
from .failures import FailureKind, MemoryFault

NULL_PAGE_END = 0x1000
GLOBAL_BASE = 0x0001_0000
STACK_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
_ALIGN = 16
#: guard gap between objects: small overruns hit unmapped bytes
_GUARD = 48


@dataclass
class MemoryObject:
    """One allocation: a contiguous, bounds-checked byte array."""

    base: int
    size: int
    kind: str  # 'global' | 'stack' | 'heap'
    name: str
    data: bytearray
    live: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


def _align(value: int) -> int:
    return ((value + _GUARD + _ALIGN - 1) & ~(_ALIGN - 1))


class Memory:
    """Concrete memory: allocation, bounds/liveness checking, load/store."""

    def __init__(self, module: Optional[Module] = None):
        self._objects: Dict[int, MemoryObject] = {}
        self._bases: List[int] = []
        self._next_stack = STACK_BASE
        self._next_heap = HEAP_BASE
        self._next_global = GLOBAL_BASE
        self.global_addrs: Dict[str, int] = {}
        if module is not None:
            self.load_globals(module)

    # -- allocation ----------------------------------------------------

    def load_globals(self, module: Module) -> None:
        for obj in module.globals.values():
            base = self._next_global
            self._insert(MemoryObject(base, obj.size, "global", obj.name,
                                      obj.initial_bytes()))
            self.global_addrs[obj.name] = base
            self._next_global = _align(base + max(obj.size, 1))

    def alloc_stack(self, name: str, size: int) -> MemoryObject:
        base = self._next_stack
        obj = MemoryObject(base, size, "stack", name, bytearray(size))
        self._insert(obj)
        self._next_stack = _align(base + max(size, 1))
        return obj

    def alloc_heap(self, size: int) -> MemoryObject:
        base = self._next_heap
        obj = MemoryObject(base, size, "heap", f"heap@{base:#x}",
                           bytearray(size))
        self._insert(obj)
        self._next_heap = _align(base + max(size, 1))
        return obj

    def free_heap(self, addr: int) -> MemoryObject:
        obj = self.find_object(addr)
        if obj is None or obj.base != addr or obj.kind != "heap":
            raise MemoryFault(FailureKind.OUT_OF_BOUNDS, addr,
                              "free of non-heap pointer")
        if not obj.live:
            raise MemoryFault(FailureKind.DOUBLE_FREE, addr)
        obj.live = False
        return obj

    def release_stack(self, obj: MemoryObject) -> None:
        """Mark a frame object dead on function return."""
        obj.live = False

    def _insert(self, obj: MemoryObject) -> None:
        self._objects[obj.base] = obj
        bisect.insort(self._bases, obj.base)

    # -- lookup ----------------------------------------------------------

    def find_object(self, addr: int) -> Optional[MemoryObject]:
        """The object whose [base, end) contains ``addr``, live or dead."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        obj = self._objects[self._bases[idx]]
        return obj if obj.contains(addr) else None

    def check_access(self, addr: int, size: int) -> MemoryObject:
        """Classify and validate an access; raises MemoryFault on traps."""
        if addr < NULL_PAGE_END:
            raise MemoryFault(FailureKind.NULL_DEREF, addr)
        obj = self.find_object(addr)
        if obj is None:
            raise MemoryFault(FailureKind.OUT_OF_BOUNDS, addr,
                              "wild pointer")
        if not obj.live:
            raise MemoryFault(FailureKind.USE_AFTER_FREE, addr,
                              f"object {obj.name}")
        if addr + size > obj.end:
            raise MemoryFault(FailureKind.OUT_OF_BOUNDS, addr,
                              f"{size}-byte access past end of {obj.name}")
        return obj

    # -- access ----------------------------------------------------------

    def load(self, addr: int, size: int) -> int:
        obj = self.check_access(addr, size)
        off = addr - obj.base
        return int_le(bytes(obj.data[off:off + size]))

    def store(self, addr: int, value: int, size: int) -> None:
        obj = self.check_access(addr, size)
        off = addr - obj.base
        obj.data[off:off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little")

    def read_bytes(self, addr: int, size: int) -> bytes:
        obj = self.check_access(addr, size)
        off = addr - obj.base
        return bytes(obj.data[off:off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        obj = self.check_access(addr, len(data))
        off = addr - obj.base
        obj.data[off:off + len(data)] = data

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of every live object's bytes, keyed by base (for REPT)."""
        return {base: bytes(obj.data)
                for base, obj in self._objects.items() if obj.live}

    def objects(self) -> List[MemoryObject]:
        return [self._objects[b] for b in self._bases]
