"""Benchmark: §5.3 offline costs — graph size, selection time, symbex time.

Paper numbers for scale comparison: constraint graphs up to ~40 K nodes,
bottleneck/recording-set computation at most 15 s, shepherded symbolic
execution 19 min average / 111 min max.  Our mini workloads are ~1000x
smaller, so the shapes to check are: selection is cheap relative to
symbex, and graph size stays bounded.
"""

import time

import pytest

from repro.core.selection import select_key_values
from repro.evaluation.formatting import render_table
from repro.evaluation.table1 import run_table1
from repro.interp.interpreter import Interpreter
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload


def _stall_for(name):
    workload = get_workload(name)
    module = workload.fresh_module()
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module, workload.failing_env(1),
                      tracer=encoder).run()
    trace = decode(encoder.buffer)
    result = ShepherdedSymex(module, trace, run.failure,
                             work_limit=workload.work_limit).run()
    return result.stall


@pytest.mark.benchmark(group="offline-cost")
def test_selection_latency(benchmark):
    """Key-data-value selection on a real first-occurrence stall."""
    stall = _stall_for("sqlite-7be932d")
    assert stall is not None
    plan = benchmark(select_key_values, stall)
    assert plan.items


@pytest.mark.benchmark(group="offline-cost")
def test_offline_cost_summary(benchmark, save_artifact):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for row in result.rows:
        rows.append([row.name, row.max_graph_nodes,
                     f"{row.symbex_wall_seconds:.2f} s",
                     f"{row.symbex_modelled_seconds:.1f} s",
                     row.recorded_bytes])
    table = render_table(
        ["Failure", "graph nodes", "symbex wall", "symbex modelled",
         "recorded bytes"], rows,
        "Offline analysis cost (paper: <=40K nodes, <=15s selection, "
        "avg 19 min symbex)")
    save_artifact("offline_cost", table)
    assert result.max_graph_nodes < 40_000
    total_wall = sum(r.symbex_wall_seconds for r in result.rows)
    assert total_wall < 120  # the whole suite stays laptop-scale
