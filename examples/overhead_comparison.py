#!/usr/bin/env python3
"""Monitoring overhead: ER's always-on tracing vs full record/replay.

Runs one application's performance benchmark under three monitors —
nothing, ER (PT-style control-flow tracing), and rr-style full
record/replay — and prints the modelled overheads, plus what changes
when the last reconstruction iteration's ``ptwrite``s are deployed.

Run:  python examples/overhead_comparison.py [workload-name]
"""

import sys

from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.interpreter import Interpreter
from repro.trace import OverheadModel, PTEncoder, RingBuffer
from repro.workloads import get_workload, workload_names


def measure(module, env_factory, runs=10):
    model = OverheadModel(seed=1)
    er, rr = [], []
    for i in range(runs):
        encoder = PTEncoder(RingBuffer())
        run = Interpreter(module, env_factory(i), tracer=encoder).run()
        assert run.failure is None
        er.append(model.er_sample(run, encoder.bytes_emitted).overhead)
        rr.append(model.rr_sample(run).overhead)
    return sum(er) / runs, sum(rr) / runs, run


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "sqlite-7be932d"
    if name not in workload_names():
        raise SystemExit(f"unknown workload; pick one of {workload_names()}")
    workload = get_workload(name)

    er_mean, rr_mean, run = measure(workload.fresh_module(),
                                    workload.benign_env)
    print(f"benchmark: {workload.bench_name} on {workload.app}")
    print(f"  instructions / run : {run.instr_count}")
    print(f"  ER (PT tracing)    : {er_mean * 100:6.2f}%   "
          "(paper: avg 0.3%)")
    print(f"  rr (record/replay) : {rr_mean * 100:6.1f}%   "
          "(paper: avg 48.0%)")

    print("\nreconstructing the failure to get the last-iteration "
          "instrumentation ...")
    er_loop = ExecutionReconstructor(workload.fresh_module(),
                                     work_limit=workload.work_limit)
    report = er_loop.reconstruct(ProductionSite(workload.failing_env))
    recorded = [i for it in report.iterations for i in it.recorded_items]
    print(f"  {report.occurrences} occurrences; recorded values: "
          f"{[item.register for item in recorded]}")

    er_last, _, run_last = measure(report.final_module,
                                   workload.benign_env, runs=4)
    print(f"  ER while recording : {er_last * 100:6.2f}%   "
          f"({run_last.ptwrite_count} ptwrites/run — transient, removed "
          "after the test case is generated)")


if __name__ == "__main__":
    main()
