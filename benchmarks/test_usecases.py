"""Benchmark: the §2.4 use-case pipeline — forensics + seeded fuzzing."""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.evaluation.formatting import render_table
from repro.usecases import CoverageFuzzer
from repro.workloads import get_workload

TARGETS = [("libpng-2004-0597", "png"), ("matrixssl-2014-1569", "tls"),
           ("objdump-2018-6323", "obj")]


@pytest.mark.benchmark(group="usecases")
def test_seeded_fuzzing(benchmark, save_artifact):
    def run():
        rows = []
        for name, stream in TARGETS:
            workload = get_workload(name)
            er = ExecutionReconstructor(workload.fresh_module(),
                                        work_limit=workload.work_limit,
                                        max_occurrences=workload
                                        .max_occurrences)
            report = er.reconstruct(ProductionSite(workload.failing_env))
            seeded = CoverageFuzzer(workload.fresh_module(), stream,
                                    seed=7)
            seeded.add_seed(report.test_case.streams[stream])
            s = seeded.run(budget=200)
            blind = CoverageFuzzer(workload.fresh_module(), stream,
                                   seed=7)
            b = blind.run(budget=200)
            rows.append((name, s.coverage_points, s.crash_count,
                         s.first_crash_at, b.coverage_points,
                         b.crash_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["Failure", "seeded cov", "seeded crashes", "first crash",
         "blind cov", "blind crashes"],
        [list(r) for r in rows],
        "Use case — fuzzing seeded with ER test cases vs from scratch "
        "(200 executions)")
    save_artifact("usecase_fuzzing", table)
    for name, s_cov, s_crashes, first, b_cov, b_crashes in rows:
        assert s_crashes >= 1 and first == 1
        assert s_cov >= b_cov
