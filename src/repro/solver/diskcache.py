"""Persistent, cross-process solver-query cache (the disk tier).

The in-memory :class:`~repro.solver.cache.SolverCache` dies with its
session; every gap-recovery shard, batch worker, and successive
``repro reproduce``/``repro bench`` invocation re-solves the same
queries from scratch.  This tier fixes that: query results are keyed on
*sets of canonical term digests* (:func:`~repro.solver.terms.term_digest`
over the injective serialization) and appended to a shared store, so
any process pointed at the same ``--cache-dir`` warm-starts from every
previous process's work.

Storage is a **segmented JSONL store** (:mod:`repro.solver.segments`):
an active append segment plus sealed immutable ones named in a tiny
manifest.  Appends happen under an advisory ``flock`` on a dedicated
lock file (single-line writes, so even lockless platforms only risk a
torn *last* line, which the reader skips); when the active segment
crosses ``seal_bytes`` it is sealed by one atomic manifest swap and the
sealed segments are compacted in place — duplicates, tombstoned
entries, and subsumed infeasible sets dropped — without any concurrent
reader or writer observing a torn state.  ``repro cache
stats|compact|merge|verify`` drive the same machinery from the command
line, and :func:`~repro.solver.segments.merge_caches` unions two
machines' stores.  There is no trust requirement; the store is a
cache, not a database, and deleting it is always safe.

Lookup answers three ways, strongest first:

1. **Exact** — the digest set was stored verbatim.
2. **Subset-infeasible** — some stored *infeasible* set is a subset of
   the query: every model of the query would satisfy the subset too, so
   the query is infeasible.
3. **Superset-model** — some stored *feasible* superset has a recorded
   model: that model satisfies every query constraint, so the query is
   feasible (and the model is returned for warm starts / direct reuse).

All three are sound by construction given the injective serialization;
callers that re-use a superset model for ``solve`` re-verify it against
the live constraints anyway, so even a corrupted file cannot produce a
wrong *model* — only a wrong feasibility verdict, which the poisoned
cache tests pin as impossible for well-formed files.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
from collections import OrderedDict, deque
from typing import (Deque, Dict, FrozenSet, Iterable, Optional, Set,
                    Tuple, Union)

from . import segments
from .segments import (AUTO_COMPACT_MIN_SEGMENTS, DEFAULT_SEAL_BYTES,
                       FileLock, SegmentLayout)

logger = logging.getLogger(__name__)

__all__ = ["DiskSolverCache"]

#: default file name inside a ``--cache-dir``
CACHE_FILE = "solver-cache.jsonl"

#: bounded scan windows for the subsumption passes (newest entries win;
#: exact lookups are unbounded dict hits and need no window)
MAX_INFEASIBLE_SCAN = 1024
MAX_MODEL_SCAN = 256

#: sentinel forcing the first refresh through the manifest path
_UNSET = object()


class DiskSolverCache:
    """Segmented, advisory-locked, digest-keyed solver-result store.

    ``path`` may be a directory (the conventional ``--cache-dir``; the
    store lives inside it) or a ``*.jsonl`` file path.  Instances are
    cheap; every shard/worker opens its own against the shared store.

    ``seal_bytes`` caps the active append segment: crossing it seals
    the segment (one atomic manifest swap) and, with ``auto_compact``,
    compacts the sealed segments in place.  Concurrent handles detect
    the manifest generation change on their next refresh and rebuild —
    answering every previously-answerable query identically, because
    compaction only drops redundant entries.
    """

    def __init__(self, path: Union[str, pathlib.Path],
                 max_entries: int = 65536,
                 seal_bytes: int = DEFAULT_SEAL_BYTES,
                 auto_compact: bool = True):
        path = pathlib.Path(path)
        if path.suffix != ".jsonl":
            path.mkdir(parents=True, exist_ok=True)
            path = path / CACHE_FILE
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self._layout = SegmentLayout(path)
        self._lock = FileLock(self._layout.lock_path)
        #: the current *active* segment (kept up to date across seals;
        #: starts as the legacy single-file path)
        self.path = path
        self.max_entries = max_entries
        self.seal_bytes = seal_bytes
        self.auto_compact = auto_compact
        #: digest set -> feasible? (exact tier)
        self._feasible: "OrderedDict[FrozenSet[str], bool]" = OrderedDict()
        #: infeasible digest sets, newest last (subset-subsumption tier)
        self._infeasible_sets: Deque[FrozenSet[str]] = deque(
            maxlen=MAX_INFEASIBLE_SCAN)
        #: (feasible digest set, model) pairs (superset-model tier)
        self._models: Deque[Tuple[FrozenSet[str], Dict[str, int]]] = deque(
            maxlen=MAX_MODEL_SCAN)
        #: (digest set, term digest, limit) -> (values, complete,
        #: reason, witnesses) — persisted ``feasible_values`` results;
        #: witnesses are re-verified by the loader, like models
        self._values: "OrderedDict[Tuple[FrozenSet[str], str, int], Tuple]" \
            = OrderedDict()
        self._offset = 0
        #: lines this handle appended past a torn tail: already indexed
        #: locally, so the eventual re-read of that region skips them
        #: instead of double-indexing (see ``_absorb_new_lines``)
        self._pending: Set[str] = set()
        self._generation = -1
        self._manifest_sig = _UNSET
        #: lookups answered by this handle, split per answer tier
        self.hits_exact = 0
        self.hits_subsume = 0
        self.hits_values = 0
        self.appended = 0
        self.refresh()

    @property
    def hits(self) -> int:
        """All lookups answered (every tier) — the historical counter."""
        return self.hits_exact + self.hits_subsume + self.hits_values

    # -- file plumbing ---------------------------------------------------

    def refresh(self) -> int:
        """Index entries appended since the last read (any process).

        Returns the number of new entries absorbed.  Cheap when nothing
        changed: one ``stat`` of the manifest (its inode changes on
        every seal/compaction) and one of the active segment.
        """
        if self._layout.manifest_stat() == self._manifest_sig:
            try:
                size = os.stat(self.path).st_size
            except OSError:
                return 0
            if size <= self._offset:
                return 0
        with self._lock.acquire(exclusive=False):
            return self._refresh_locked()

    def _refresh_locked(self) -> int:
        """Absorb manifest changes and new active lines (lock held)."""
        absorbed = 0
        sig = self._layout.manifest_stat()
        if sig != self._manifest_sig:
            manifest = self._layout.load_manifest()
            if manifest.generation != self._generation:
                absorbed += self._rebuild(manifest)
            self._manifest_sig = sig
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                absorbed += self._absorb_new_lines(fh)
        except OSError:
            pass  # freshly-sealed store: active segment not created yet
        return absorbed

    def _rebuild(self, manifest) -> int:
        """Re-index from scratch after a seal/compaction/merge install.

        The sealed segments changed identity, so incremental offsets
        are meaningless; the indexes are cleared and every sealed
        segment is replayed in manifest order, then the (new) active
        segment picks up incremental absorption at offset zero.  Hit
        counters survive — only the view of the file changes.
        """
        self._feasible.clear()
        self._infeasible_sets.clear()
        self._models.clear()
        self._values.clear()
        self._pending.clear()
        self._offset = 0
        self._generation = manifest.generation
        self.path = self._layout.file(manifest.active
                                      or self._layout.default_active)
        absorbed = 0
        for name in manifest.segments:
            for line in segments.iter_lines(self._layout.file(name)):
                entry = segments.parse_entry(line)
                if entry is None:
                    logger.warning("skipping corrupt cache line in %s",
                                   name)
                    continue
                self._absorb(entry)
                absorbed += 1
        return absorbed

    def _absorb_new_lines(self, fh) -> int:
        """Index complete lines between ``self._offset`` and EOF.

        The caller holds the lock.  Stops at a torn (newline-less) tail
        without advancing past it, so it is re-read once complete.
        Lines this handle itself appended past a torn tail are already
        indexed (``_pending``) and are skipped, not double-absorbed —
        the old behavior duplicated them into the bounded
        infeasible/model scan windows and double-counted stats.
        """
        fh.seek(self._offset)
        absorbed = 0
        for line in fh:
            if not line.endswith("\n"):
                break  # torn tail: re-read it next refresh
            self._offset += len(line.encode("utf-8"))
            if line in self._pending:
                self._pending.discard(line)
                continue  # our own line, indexed at append time
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                logger.warning("skipping corrupt cache line in %s",
                               self.path)
                continue
            self._absorb(entry)
            absorbed += 1
        return absorbed

    def _absorb(self, entry: Dict) -> None:
        key = frozenset(entry.get("k", ()))
        if not key:
            return
        if entry.get("x"):  # tombstone: erase every trace of the key
            self._feasible.pop(key, None)
            if key in self._infeasible_sets:
                self._infeasible_sets = deque(
                    (stored for stored in self._infeasible_sets
                     if stored != key), maxlen=MAX_INFEASIBLE_SCAN)
            self._models = deque(
                ((stored, model) for stored, model in self._models
                 if stored != key), maxlen=MAX_MODEL_SCAN)
            for index in [i for i in self._values if i[0] == key]:
                del self._values[index]
            return
        if "t" in entry:  # value-enumeration entry, not a verdict
            self._absorb_values(key, entry)
            return
        feasible = bool(entry.get("f"))
        self._feasible[key] = feasible
        self._feasible.move_to_end(key)
        while len(self._feasible) > self.max_entries:
            self._feasible.popitem(last=False)
        if not feasible and key not in self._infeasible_sets:
            # replayed duplicates (merge unions, pre-compaction files)
            # must not burn bounded scan-window slots twice
            self._infeasible_sets.append(key)
        model = entry.get("m")
        if feasible and model:
            pair = (key, {str(n): int(v) for n, v in model.items()})
            if pair not in self._models:
                self._models.append(pair)

    def _absorb_values(self, key: FrozenSet[str], entry: Dict) -> None:
        try:
            index = (key, str(entry["t"]), int(entry["l"]))
            values = [int(v) for v in entry.get("v", ())]
            witnesses = [{str(n): int(v) for n, v in w.items()}
                         for w in entry.get("w", ())]
        except (KeyError, TypeError, ValueError):
            logger.warning("skipping malformed value entry in %s", self.path)
            return
        self._values[index] = (values, bool(entry.get("c")),
                               entry.get("r"), witnesses)
        self._values.move_to_end(index)
        while len(self._values) > self.max_entries:
            self._values.popitem(last=False)

    # -- writing ---------------------------------------------------------

    def _append(self, line: str, already) -> bool:
        """Append one line under the exclusive lock; maybe seal/compact.

        ``already()`` re-checks (after absorbing other writers' lines)
        whether the entry became redundant while we waited for the
        lock.  Returns True when the line was written.

        If a torn tail sits between our offset and EOF — a crashed
        writer's fragment — the fragment is first terminated with a
        newline so our line stays parseable on its own (previously the
        two concatenated into one corrupt line and the entry was lost
        to every other process), and the line is remembered in
        ``_pending`` so the eventual re-read of that region does not
        double-index it.
        """
        wrote = False
        size = 0
        try:
            with self._lock.acquire(exclusive=True):
                self._refresh_locked()
                if already():
                    return False
                with open(self.path, "a+", encoding="utf-8") as fh:
                    end = fh.seek(0, os.SEEK_END)
                    if end != self._offset:
                        fh.write("\n" + line)
                        self._pending.add(line)
                    else:
                        fh.write(line)
                    fh.flush()
                    if end == self._offset:
                        self._offset = fh.tell()
                    size = fh.tell()
                wrote = True
                if size >= self.seal_bytes:
                    self._seal_locked()
        except OSError as exc:
            logger.warning("disk cache append failed (%s); continuing "
                           "without persistence", exc)
            return False
        if wrote:
            self.appended += 1
        return wrote

    def _seal_locked(self) -> None:
        """Seal the active segment; auto-compact (exclusive lock held).

        Everything in the just-sealed segment is already in this
        handle's index, so no rebuild is needed here — the handle
        adopts the new manifest generation and starts the fresh active
        segment at offset zero.  Other handles rebuild on their next
        refresh when they see the generation change.
        """
        manifest = self._layout.load_manifest()
        manifest = segments.seal_locked(self._layout, manifest)
        if (self.auto_compact
                and len(manifest.segments) >= AUTO_COMPACT_MIN_SEGMENTS):
            manifest, stats = segments.compact_locked(self._layout,
                                                      manifest)
            logger.info("auto-compacted %s: %d -> %d entries",
                        self._layout.directory, stats.entries_in,
                        stats.entries_out)
        self._generation = manifest.generation
        self.path = self._layout.file(manifest.active)
        self._offset = 0
        self._pending.clear()
        self._manifest_sig = self._layout.manifest_stat()

    def store(self, digests: Iterable[str], feasible: bool,
              model: Optional[Dict[str, int]] = None) -> None:
        """Append one result (and index it locally).

        Duplicate appends are harmless — later lines win on replay, and
        results for one key never disagree (only proven verdicts are
        stored; timeouts never reach this tier).
        """
        key = frozenset(digests)
        if not key or self._feasible.get(key) is not None:
            return  # empty query or already persisted: nothing to add
        entry = {"k": sorted(key), "f": bool(feasible)}
        if feasible and model:
            # str() on write: the readers (_absorb here, JSON keys on
            # replay) only ever see string names, so a non-string term
            # name must not produce a differently-keyed local index
            entry["m"] = {str(name): int(value)
                          for name, value in model.items()}
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        if self._append(
                line, lambda: self._feasible.get(key) is not None):
            self._absorb(entry)

    def store_values(self, digests: Iterable[str], term_digest: str,
                     limit: int, values: Iterable[int], complete: bool,
                     reason: Optional[str],
                     witnesses: Iterable[Dict[str, int]]) -> None:
        """Append one ``feasible_values`` enumeration.

        Keyed like other entries (the constraint-set digests) plus the
        enumerated term's digest and the request limit.  Witness models
        — one per value — are stored alongside so loaders can re-verify
        each value against their live constraints; a file that lies
        about a value therefore costs a wasted check, never a wrong
        enumeration.
        """
        key = frozenset(digests)
        # normalize on write exactly as _absorb normalizes on read
        # (str() on the term digest and every witness-model key): a
        # non-string term name must round-trip to the same index and
        # witness mapping a replaying reader builds, or the local index
        # diverges from the persisted one
        index = (key, str(term_digest), int(limit))
        if not key or index in self._values:
            return
        entry = {"k": sorted(key), "t": str(term_digest),
                 "l": int(limit),
                 "v": [int(v) for v in values], "c": bool(complete),
                 "w": [{str(n): int(v) for n, v in w.items()}
                       for w in witnesses]}
        if reason is not None:
            entry["r"] = reason
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        if self._append(line, lambda: index in self._values):
            self._absorb(entry)

    def tombstone(self, digests: Iterable[str]) -> None:
        """Erase a key from the store (applied on replay, compacted
        away).

        The tombstone line makes every earlier entry for the key
        invisible to readers; the next compaction physically drops
        both.  Used to retract entries that should no longer be served
        (e.g. operator intervention via future tooling); soundness
        never requires it.
        """
        key = frozenset(digests)
        if not key:
            return
        entry = {"k": sorted(key), "x": True}
        line = json.dumps(entry, separators=(",", ":")) + "\n"

        def nothing_to_erase():
            return (self._feasible.get(key) is None
                    and not any(i[0] == key for i in self._values))

        if self._append(line, nothing_to_erase):
            self._absorb(entry)

    # -- lookup ----------------------------------------------------------

    def lookup(self, digests: Iterable[str]):
        """Answer a feasibility query from the store, strongest tier
        first.

        Returns ``(feasible, model_or_None, kind)`` where ``kind`` is
        ``"exact"`` or ``"subsume"`` — or ``None`` on a miss.  The model
        is only ever returned for *feasible* answers.
        """
        key = frozenset(digests)
        if not key:
            return None
        self.refresh()
        exact = self._feasible.get(key)
        if exact is not None:
            self.hits_exact += 1
            model = None
            if exact:
                for stored_key, stored_model in reversed(self._models):
                    if stored_key == key:
                        model = dict(stored_model)
                        break
            return exact, model, "exact"
        for infeasible in reversed(self._infeasible_sets):
            if infeasible <= key:
                self.hits_subsume += 1
                return False, None, "subsume"
        for stored_key, stored_model in reversed(self._models):
            if stored_key >= key:
                self.hits_subsume += 1
                return True, dict(stored_model), "subsume"
        return None

    def lookup_values(self, digests: Iterable[str], term_digest: str,
                      limit: int):
        """Exact-key enumeration lookup.

        Returns ``(values, complete, reason, witnesses)`` or ``None``.
        The caller re-verifies every witness before trusting the result.
        """
        key = frozenset(digests)
        if not key:
            return None
        self.refresh()
        index = (key, str(term_digest), int(limit))
        found = self._values.get(index)
        if found is None:
            return None
        self._values.move_to_end(index)
        self.hits_values += 1
        values, complete, reason, witnesses = found
        return (list(values), complete, reason,
                [dict(w) for w in witnesses])

    # -- maintenance -----------------------------------------------------

    def compact(self) -> Dict:
        """Seal + compact this store now (the ``repro cache compact``
        path); the handle adopts the result immediately."""
        with self._lock.acquire(exclusive=True):
            manifest = self._layout.load_manifest()
            manifest = segments.seal_locked(self._layout, manifest)
            manifest, stats = segments.compact_locked(self._layout,
                                                      manifest)
            self._refresh_locked()
        return stats.to_dict()

    # -- stats -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._feasible),
            "infeasible_sets": len(self._infeasible_sets),
            "models": len(self._models),
            "value_entries": len(self._values),
            "hits": self.hits,
            "hits_exact": self.hits_exact,
            "hits_subsume": self.hits_subsume,
            "hits_values": self.hits_values,
            "appended": self.appended,
        }

    def __len__(self) -> int:
        return len(self._feasible)

    def __repr__(self):
        return (f"DiskSolverCache({str(self.path)!r}, "
                f"{len(self._feasible)} entries)")
