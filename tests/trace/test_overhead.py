"""Overhead model: relative costs and orderings, not absolute numbers."""

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.trace.encoder import PTEncoder
from repro.trace.overhead import OverheadModel
from repro.trace.ringbuffer import RingBuffer


def _run(io_bytes=64, compute=500, quantum=50):
    """A run with configurable I/O density."""
    b = ModuleBuilder("oh")
    f = b.function("main", [])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("io")
    f.block("io")
    done = f.cmp("uge", "%i", io_bytes)
    f.br(done, "spin", "rd")
    f.block("rd")
    f.input("stdin", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("io")
    f.block("spin")
    f.const(0, dest="%j")
    f.jmp("loop")
    f.block("loop")
    fin = f.cmp("uge", "%j", compute)
    f.br(fin, "out", "body")
    f.block("body")
    f.add("%j", 1, dest="%j")
    f.jmp("loop")
    f.block("out")
    f.ret(0)
    enc = PTEncoder(RingBuffer())
    env = Environment({"stdin": bytes(io_bytes)}, quantum=quantum)
    result = Interpreter(b.build(), env, tracer=enc).run()
    return result, enc


class TestOverheadModel:
    def test_er_far_cheaper_than_rr(self):
        run, enc = _run()
        model = OverheadModel(noise=0.0)
        er = model.er_sample(run, enc.bytes_emitted).overhead
        rr = model.rr_sample(run).overhead
        assert 0 < er < 0.05 < rr

    def test_er_overhead_scales_with_trace_bytes(self):
        run, enc = _run()
        model = OverheadModel(noise=0.0)
        small = model.er_sample(run, 100).overhead
        large = model.er_sample(run, 10_000).overhead
        assert large > small

    def test_rr_overhead_scales_with_io_density(self):
        dense_run, _ = _run(io_bytes=256, compute=100)
        sparse_run, _ = _run(io_bytes=16, compute=4000)
        model = OverheadModel(noise=0.0)
        assert (model.rr_sample(dense_run).overhead
                > model.rr_sample(sparse_run).overhead)

    def test_noise_zero_is_deterministic(self):
        run, enc = _run()
        model = OverheadModel(noise=0.0)
        a = model.er_sample(run, enc.bytes_emitted).overhead
        b = model.er_sample(run, enc.bytes_emitted).overhead
        assert a == b

    def test_seeded_noise_reproducible(self):
        run, enc = _run()
        a = OverheadModel(seed=42).er_sample(run, 100).overhead
        b = OverheadModel(seed=42).er_sample(run, 100).overhead
        assert a == b

    def test_ptwrites_add_cost(self):
        run, enc = _run()
        model = OverheadModel(noise=0.0)
        without = model.er_sample(run, enc.bytes_emitted).overhead
        run.ptwrite_count = 500
        with_ptw = model.er_sample(run, enc.bytes_emitted).overhead
        assert with_ptw > without

    def test_single_thread_pays_no_chunk_cost(self):
        run, _ = _run(quantum=5)   # many chunks, one thread
        model = OverheadModel(noise=0.0)
        base = model.rr_sample(run).overhead
        run.chunk_count *= 100
        assert model.rr_sample(run).overhead == base
