"""Three-valued evaluation of terms under partial assignments.

``tv_eval(term, env, budget)`` returns the concrete value of ``term``
when every relevant input variable is assigned in ``env``, or ``None``
when the value is still unknown.  Every node visited charges the budget;
walking a symbolic write chain charges per store, and an unknown index
into an array charges proportionally to the object size.  These charges
are the cost model that makes the paper's two complexity sources (chain
length, object size) produce genuine solver timeouts.

The evaluator is *iterative* (explicit work stack): symbolic values in
loop-heavy programs grow into terms tens of thousands of nodes deep, far
past Python's recursion limit.  ``ite`` only evaluates its taken branch;
``read`` walks its store chain lazily.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..ir.ops import apply_binop, apply_cmp
from ..ir.types import mask, sign_extend
from .budget import Budget
from .terms import BINOP_OPS, CMP_OPS, Term

#: Charge per store node walked in a chain.
CHAIN_STEP_COST = 2
#: Charge for an unresolved (unknown-index) array access, per this many
#: bytes of the object: bigger objects -> more case splitting.
OBJECT_BYTES_PER_UNIT = 16

Assignment = Dict[str, int]

_UNKNOWN = object()  # sentinel in the memo: evaluated, value unknown


def tv_eval(term: Term, env: Assignment, budget: Budget) -> Optional[int]:
    """Evaluate ``term``; None means 'unknown under this partial env'."""
    memo: Dict[int, object] = {}
    _run(term, env, budget, memo)
    value = memo[id(term)]
    return None if value is _UNKNOWN else value


def _lookup(memo, node: Term):
    return memo.get(id(node), None)


def _run(root: Term, env: Assignment, budget: Budget,
         memo: Dict[int, object]) -> None:
    # stack entries: (node, phase, state)
    #   phase 0: first visit (charge, dispatch leaves / push children)
    #   phase 1: children evaluated -> compute (ite: cond ready;
    #            read: index ready / chain-walk re-entry)
    #   phase 2: ite taken-branch ready / read store-value ready
    stack: List[Tuple[Term, int, object]] = [(root, 0, None)]
    while stack:
        node, phase, state = stack.pop()
        key = id(node)
        if phase == 0 and key in memo:
            continue
        op = node.op

        if phase == 0:
            budget.charge(1)
            if op == "const":
                memo[key] = node.args[0]
                continue
            if op == "var":
                value = env.get(node.args[0])
                memo[key] = _UNKNOWN if value is None else value
                continue
            if op == "array":
                memo[key] = _UNKNOWN  # arrays are read through 'read'
                continue
            if op == "ite":
                stack.append((node, 1, None))
                stack.append((node.args[0], 0, None))
                continue
            if op == "read":
                stack.append((node, 1, node.args[0]))
                stack.append((node.args[1], 0, None))
                continue
            # generic: evaluate all Term children, then compute
            stack.append((node, 1, None))
            for arg in node.args:
                if isinstance(arg, Term):
                    stack.append((arg, 0, None))
            continue

        if op == "ite":
            if phase == 1:
                cond = memo[id(node.args[0])]
                if cond is _UNKNOWN:
                    memo[key] = _UNKNOWN
                    continue
                chosen = node.args[1] if cond else node.args[2]
                stack.append((node, 2, chosen))
                stack.append((chosen, 0, None))
            else:
                memo[key] = memo[id(state)]
            continue

        if op == "read":
            if phase == 2:
                memo[key] = memo[id(state)]
                continue
            # phase 1: state is the current chain node to inspect
            index_value = memo[id(node.args[1])]
            if index_value is _UNKNOWN:
                budget.charge(max(1, node.args[0].width
                                  // OBJECT_BYTES_PER_UNIT))
                memo[key] = _UNKNOWN
                continue
            walk = state
            while walk.op == "store":
                budget.charge(CHAIN_STEP_COST)
                st_index, st_value = walk.args[1], walk.args[2]
                st_idx = _lookup(memo, st_index)
                if st_idx is None:
                    # need this store's index first; re-enter afterwards
                    stack.append((node, 1, walk))
                    stack.append((st_index, 0, None))
                    break
                if st_idx is _UNKNOWN:
                    budget.charge(max(1, walk.width
                                      // OBJECT_BYTES_PER_UNIT))
                    memo[key] = _UNKNOWN
                    break
                if st_idx == index_value:
                    stack.append((node, 2, st_value))
                    stack.append((st_value, 0, None))
                    break
                walk = walk.args[0]
            else:
                data = walk.args[1]
                if 0 <= index_value < len(data):
                    memo[key] = data[index_value]
                else:
                    memo[key] = _UNKNOWN  # OOB: infeasible on this path
            continue

        # generic compute (phase 1)
        memo[key] = _compute(node, memo)


def _compute(node: Term, memo) -> object:
    op = node.op
    if op in BINOP_OPS:
        lhs, rhs, opwidth = node.args
        lval = memo[id(lhs)]
        rval = memo[id(rhs)]
        lvalue = None if lval is _UNKNOWN else lval
        rvalue = None if rval is _UNKNOWN else rval
        if op == "and" and (lvalue == 0 or rvalue == 0):
            return 0
        if op == "mul" and (lvalue == 0 or rvalue == 0):
            return 0
        if lvalue is None or rvalue is None:
            return _UNKNOWN
        if op in ("udiv", "sdiv", "urem", "srem") and \
                mask(rvalue, opwidth) == 0:
            # division by zero cannot occur on the recorded path; a
            # candidate assignment that produces it is simply infeasible.
            return _UNKNOWN
        return apply_binop(op, lvalue, rvalue, opwidth)
    if op in CMP_OPS:
        lhs, rhs, opwidth = node.args
        lval = memo[id(lhs)]
        rval = memo[id(rhs)]
        if lval is _UNKNOWN or rval is _UNKNOWN:
            return _UNKNOWN
        return apply_cmp(op, lval, rval, opwidth)
    if op == "trunc":
        value = memo[id(node.args[0])]
        return _UNKNOWN if value is _UNKNOWN else mask(value, node.args[1])
    if op == "sext":
        value = memo[id(node.args[0])]
        return _UNKNOWN if value is _UNKNOWN \
            else sign_extend(value, node.args[1])
    if op == "concat":
        total = 0
        for i, part in enumerate(node.args):
            value = memo[id(part)]
            if value is _UNKNOWN:
                return _UNKNOWN
            total |= mask(value, 8) << (8 * i)
        return total
    if op == "extract":
        value = memo[id(node.args[0])]
        if value is _UNKNOWN:
            return _UNKNOWN
        return (value >> (8 * node.args[1])) & 0xFF
    if op == "store":
        return _UNKNOWN  # arrays are read through 'read'
    raise SolverError(f"cannot evaluate {op!r}")
