"""Budgeted constraint solver over bitvector/array terms.

The solving strategy is propagation plus candidate-guided backtracking
over the symbolic input bytes:

1. **Unit propagation** — constraints of the form ``var == const`` (or
   uniquely invertible chains such as ``(var + k) == c``,
   ``concat(bytes) == c``) assign variables directly.
2. **Search** — remaining free variables are assigned depth-first in
   order of first appearance; at each depth, every constraint whose
   variables are now all assigned is checked with the three-valued
   evaluator.  Candidate values derived from the constraints (equality
   inversions, table-content scans) are tried before the exhaustive
   byte range.

Every evaluation charges the shared :class:`~repro.solver.budget.Budget`;
exceeding it raises :class:`~repro.errors.SolverTimeout` — ER's stall.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..errors import SearchCancelled, SolverTimeout, UnsatError
from ..ir.types import mask
from .budget import DEFAULT_WORK_LIMIT, Budget
from .cache import SolverCache, ValueEnumeration
from .evaluator import tv_eval
from .model import Model
from .terms import (BINOP_OPS, CMP_OPS, Term, bool_term, cmp, const,
                    iter_nodes)

#: Give up deriving candidates from arrays bigger than this.
_MAX_SCAN_BYTES = 4096
#: Ceiling on candidate values tried per variable (bytes: full range).
_MAX_CANDIDATES = 256
#: Model probes may spend at most this fraction of the remaining budget,
#: so a failed probe can never turn a would-have-succeeded query into a
#: timeout.
_PROBE_BUDGET_DIVISOR = 4
#: "No speculative depth referenced" sentinel (deeper than any DFS).
_NO_FLOOR = 1 << 30

logger = logging.getLogger(__name__)


@contextmanager
def _metered(kind: str, budget: Budget):
    """Account one top-level solver query: work spent, outcome, timeouts.

    Work is charged as the budget delta so queries sharing one budget
    (e.g. the enumeration loop of ``feasible_values``) are attributed
    exactly once.  Per-outcome counters branch, but the query count and
    the work histogram settle in one ``finally`` — every exit path,
    including a portfolio cancellation, is attributed exactly once.
    """
    tel = telemetry.get()
    before = budget.spent
    try:
        with tel.span("solver.query", kind=kind):
            yield
    except SolverTimeout:
        tel.count("solver.timeouts")
        logger.debug("solver %s query timed out after %d work (%s)",
                     kind, budget.spent - before, budget.context)
        raise
    except UnsatError:
        tel.count("solver.unsat")
        raise
    except SearchCancelled:
        tel.count("solver.cancelled")
        logger.debug("solver %s query cancelled after %d work (%s)",
                     kind, budget.spent - before, budget.context)
        raise
    finally:
        tel.count(f"solver.queries.{kind}")
        tel.histogram("solver.work_per_query").record(budget.spent - before)


class Solver:
    """Reusable solver facade; each query gets its own budget by default.

    With a :class:`~repro.solver.cache.SolverCache` attached (one per
    symex session, or one per reconstruction when shared across
    iterations), repeated queries over the same normalized constraint
    set are memoized, recent models answer feasibility checks without
    searching, and the latest model warm-starts every search's candidate
    ordering.  Without a cache, behaviour is the uncached baseline.
    """

    def __init__(self, work_limit: int = DEFAULT_WORK_LIMIT,
                 cache: Optional[SolverCache] = None,
                 portfolio: int = 1):
        self.work_limit = work_limit
        self.cache = cache
        # function-level import: backend subclasses _Search from this
        # module, so importing it at module scope would be circular
        from .backend import make_backends
        #: search strategies, reference first; >1 races them per query
        self.backends = make_backends(portfolio)

    def solve(self, constraints: Sequence[Term],
              budget: Optional[Budget] = None) -> Model:
        """Find a model or raise UnsatError / SolverTimeout."""
        budget = budget if budget is not None else Budget(self.work_limit)
        with _metered("solve", budget):
            return self._solve(constraints, budget, count=True)

    def _solve(self, constraints: Sequence[Term], budget: Budget,
               count: bool = False) -> Model:
        """``count=True`` (the public ``solve`` entry) attributes the
        cache outcome to the hit/miss counters; internal callers
        (``is_feasible``'s search, enumeration) account at their own
        query granularity instead."""
        cache = self.cache
        key = None
        if cache is not None:
            key = SolverCache.key(constraints)
            found = cache.superset_model(key)
            if found is not None:
                candidate, source = found
                if self._verify_model(constraints, candidate, budget):
                    # a model cached for this key or a superset of it
                    # satisfies all of these constraints — verified
                    # above, so even a stale/corrupt disk tier cannot
                    # smuggle in a bad model
                    cache.subsumption_hits += 1
                    telemetry.count("solver.cache.subsumption_hits")
                    if source.startswith("disk"):
                        telemetry.count("solver.cache.disk_hits")
                        if source == "disk-exact":
                            telemetry.count(
                                "solver.cache.disk_hits_exact")
                        else:
                            telemetry.count(
                                "solver.cache.disk_hits_subsume")
                    if count:
                        cache.hits += 1
                        telemetry.count("solver.cache.hits")
                        telemetry.event("solver.cache_hit", query="solve",
                                        tier=source)
                    cache.record_model(candidate, key=key)
                    return Model(candidate)
            if count:
                cache.misses += 1
                telemetry.count("solver.cache.misses")
        hints = cache.hints() if cache is not None else None
        session = cache.assumptions if cache is not None else None
        retained = None
        if session is not None:
            reused = session.align(constraints)
            telemetry.count("solver.incremental.queries")
            telemetry.count("solver.incremental.reused_terms", reused)
            telemetry.histogram(
                "solver.incremental.reused_constraints").record(reused)
            retained = session.retained()
        try:
            if len(self.backends) == 1:
                model, snapshot = self.backends[0].search(
                    constraints, budget, hints=hints, retained=retained)
            else:
                from .portfolio import race  # lazy: threading machinery
                model, snapshot = race(self.backends, constraints, budget,
                                       hints=hints, retained=retained)
        except (UnsatError, SolverTimeout) as exc:
            # an unsat proof (or even a timed-out search) completed
            # candidate-subtree refutations siblings can reuse; the
            # backend attached its harvest to the exception
            self._retain(session, constraints,
                         getattr(exc, "snapshot", None))
            raise
        self._retain(session, constraints, snapshot)
        if cache is not None:
            cache.record_model(model.assignment, key=key)
        return model

    @staticmethod
    def _retain(session, constraints: Sequence[Term], snapshot) -> None:
        """Feed one search's harvest back into the assumption stack."""
        if session is None or snapshot is None:
            return
        env, env_deps, satisfied, learned, skipped = snapshot
        if skipped:
            telemetry.count("solver.incremental.skipped_candidates",
                            skipped)
        session.extend(constraints, env, env_deps, satisfied, learned)

    def _verify_model(self, constraints: Sequence[Term],
                      assignment: Dict[str, int], budget: Budget) -> bool:
        """One capped three-valued pass: does ``assignment`` satisfy all?

        A failed check charges *nothing*: the cache tier must never turn
        a query that would have succeeded without it into a timeout, so
        only a verification that actually saves the search costs work.
        One evaluation pass is far cheaper than a search, so half the
        remaining budget is a generous cap.
        """
        scratch = Budget(max(1, budget.remaining() // 2),
                         "superset model check")
        try:
            ok = all(tv_eval(c, assignment, scratch) == 1
                     for c in constraints)
        except SolverTimeout:
            return False
        if ok:
            budget.charge(min(scratch.spent, budget.remaining()))
        return ok

    def is_feasible(self, constraints: Sequence[Term],
                    budget: Optional[Budget] = None) -> bool:
        """Satisfiability check; timeouts propagate (they mean 'stall')."""
        budget = budget if budget is not None else Budget(self.work_limit)
        cache = self.cache
        key = None
        if cache is not None:
            key = SolverCache.key(constraints)
            cached = cache.peek_feasible(key)
            if cached is not None:
                cache.hits += 1
                telemetry.count("solver.cache.hits")
                telemetry.event("solver.cache_hit", query="feasible",
                                tier="exact")
                return cached
            subsumed = cache.lookup_subsumed(key)
            if subsumed is not None:
                feasible, source = subsumed
                cache.hits += 1
                telemetry.count("solver.cache.hits")
                telemetry.event("solver.cache_hit", query="feasible",
                                tier=source)
                if source != "disk-exact":
                    telemetry.count("solver.cache.subsumption_hits")
                if source.startswith("disk"):
                    telemetry.count("solver.cache.disk_hits")
                    if source == "disk-exact":
                        telemetry.count("solver.cache.disk_hits_exact")
                    else:
                        telemetry.count("solver.cache.disk_hits_subsume")
                cache.store_feasible(key, feasible)  # promote to exact
                return feasible
            cache.misses += 1
            telemetry.count("solver.cache.misses")
            if self._probe_models(constraints, budget):
                cache.model_probe_hits += 1
                telemetry.count("solver.cache.model_probe_hits")
                telemetry.event("solver.cache_hit", query="feasible",
                                tier="model_probe")
                cache.store_feasible(key, True)
                return True
        with _metered("feasible", budget):
            try:
                self._solve(constraints, budget)
                feasible = True
            except UnsatError:
                feasible = False
        if cache is not None:
            cache.store_feasible(key, feasible)
        return feasible

    def _probe_models(self, constraints: Sequence[Term],
                      budget: Budget) -> bool:
        """Does a recently-found model already satisfy ``constraints``?

        Cost: at most one three-valued evaluation pass per recent model,
        capped at a fraction of the remaining budget (the scratch spend
        is then charged to the real budget, so probe work is accounted
        but can never cause the query to time out on its own).
        """
        scratch = Budget(max(1, budget.remaining() // _PROBE_BUDGET_DIVISOR),
                         "model probe")
        try:
            for env in self.cache.recent_models():
                if all(tv_eval(c, env, scratch) == 1 for c in constraints):
                    budget.charge(scratch.spent)
                    return True
        except SolverTimeout:
            pass  # probe cap reached: fall back to the search
        budget.charge(min(scratch.spent, budget.remaining()))
        return False

    def feasible_values(self, term: Term, constraints: Sequence[Term],
                        limit: int = 8,
                        budget: Optional[Budget] = None) -> ValueEnumeration:
        """Up to ``limit`` distinct concrete values ``term`` may take.

        This is the per-access query ER issues for symbolic memory
        addresses (§3.2): it bounds the set of locations an access may
        touch.  Cost scales with the number of models enumerated and the
        complexity of the constraints — long write chains make each
        enumeration expensive, which is where stalls bite.

        The result is a :class:`ValueEnumeration`: a plain list of
        values plus an explicit ``complete`` flag.  ``complete`` is True
        only when the value set was provably exhausted; otherwise
        ``truncated_reason`` says whether the ``limit`` was hit or a
        model left the term unevaluable (an out-of-bounds read, say) —
        previously such truncation was silent.
        """
        budget = budget if budget is not None else Budget(self.work_limit)
        cache = self.cache
        key = None
        if cache is not None:
            key = SolverCache.key(constraints)
            cached = cache.lookup_values(term, key, limit)
            if cached is not None:
                telemetry.count("solver.cache.hits")
                telemetry.event("solver.cache_hit", query="values",
                                tier="exact")
                return cached
            telemetry.count("solver.cache.misses")
            persisted = cache.lookup_values_persistent(term, key, limit)
            if persisted is not None:
                enum, witnesses = persisted
                if self._verify_enumeration(term, constraints, enum,
                                            witnesses, budget):
                    # every persisted value re-proved against the live
                    # constraints, so a stale or poisoned disk tier can
                    # cost a wasted check but never inject a value
                    cache.disk_hits += 1
                    telemetry.count("solver.cache.disk_hits")
                    telemetry.count("solver.cache.disk_hits_values")
                    telemetry.event("solver.cache_hit", query="values",
                                    tier="disk")
                    cache.store_values(term, key, limit, enum,
                                       write_through=False)
                    return enum
        found: List[int] = []
        witnesses: List[Dict[str, int]] = []
        extra: List[Term] = []
        complete = False
        reason: Optional[str] = None
        with _metered("values", budget):
            while len(found) < limit:
                try:
                    model = self._solve(list(constraints) + extra, budget)
                except UnsatError:
                    complete = True  # no further value exists
                    break
                env = dict(model.assignment)
                for name in term.free_vars():
                    env.setdefault(name, 0)  # unconstrained bytes: 0
                value = tv_eval(term, env, budget)
                if value is None:
                    # the model leaves the term unevaluable; stopping
                    # here under-enumerates, so say so explicitly
                    reason = "unevaluable"
                    telemetry.count("solver.values.partial")
                    break
                found.append(value)
                witnesses.append(env)
                extra.append(cmp("ne", term, const(value), 64))
            else:
                reason = "limit"
        result = ValueEnumeration(found, complete=complete,
                                  truncated_reason=reason)
        if cache is not None:
            cache.store_values(term, key, limit, result, witnesses)
        return result

    def _verify_enumeration(self, term: Term, constraints: Sequence[Term],
                            enum: ValueEnumeration,
                            witnesses: List[Dict[str, int]],
                            budget: Budget) -> bool:
        """Re-prove a persisted enumeration before trusting it.

        Each value must come with a witness assignment that satisfies
        all live constraints *and* evaluates the term to that value —
        the enumeration analog of superset-model verification.  Like
        there, a failed check charges nothing (the disk tier must never
        turn a would-have-succeeded query into a timeout); only a check
        that actually replaces the enumeration loop costs work.
        """
        if len(witnesses) != len(enum):
            return False
        scratch = Budget(max(1, budget.remaining() // 2),
                         "persisted enumeration check")
        try:
            for value, witness in zip(enum, witnesses):
                env = dict(witness)
                for name in term.free_vars():
                    env.setdefault(name, 0)
                if any(tv_eval(c, env, scratch) != 1 for c in constraints):
                    return False
                if tv_eval(term, env, scratch) != value:
                    return False
        except SolverTimeout:
            return False
        budget.charge(min(scratch.spent, budget.remaining()))
        return True


class _Search:
    def __init__(self, constraints: List[Term], budget: Budget,
                 hints: Optional[Dict[str, int]] = None,
                 retained=None):
        self.budget = budget
        #: assumption-stack seed: unit assignments, satisfied constraints
        #: and learned conflicts proven for a prefix of this query hold
        #: for the whole query, so propagation starts from them, skips
        #: the satisfied set, and the DFS prunes the excluded values
        if retained is not None:
            self.env: Dict[str, int] = dict(retained.env)
            self.known_satisfied = retained.satisfied
            #: var -> {value: dep}; read-only (owned by the stack)
            self.excluded: Dict[str, Dict[int, int]] = retained.excluded
            #: highest constraint index each env entry depends on
            self.env_dep: Dict[str, int] = dict(retained.env_deps)
            #: conflicts learned by this search (depth-0 exhaustions)
            self.learned: Optional[Dict[str, Dict[int, int]]] = {}
        else:
            self.env = {}
            self.known_satisfied = frozenset()
            self.excluded = {}
            self.env_dep = {}
            self.learned = None  # learning off outside a session
        #: refutation accumulators for the candidate subtree being
        #: explored: the deepest constraint index any rejection used, and
        #: the shallowest speculative DFS depth any rejection read.  A
        #: subtree at depth d refuted with floor >= d never read the
        #: assignments above it, so its exhaustion is unconditional.
        self._acc = 0
        self._floor = _NO_FLOOR
        self._skipped = 0
        #: vars assigned before the DFS (retained + propagated); set
        #: definitively in :meth:`run` after propagation
        self._base_vars: frozenset = frozenset()
        #: DFS depth of each search variable; set in :meth:`run`
        self._pos: Dict[str, int] = {}
        #: post-propagation ``(env, satisfied)`` snapshot — taken before
        #: any speculative DFS assignment, for assumption-stack retention
        self.propagated = None
        #: warm-start assignment: tried first at every decision point
        self.hints: Dict[str, int] = hints or {}
        self.constraints: List[Term] = []
        #: first caller-list position of each deduped constraint; conflict
        #: deps are expressed in these positions so the assumption stack
        #: (which mirrors the raw caller list) can home them in a frame
        self._index: Dict[Term, int] = {}
        seen: Set[Term] = set()
        for pos, raw in enumerate(constraints):
            term = bool_term(raw)
            if term in seen:
                continue
            seen.add(term)
            self._index[term] = pos
            self.constraints.append(term)

    def harvest(self):
        """Assumption-stack payload: the post-propagation snapshot (with
        per-fact dependency indices) plus conflicts learned during the
        DFS and how many candidates retained conflicts let this search
        skip.  ``None`` outside a session, or until propagation
        completes (nothing sound to retain before that)."""
        if self.propagated is None or self.learned is None:
            return None
        env, satisfied = self.propagated
        env_deps = {name: dep for name, dep in self.env_dep.items()
                    if name in env}
        sat_deps = {term: self._constraint_dep(term) for term in satisfied}
        return env, env_deps, sat_deps, self.learned, self._skipped

    def run(self) -> Model:
        self._propagate()
        active = self._active_constraints()
        active_set = set(active)
        self.propagated = (
            dict(self.env),
            frozenset(c for c in self.constraints if c not in active_set))
        #: non-speculative vars: a rejection whose constraint reads only
        #: these (plus the candidate) is a fact about the query itself,
        #: not about the DFS assignments above it — learnable at any depth
        self._base_vars = frozenset(self.env)
        groups = self._word_groups(active)
        order = self._variable_order(active, groups)
        self._pos = {var: i for i, var in enumerate(order)}
        buckets = self._bucket_constraints(active, order)
        if not self._dfs(0, order, buckets, groups):
            raise UnsatError("no satisfying assignment")
        return Model(self.env)

    # -- propagation ---------------------------------------------------

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for constraint in self.constraints:
                if constraint in self.known_satisfied:
                    continue  # proven for a prefix: stays true here
                value = tv_eval(constraint, self.env, self.budget)
                if value == 0:
                    raise UnsatError(f"constraint is false: {constraint!r}")
                if value is not None:
                    continue
                assignments = self._unit_assignments(constraint)
                dep = None
                for name, val in assignments.items():
                    if name not in self.env:
                        if self.learned is not None:
                            if dep is None:
                                dep = self._constraint_dep(constraint)
                            self.env_dep[name] = dep
                        self.env[name] = val
                        changed = True

    def _unit_assignments(self, constraint: Term) -> Dict[str, int]:
        """var assignments forced by an ``lhs == const`` constraint."""
        if constraint.op != "eq":
            return {}
        lhs, rhs, opwidth = constraint.args
        if not rhs.is_const:
            return {}
        out: Dict[str, int] = {}
        if _invert_unique(lhs, mask(rhs.value, opwidth), self.env, out,
                          self.budget):
            return out
        return {}

    # -- conflict dependency tracking ------------------------------------

    def _constraint_dep(self, constraint: Term) -> int:
        """Highest caller-list index a refutation by ``constraint``
        depends on: the constraint's own position, plus the positions
        backing any retained/propagated env values it reads."""
        dep = self._index.get(constraint, 0)
        if self.env_dep:
            for var in constraint.free_vars():
                d = self.env_dep.get(var)
                if d is not None and d > dep:
                    dep = d
        return dep

    def _note_reject(self, constraint: Term) -> None:
        """A candidate (or subtree) was rejected by ``constraint``: fold
        its dependency and speculative floor into the accumulators of the
        subtree being refuted, and — when exactly one speculative
        variable was involved — learn the rejection as a standalone
        ``var != value`` conflict immediately.

        The direct case is sound because every free variable of a bucket
        constraint is assigned when it is checked: its verdict is a pure
        function of those values, the non-speculative ones are forced by
        the constraints (dep-tracked), so any model of the query must
        differ on the one speculative variable."""
        if self.learned is None:
            return
        dep = self._index.get(constraint, 0)
        floor = _NO_FLOOR
        speculative = None
        multi = False
        for var in constraint.free_vars():
            if var in self._base_vars:
                d = self.env_dep.get(var)
                if d is not None and d > dep:
                    dep = d
            else:
                if speculative is None:
                    speculative = var
                elif var != speculative:
                    multi = True
                p = self._pos.get(var)
                if p is not None and p < floor:
                    floor = p
        if dep > self._acc:
            self._acc = dep
        if floor < self._floor:
            self._floor = floor
        if speculative is None or multi:
            return
        value = self.env.get(speculative)
        if value is None:
            return
        values = self.learned.setdefault(speculative, {})
        prev = values.get(value)
        if prev is None or dep < prev:
            values[value] = dep

    # -- search ----------------------------------------------------------

    def _active_constraints(self) -> List[Term]:
        active = []
        for constraint in self.constraints:
            if constraint in self.known_satisfied:
                continue  # satisfied under a retained prefix env
            value = tv_eval(constraint, self.env, self.budget)
            if value == 0:
                raise UnsatError(f"constraint is false: {constraint!r}")
            if value is None:
                active.append(constraint)
        return active

    def _word_groups(self, active: List[Term]) -> Dict[str, Tuple]:
        """Map each grouped variable to its word group.

        A *word group* is a maximal ``concat`` of distinct free byte
        variables (a multi-byte input field such as a length).  Deciding
        a group's bytes together, guided by word-level candidates, avoids
        the exponential byte-wise search over length fields.

        Returns ``{var: (names_tuple, concat_term)}``.
        """
        groups: Dict[str, Tuple] = {}
        for node in iter_nodes(active):
            if node.op != "concat":
                continue
            names = []
            for part in node.args:
                if part.op == "var" and part.args[0] not in self.env:
                    names.append(part.args[0])
                else:
                    names = None
                    break
            if not names or len(set(names)) != len(names):
                continue
            key = tuple(names)
            for name in names:
                # keep the widest group a var appears in
                current = groups.get(name)
                if current is None or len(current[0]) < len(key):
                    groups[name] = (key, node)
        # drop inconsistent overlaps: every member must agree on the group
        consistent = {}
        for name, (key, node) in groups.items():
            if all(groups.get(n, (None,))[0] == key for n in key):
                consistent[name] = (key, node)
        return consistent

    def _variable_order(self, active: List[Term],
                        groups: Dict[str, Tuple] = None) -> List[str]:
        groups = groups or {}
        order: List[str] = []
        seen: Set[str] = set(self.env)
        for constraint in active:
            for name in sorted(constraint.free_vars()):
                if name in seen:
                    continue
                if name in groups:
                    # keep group members contiguous, in concat order
                    for member in groups[name][0]:
                        if member not in seen:
                            seen.add(member)
                            order.append(member)
                else:
                    seen.add(name)
                    order.append(name)
        return order

    def _bucket_constraints(self, active: List[Term],
                            order: List[str]) -> List[List[Term]]:
        position = {name: i for i, name in enumerate(order)}
        buckets: List[List[Term]] = [[] for _ in order]
        for constraint in active:
            free = [position[n] for n in constraint.free_vars()
                    if n in position]
            if not free:
                # depends only on pre-assigned vars but still unknown
                # (e.g. out-of-bounds read): treat as unsatisfiable later
                buckets and buckets[0].append(constraint)
                continue
            buckets[max(free)].append(constraint)
        return buckets

    def _dfs(self, depth: int, order: List[str],
             buckets: List[List[Term]], groups: Dict[str, Tuple]) -> bool:
        if depth == len(order):
            return True
        name = order[depth]
        group = groups.get(name)
        if group is not None and group[0][0] == name:
            names, node = group
            if all(order[depth + i] == n for i, n in enumerate(names)):
                if self._dfs_group(depth, order, buckets, groups, names,
                                   node):
                    return True
                # word-level candidates failed: fall through to the
                # byte-wise search as a last resort
        excluded = self.excluded.get(name)
        learning = self.learned is not None
        for value in self._candidates(name, buckets, depth):
            dep = excluded.get(value) if excluded is not None else None
            if dep is None and learning:
                # conflicts learned earlier in this same search apply too
                mine = self.learned.get(name)
                if mine is not None:
                    dep = mine.get(value)
            if dep is not None:
                # the conflict proves no model has name=value; skipping
                # the subtree keeps the search complete, and an
                # exhaustion that relies on the skip inherits its
                # dependency (the fact itself reads no DFS assignment,
                # so the floor is untouched)
                if learning and dep > self._acc:
                    self._acc = dep
                self._skipped += 1
                continue
            self.budget.charge(1)
            self.env[name] = value
            if learning:
                # fresh accumulators for the subtree under name=value
                outer_acc, outer_floor = self._acc, self._floor
                self._acc, self._floor = 0, _NO_FLOOR
            ok = True
            for constraint in buckets[depth]:
                if tv_eval(constraint, self.env, self.budget) != 1:
                    ok = False
                    self._note_reject(constraint)
                    break
            if ok and self._dfs(depth + 1, order, buckets, groups):
                return True
            del self.env[name]
            if learning:
                if self._floor >= depth:
                    # the subtree under name=value is exhausted without
                    # reading any assignment above this depth: the
                    # refutation holds for the query itself (constraints
                    # up to self._acc) — a monotone fact any extension
                    # of that prefix can reuse
                    values = self.learned.setdefault(name, {})
                    prev = values.get(value)
                    if prev is None or self._acc < prev:
                        values[value] = self._acc
                self._acc = max(outer_acc, self._acc)
                self._floor = min(outer_floor, self._floor)
        return False

    def _dfs_group(self, depth: int, order: List[str],
                   buckets: List[List[Term]], groups: Dict[str, Tuple],
                   names: Tuple[str, ...], node: Term) -> bool:
        """Try word-level candidate values for a whole concat group."""
        span = len(names)
        learning = self.learned is not None
        check_excluded = learning or any(n in self.excluded for n in names)
        for word in self._word_candidates(node, names, buckets, depth):
            if check_excluded:
                dep = self._excluded_word_dep(names, word)
                if dep is not None:
                    # some member byte is a retained conflict: the whole
                    # word is provably model-free
                    if learning and dep > self._acc:
                        self._acc = dep
                    self._skipped += 1
                    continue
            self.budget.charge(span)
            for i, member in enumerate(names):
                self.env[member] = (word >> (8 * i)) & 0xFF
            ok = True
            for d in range(depth, depth + span):
                for constraint in buckets[d]:
                    if tv_eval(constraint, self.env, self.budget) != 1:
                        ok = False
                        self._note_reject(constraint)
                        break
                if not ok:
                    break
            if ok and self._dfs(depth + span, order, buckets, groups):
                return True
            for member in names:
                del self.env[member]
        return False

    def _excluded_word_dep(self, names: Tuple[str, ...],
                           word: int) -> Optional[int]:
        for i, member in enumerate(names):
            byte = (word >> (8 * i)) & 0xFF
            for table in (self.excluded, self.learned):
                values = table.get(member) if table else None
                if values is not None:
                    dep = values.get(byte)
                    if dep is not None:
                        return dep
        return None

    def _word_candidates(self, node: Term, names: Tuple[str, ...],
                         buckets: List[List[Term]],
                         depth: int) -> Iterable[int]:
        """Word-level candidates for a concat group, from its constraints."""
        derived: List[int] = []
        seen: Set[int] = set()
        width_mask = (1 << (8 * len(names))) - 1
        name_set = set(names)

        def push(value: int) -> None:
            value &= width_mask
            if value not in seen:
                seen.add(value)
                derived.append(value)

        if all(n in self.hints for n in names):
            word = 0
            for i, n in enumerate(names):
                word |= (self.hints[n] & 0xFF) << (8 * i)
            push(word)  # warm start: what worked last time, first
        for bucket in buckets[depth:]:
            for constraint in bucket:
                if not (constraint.free_vars() & name_set):
                    continue
                if constraint.op not in ("eq", "ne", "ult", "ule", "ugt",
                                         "uge", "slt", "sle", "sgt", "sge"):
                    continue
                lhs, rhs, _w = constraint.args
                if rhs.is_const and lhs is node:
                    bound = rhs.value
                elif lhs.is_const and rhs is node:
                    bound = lhs.value
                else:
                    continue
                if constraint.op == "eq":
                    push(bound)
                elif constraint.op == "ne":
                    continue
                else:
                    push(bound)
                    push(bound + 1)
                    push(bound - 1)
        push(0)
        push(1)
        push(width_mask)
        yield from derived
        # small exhaustive tail for narrow groups only
        if len(names) == 1:
            for value in range(256):
                if value not in seen:
                    yield value

    def _candidates(self, name: str, buckets: List[List[Term]],
                    depth: int) -> Iterable[int]:
        derived: List[int] = []
        seen: Set[int] = set()
        hint = self.hints.get(name)
        if hint is not None:
            hint &= 0xFF
            seen.add(hint)
            derived.append(hint)  # warm start: last model's value first
        for bucket in buckets[depth:]:
            for constraint in bucket:
                if name not in constraint.free_vars():
                    continue
                for value in _derive_candidates(constraint, name, self.env,
                                                self.budget):
                    value &= 0xFF
                    if value not in seen:
                        seen.add(value)
                        derived.append(value)
        yield from derived
        for value in range(256):
            if value not in seen:
                yield value


# ----------------------------------------------------------------------
# inversion / candidate derivation

def _invert_unique(term: Term, target: int, env: Dict[str, int],
                   out: Dict[str, int], budget: Budget) -> bool:
    """If ``term == target`` forces unique values for its free vars,
    record them in ``out`` and return True."""
    budget.charge(1)
    op = term.op
    if op == "var":
        out[term.args[0]] = target & ((1 << term.width) - 1)
        return True
    if op == "const":
        return term.args[0] == target
    if op == "concat":
        for i, part in enumerate(term.args):
            byte = (target >> (8 * i)) & 0xFF
            if part.is_const:
                if part.value != byte:
                    return False
            elif part.op == "var":
                out[part.args[0]] = byte
            else:
                return False
        extra = target >> (8 * len(term.args))
        return extra == 0
    if op in ("add", "sub", "xor") and len(term.args) == 3:
        lhs, rhs, opwidth = term.args
        lval = tv_eval(lhs, env, budget)
        rval = tv_eval(rhs, env, budget)
        if lval is not None and rval is None:
            return _invert_unique(rhs, _solve_rhs(op, lval, target, opwidth),
                                  env, out, budget)
        if rval is not None and lval is None:
            return _invert_unique(lhs, _solve_lhs(op, rval, target, opwidth),
                                  env, out, budget)
        return False
    if op == "trunc":
        inner, to_width = term.args
        if inner.width <= to_width:
            return _invert_unique(inner, target, env, out, budget)
        return False
    if op == "sext":
        inner, from_width = term.args
        return _invert_unique(inner, mask(target, from_width), env, out,
                              budget)
    return False


def _solve_rhs(op: str, lval: int, target: int, opwidth: int) -> int:
    """x such that op(lval, x) == target."""
    if op == "add":
        return mask(target - lval, opwidth)
    if op == "sub":
        return mask(lval - target, opwidth)
    return mask(target ^ lval, opwidth)  # xor


def _solve_lhs(op: str, rval: int, target: int, opwidth: int) -> int:
    """x such that op(x, rval) == target."""
    if op == "add":
        return mask(target - rval, opwidth)
    if op == "sub":
        return mask(target + rval, opwidth)
    return mask(target ^ rval, opwidth)  # xor


def _derive_candidates(constraint: Term, name: str, env: Dict[str, int],
                       budget: Budget) -> List[int]:
    """Heuristic candidate values for ``name`` from one constraint."""
    op = constraint.op
    if op == "eq":
        lhs, rhs, opwidth = constraint.args
        if rhs.is_const:
            return _candidates_from_eq(lhs, mask(rhs.value, opwidth), name,
                                       env, budget)
        return []
    if op in ("ult", "ule", "ugt", "uge"):
        lhs, rhs, opwidth = constraint.args
        if rhs.is_const and not lhs.is_const:
            bound, term = rhs.value, lhs
        elif lhs.is_const and not rhs.is_const:
            bound, term = lhs.value, rhs
        else:
            return []
        if name not in term.free_vars():
            return []
        # push the boundary values through the term structure (finds the
        # right byte of a multi-byte length field, inverts offsets, ...)
        out: List[int] = []
        for value in (bound, mask(bound + 1, opwidth),
                      mask(bound - 1, opwidth)):
            out.extend(_candidates_from_eq(term, value, name, env, budget))
        out.extend((0, 1, 0xFF))
        return out
    if op == "ne":
        return []
    return []


def _candidates_from_eq(term: Term, target: int, name: str,
                        env: Dict[str, int], budget: Budget) -> List[int]:
    budget.charge(1)
    op = term.op
    if op == "var":
        return [target] if term.args[0] == name else []
    if op == "concat":
        out = []
        for i, part in enumerate(term.args):
            if part.op == "var" and part.args[0] == name:
                out.append((target >> (8 * i)) & 0xFF)
        return out
    if op in ("add", "sub", "xor"):
        lhs, rhs, opwidth = term.args
        lval = tv_eval(lhs, env, budget)
        rval = tv_eval(rhs, env, budget)
        if lval is not None and name in rhs.free_vars():
            return _candidates_from_eq(
                rhs, _solve_rhs(op, lval, target, opwidth), name, env, budget)
        if rval is not None and name in lhs.free_vars():
            return _candidates_from_eq(
                lhs, _solve_lhs(op, rval, target, opwidth), name, env, budget)
        return []
    if op == "mul":
        # x * c == t with odd c: x = t * c^-1 (mod 2^w)
        lhs, rhs, opwidth = term.args
        if lhs.is_const and name in rhs.free_vars():
            factor = mask(lhs.value, opwidth)
            if factor & 1:
                inverse = pow(factor, -1, 1 << opwidth)
                return _candidates_from_eq(
                    rhs, mask(target * inverse, opwidth), name, env, budget)
        return []
    if op == "shl":
        # x << c == t: the low bits of t must be zero; x's low part is
        # t >> c (high bits of x are unconstrained — try zero)
        lhs, rhs, opwidth = term.args
        if rhs.is_const and name in lhs.free_vars():
            shift = mask(rhs.value, opwidth) & (opwidth - 1)
            if mask(target, opwidth) & ((1 << shift) - 1) == 0:
                return _candidates_from_eq(
                    lhs, mask(target, opwidth) >> shift, name, env, budget)
        return []
    if op == "lshr":
        lhs, rhs, opwidth = term.args
        if rhs.is_const and name in lhs.free_vars():
            shift = mask(rhs.value, opwidth) & (opwidth - 1)
            return _candidates_from_eq(
                lhs, mask(target << shift, opwidth), name, env, budget)
        return []
    if op == "or":
        lhs, rhs, opwidth = term.args
        if lhs.is_const and name in rhs.free_vars():
            k = lhs.value
            if target | k == target:
                return _candidates_from_eq(rhs, target, name, env, budget) + \
                    _candidates_from_eq(rhs, target & ~k & mask(~0, opwidth),
                                        name, env, budget) + \
                    [target, target & ~k & 0xFF]
        return []
    if op == "and":
        lhs, rhs, opwidth = term.args
        if lhs.is_const and name in rhs.free_vars():
            k = lhs.value
            if target & k == target:
                return [target & 0xFF, (target | (~k & 0xFF)) & 0xFF]
        return []
    if op == "trunc":
        return _candidates_from_eq(term.args[0], target, name, env, budget)
    if op == "sext":
        return _candidates_from_eq(term.args[0], mask(target, term.args[1]),
                                   name, env, budget)
    if op == "read":
        return _candidates_from_table_read(term, target, name, env, budget)
    return []


def _candidates_from_table_read(term: Term, target: int, name: str,
                                env: Dict[str, int],
                                budget: Budget) -> List[int]:
    """``table[f(var)] == target``: scan the table for matching content.

    This captures the parser/lookup pattern (keyword tables, translation
    tables) that dominates the SQLite/PHP-style workloads: when the
    array's content is concrete, the feasible indices are exactly the
    positions holding ``target``, and each yields a candidate for the
    index variable.
    """
    arr, index = term.args
    if name not in index.free_vars():
        return []
    node = arr
    while node.op == "store":
        st_index, st_value = node.args[1], node.args[2]
        if not st_index.is_const or not st_value.is_const:
            return []  # content not concrete: give up
        node = node.args[0]
    data = bytearray(node.args[1])
    redo = arr
    overrides = []
    while redo.op == "store":
        overrides.append((redo.args[1].value, redo.args[2].value))
        redo = redo.args[0]
    for idx, value in reversed(overrides):
        if 0 <= idx < len(data):
            data[idx] = value & 0xFF
    if len(data) > _MAX_SCAN_BYTES:
        return []
    budget.charge(len(data))
    candidates: List[int] = []
    for position, byte in enumerate(data):
        if byte != target:
            continue
        forced: Dict[str, int] = {}
        if _invert_unique(index, position, env, forced, budget) and \
                name in forced:
            candidates.append(forced[name])
        if len(candidates) >= 16:
            break
    return candidates
