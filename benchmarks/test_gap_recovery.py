"""Benchmark: replay with the paper's 8.5 % control-flow-mapping loss.

§4 reports only 91.5 % of x86 control-flow events map back to LLVM IR;
the prototype compensates inside KLEE.  This experiment degrades each
failing trace by that loss rate and measures the gap-tolerant replay:
how many bits were lost, how many needed search, and whether replay
still reaches a usable outcome.
"""

import pytest

from repro.evaluation.formatting import render_table
from repro.interp.interpreter import Interpreter
from repro.symex.gaps import replay_with_gap_recovery
from repro.trace.decoder import decode
from repro.trace.degrade import DEFAULT_LOSS, degrade_trace, gap_count
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import all_workloads

#: single-threaded, fast-replay workloads
TARGETS = ["php-2012-2386", "sqlite-787fa71", "nasm-2004-1287",
           "objdump-2018-6323", "matrixssl-2014-1569",
           "libpng-2004-0597", "bash-108885"]


@pytest.mark.benchmark(group="gap-recovery")
def test_mapping_loss_recovery(benchmark, save_artifact):
    workloads = {w.name: w for w in all_workloads()}

    def run():
        rows = []
        for name in TARGETS:
            workload = workloads[name]
            module = workload.fresh_module()
            encoder = PTEncoder(RingBuffer())
            production = Interpreter(module, workload.failing_env(1),
                                     tracer=encoder).run()
            trace = decode(encoder.buffer)
            degraded = degrade_trace(trace, loss=DEFAULT_LOSS, seed=11)
            result = replay_with_gap_recovery(
                module, degraded, production.failure,
                work_limit=workload.work_limit * 20)
            rows.append((name, trace.branch_count, gap_count(degraded),
                         len(result.gap_bits), result.gap_attempts,
                         result.status))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["Failure", "branches", "bits lost", "searched", "replays",
         "outcome"],
        [list(r) for r in rows],
        "Extension — replay under 8.5% control-flow mapping loss "
        "(paper §4: 91.5% of events map to IR)")
    save_artifact("gap_recovery", table)
    outcomes = [r[5] for r in rows]
    assert all(o in ("completed", "stalled") for o in outcomes)
    assert outcomes.count("completed") >= len(rows) - 2
