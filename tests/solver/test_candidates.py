"""Candidate derivation: inversion patterns the search relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsatError
from repro.solver import terms as T
from repro.solver.solver import Solver


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def solve_eq(expr, target, width=8):
    return Solver().solve([T.cmp("eq", expr, T.const(target), width)])


class TestMulInversion:
    def test_odd_factor(self):
        x = T.var("x#0")
        m = solve_eq(T.binop("mul", T.const(31), x, 8), 0x5F)
        assert (31 * m["x#0"]) % 256 == 0x5F

    @given(st.integers(1, 127).map(lambda v: v * 2 + 1),
           st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_any_odd_factor(self, factor, target):
        T.clear_term_cache()
        x = T.var("x#0")
        m = solve_eq(T.binop("mul", T.const(factor), x, 8), target)
        assert (factor * m["x#0"]) % 256 == target

    def test_even_factor_unsat_when_odd_target(self):
        x = T.var("x#0")
        with pytest.raises(UnsatError):
            solve_eq(T.binop("mul", T.const(2), x, 8), 0x55)


class TestShiftInversion:
    def test_shl(self):
        y = T.var("y#0")
        m = solve_eq(T.binop("shl", y, T.const(3), 8), 0xA8)
        assert (m["y#0"] << 3) % 256 == 0xA8

    def test_shl_impossible_low_bits(self):
        y = T.var("y#0")
        with pytest.raises(UnsatError):
            solve_eq(T.binop("shl", y, T.const(4), 8), 0x0F)

    def test_lshr(self):
        y = T.var("y#0")
        m = solve_eq(T.binop("lshr", y, T.const(2), 8), 0x15)
        assert m["y#0"] >> 2 == 0x15


class TestNestedInversion:
    def test_add_of_mul(self):
        x = T.var("x#0")
        expr = T.binop("add", T.binop("mul", T.const(5), x, 8),
                       T.const(7), 8)
        m = solve_eq(expr, 0x2C)
        assert (5 * m["x#0"] + 7) % 256 == 0x2C

    def test_xor_chain(self):
        x = T.var("x#0")
        inner = T.binop("xor", x, T.const(0xAA), 8)
        outer = T.binop("add", inner, T.const(3), 8)
        m = solve_eq(outer, 0x40)
        assert ((m["x#0"] ^ 0xAA) + 3) % 256 == 0x40

    def test_through_concat(self):
        word = T.concat([T.var("a#0"), T.var("a#1")])
        expr = T.binop("add", word, T.const(0x100), 16)
        m = solve_eq(expr, 0x1234, width=16)
        value = m["a#0"] | (m["a#1"] << 8)
        assert (value + 0x100) % 65536 == 0x1234


class TestSignedComparisons:
    def test_slt_solvable(self):
        x = T.var("x#0")
        # x interpreted signed must be negative
        m = Solver().solve([T.cmp("slt", x, T.const(0), 8)])
        assert m["x#0"] >= 0x80

    def test_sge_with_bound(self):
        x = T.var("x#0")
        m = Solver().solve([T.cmp("sge", x, T.const(0x70), 8),
                            T.cmp("slt", x, T.const(0x7F), 8)])
        assert 0x70 <= m["x#0"] < 0x7F
