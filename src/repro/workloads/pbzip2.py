"""Mini parallel compressor: the pbzip2 use-after-free of Table 1.

The real bug (jieyu/concurrency-bugs pbzip2-0.9.4): the main thread
tears down the shared ``fifo`` queue while a consumer thread still
holds a block from it.  The mini compressor keeps the shape: the
producer (main) reads the input, splits it into heap blocks, hands
them to a consumer thread through a shared slot, and — on the buggy
path — frees a block it already published without waiting for the
consumer.  The consumer's checksum loop then touches freed memory.

Input arrives on the ``tar`` stream; a dictionary hash table provides
the symbolic write chains.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

BLOCK = 16
DICT_SLOTS = 32


def build_pbzip2() -> Module:
    b = ModuleBuilder("pbzip2-uaf")
    b.global_("queue_slot", 8)     # shared: pointer to the current block
    b.global_("queue_len", 8)      # shared: block length
    b.global_("done_flag", 8)
    b.global_("taken_flag", 8)     # consumer signals 'block in hand'
    b.global_("dict_tbl", DICT_SLOTS * 8)

    # dict_add(h): compression dictionary insert (chain fuel)
    f = b.function("dict_add", ["h"])
    f.block("entry")
    slot = f.urem("%h", DICT_SLOTS, dest="%slot")
    tbl = f.global_addr("dict_tbl")
    sp = f.gep(tbl, "%slot", 8)
    cur = f.load(sp, 8, dest="%cur")
    fresh = f.cmp("ne", "%cur", "%h")
    f.br(fresh, "ins", "dup")
    f.block("ins")
    f.store(sp, "%h", 8)
    f.ret("%slot")
    f.block("dup")
    f.ret("%slot")

    # consumer: poll the slot, checksum the block
    f = b.function("consumer", [])
    f.block("entry")
    qs = f.global_addr("queue_slot", dest="%qs")
    ql = f.global_addr("queue_len", dest="%ql")
    df = f.global_addr("done_flag", dest="%df")
    f.jmp("poll")
    f.block("poll")
    done = f.load("%df", 8, dest="%done")
    f.br("%done", "out", "take")
    f.block("take")
    blk = f.load("%qs", 8, dest="%blk")
    empty = f.cmp("eq", "%blk", 0)
    f.br(empty, "poll", "work")
    f.block("work")
    tf = f.global_addr("taken_flag", dest="%tf")
    f.store("%tf", 1, 8)
    n = f.load("%ql", 8, dest="%n")
    f.const(0, dest="%i")
    f.const(0, dest="%sum")
    f.jmp("sumloop")
    f.block("sumloop")
    fin = f.cmp("uge", "%i", "%n")
    f.br(fin, "publish", "sbody")
    f.block("sbody")
    p = f.gep("%blk", "%i", 1)
    byte = f.load(p, 1)                 # UAF once main freed the block
    f.add("%sum", byte, width=32, dest="%sum")
    f.add("%i", 1, dest="%i")
    f.jmp("sumloop")
    f.block("publish")
    f.call("dict_add", ["%sum"])
    f.store("%qs", 0, 8)                # release the slot
    f.output("bz2", "%sum", 4)
    f.jmp("poll")
    f.block("out")
    f.ret(0)

    f = b.function("main", [])
    f.block("entry")
    qs = f.global_addr("queue_slot", dest="%qs")
    ql = f.global_addr("queue_len", dest="%ql")
    df = f.global_addr("done_flag", dest="%df")
    nblocks = f.input("tar", 1, dest="%nb")
    some = f.cmp("ugt", "%nb", 0, width=8)
    f.br(some, "spawn", "out0")
    f.block("spawn")
    tid = f.spawn("consumer", [], dest="%tid")
    f.const(0, dest="%b")
    f.jmp("blocks")
    f.block("blocks")
    more = f.cmp("ult", "%b", "%nb", width=8)
    f.br(more, "produce", "fin")
    f.block("produce")
    blk = f.malloc(BLOCK, dest="%blk")
    f.const(0, dest="%i")
    f.jmp("fill")
    f.block("fill")
    filled = f.cmp("uge", "%i", BLOCK)
    f.br(filled, "publish", "fbody")
    f.block("fbody")
    ch = f.input("tar", 1)
    p = f.gep("%blk", "%i", 1)
    f.store(p, ch, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("fill")
    f.block("publish")
    tf = f.global_addr("taken_flag", dest="%tf")
    f.store("%tf", 0, 8)
    f.store("%ql", BLOCK, 8)
    f.store("%qs", "%blk", 8)
    last = f.add("%b", 1, dest="%bnext")
    is_last = f.cmp("uge", "%bnext", "%nb", width=8)
    f.br(is_last, "last_block", "wait")
    f.block("wait")
    taken = f.load("%qs", 8, dest="%taken")
    still = f.cmp("ne", "%taken", 0)
    f.br(still, "wait", "next")
    f.block("last_block")
    # BUG: once the consumer has *picked up* the final block, main
    # assumes it will finish before teardown and frees it right away
    f.jmp("wait_taken")
    f.block("wait_taken")
    got = f.load("%tf", 8, dest="%got")
    f.br("%got", "eager_free", "wait_taken")
    f.block("eager_free")
    f.free("%blk")
    f.jmp("next")
    f.block("next")
    f.binop("add", "%bnext", 0, dest="%b")
    f.jmp("blocks")
    f.block("fin")
    f.store("%df", 1, 8)
    f.jmp("out0")
    f.block("out0")
    f.ret(0)
    return b.build()


def _tar(rng: random.Random, nblocks: int) -> bytes:
    return bytes((nblocks,)) + bytes(
        rng.randint(1, 255) for _ in range(nblocks * BLOCK))


def _failing_pbzip2(occurrence: int) -> Environment:
    rng = random.Random(700 + occurrence)
    return Environment({"tar": _tar(rng, 2)}, quantum=10)


def _benign_pbzip2(seed: int) -> Environment:
    rng = random.Random(seed)
    # with a large quantum the consumer finishes each block inside one
    # time slice, so the eager free lands after the checksum: no UAF
    return Environment({"tar": _tar(rng, rng.randint(25, 40))}, quantum=400)


def pbzip2_workloads():
    return [Workload(
        name="pbzip2-uaf", app="Pbzip2 0.9.4", bug_id="pbzip2-0.9.4",
        bug_type="Use-after-free", multithreaded=True,
        expected_kind=FailureKind.USE_AFTER_FREE,
        build=build_pbzip2,
        failing_env=_failing_pbzip2, benign_env=_benign_pbzip2,
        bench_name="Compress a .tar file",
        work_limit=600,
        paper_occurrences=2, paper_instrs=6_937_510)]
