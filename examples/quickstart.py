#!/usr/bin/env python3
"""Quickstart: reproduce a production failure end to end.

We build a small program with a latent bug (a table write at an
attacker-influenced index followed by a dependent check), simulate a
production deployment where the failure keeps reoccurring, and let ER
iterate: trace -> shepherded symbolic execution -> stall -> key data
value selection -> instrument -> redeploy -> ... -> verified test case.

Run:  python examples/quickstart.py
"""

from repro import Environment, Interpreter, ModuleBuilder
from repro.core import ExecutionReconstructor, ProductionSite


def build_program():
    """A service that bins request sizes into a histogram.

    The bug: the bin index is ``(size_a + size_b) % 300`` but the
    histogram has only 256 slots — certain request pairs write out of
    bounds.  (Classic 'two fields, one check' bug.)
    """
    b = ModuleBuilder("histogram-service")
    b.global_("histogram", 256)

    f = b.function("main", [])
    f.block("entry")
    f.jmp("request")

    f.block("request")
    tag = f.input("net", 1, dest="%tag")
    alive = f.cmp("ne", "%tag", 0, width=8)
    f.br(alive, "handle", "out")

    f.block("handle")
    size_a = f.input("net", 1, dest="%a")
    size_b = f.input("net", 1, dest="%b")
    total = f.add("%a", "%b", dest="%total")
    bin_index = f.urem("%total", 300, dest="%bin")   # BUG: 300 > 256
    hist = f.global_addr("histogram", dest="%hist")
    slot = f.gep("%hist", "%bin", 1)
    count = f.load(slot, 1, dest="%count")
    f.add("%count", 1, dest="%count")
    f.store(slot, "%count", 1)
    f.jmp("request")

    f.block("out")
    f.ret(0)
    return b.build()


def request(size_a, size_b):
    return bytes((1, size_a, size_b))


def main():
    module = build_program()

    # --- production: the failure reoccurs with slightly different noise
    def failing_env(occurrence):
        import random

        rng = random.Random(occurrence)
        benign = b"".join(request(rng.randint(0, 100), rng.randint(0, 100))
                          for _ in range(5))
        crash = request(200, 90)  # 290 % 300 = 290 -> out of bounds
        return Environment({"net": benign + crash + b"\x00"})

    # sanity: it really crashes in production
    crash_run = Interpreter(module, failing_env(1)).run()
    print(f"production failure: {crash_run.failure}\n")

    # --- ER: iterate until a verified test case exists
    er = ExecutionReconstructor(module, work_limit=20_000)
    report = er.reconstruct(ProductionSite(failing_env))

    print(report.summary())
    print()

    # --- the developer's view: a concrete, replayable test case
    test_env = report.test_case.environment()
    replay = Interpreter(module, test_env).run()
    print(f"replayed test case -> {replay.failure}")
    assert replay.failure is not None
    assert replay.failure.matches(crash_run.failure)
    print("\nsame failure, reproduced deterministically — happy debugging!")


if __name__ == "__main__":
    main()
