"""Instrumentation pass: insert ``ptwrite`` after selected program points.

Models the paper's 156-LoC LLVM pass (§4): given a recording plan, emit a
new module (the 'redeployed' binary) where each selected register is
recorded into the PT trace right after it is defined.  Inserting shifts
instruction indices, so insertions are applied per block in descending
index order, and the pass returns the updated points for bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import IRError
from ..ir import instructions as ins
from ..ir.module import Module
from ..ir.verifier import verify_module
from .selection import RecordingItem


@dataclass
class InstrumentationResult:
    """The redeployed module plus tag bookkeeping."""

    module: Module
    #: ptwrite tag -> the recording item it implements
    tag_map: Dict[int, RecordingItem] = field(default_factory=dict)
    next_tag: int = 0


def instrument(module: Module, items: List[RecordingItem],
               next_tag: int = 0) -> InstrumentationResult:
    """Return a new module with one ``ptwrite`` per recording item.

    Items must reference points in ``module``; the defining instruction's
    destination register must match the item's register.
    """
    new_module = module.clone()
    tag_map: Dict[int, RecordingItem] = {}

    by_block: Dict[Tuple[str, str], List[RecordingItem]] = {}
    for item in items:
        by_block.setdefault((item.point.func, item.point.block),
                            []).append(item)

    for (func_name, block_label), block_items in by_block.items():
        block = new_module.function(func_name).block(block_label)
        # descending index keeps earlier indices valid while inserting
        for item in sorted(block_items, key=lambda i: i.point.index,
                           reverse=True):
            index = item.point.index
            if index >= len(block.instrs):
                raise IRError(f"recording point {item.point} out of range")
            defining = block.instrs[index]
            if defining.dest_register() != item.register:
                raise IRError(
                    f"recording point {item.point} defines "
                    f"{defining.dest_register()!r}, not {item.register!r}")
            tag = next_tag
            next_tag += 1
            tag_map[tag] = item
            block.instrs.insert(index + 1, ins.PtWrite(item.register, tag))

    verify_module(new_module)
    return InstrumentationResult(module=new_module, tag_map=tag_map,
                                 next_tag=next_tag)
