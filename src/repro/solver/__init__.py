"""Bitvector/array constraint solver with explicit work budgets."""

from . import segments, terms
from .backend import (BACKEND_ORDER, ReferenceBackend, SolverBackend,
                      make_backends)
from .budget import DEFAULT_WORK_LIMIT, WORK_PER_SECOND, Budget, UnlimitedBudget
from .cache import SolverCache, ValueEnumeration
from .diskcache import DiskSolverCache
from .segments import compact_store, merge_caches, verify_store
from .evaluator import tv_eval
from .incremental import AssumptionStack, Retained
from .model import Model, input_var_name, parse_var_name
from .portfolio import race
from .solver import Solver
from .terms import (Term, TermSpace, clear_term_cache, deserialize_term,
                    serialize_term, substitute, term_digest, term_scope)

__all__ = [
    "terms",
    "segments",
    "compact_store",
    "merge_caches",
    "verify_store",
    "Term",
    "TermSpace",
    "term_scope",
    "clear_term_cache",
    "serialize_term",
    "deserialize_term",
    "substitute",
    "term_digest",
    "SolverCache",
    "DiskSolverCache",
    "ValueEnumeration",
    "Budget",
    "UnlimitedBudget",
    "DEFAULT_WORK_LIMIT",
    "WORK_PER_SECOND",
    "tv_eval",
    "Model",
    "input_var_name",
    "parse_var_name",
    "Solver",
    "SolverBackend",
    "ReferenceBackend",
    "BACKEND_ORDER",
    "make_backends",
    "race",
    "AssumptionStack",
    "Retained",
]
