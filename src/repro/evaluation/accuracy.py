"""§5.2 accuracy: ER's exact reconstruction vs REPT's best-effort one.

REPT recovers data values by reverse execution from a core dump; the
paper reports that 15–60 % of values are incorrectly recovered once
traces exceed ~100 K instructions, and that the errors are silent.  ER,
by construction, produces a *replayable* execution: every value of the
replayed run is exact.

This harness measures REPT's recovery error on the Table-1 failing
executions (grouped by trace length) and verifies ER's replay
exactness on the same failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..baselines.rept import ReptAnalyzer, ReptReport
from ..core import ExecutionReconstructor, ProductionSite
from ..interp.interpreter import Interpreter
from ..workloads import Workload, all_workloads
from .formatting import percent, render_table


@dataclass
class AccuracyRow:
    name: str
    trace_length: int
    rept_error_rate: float       # wrong-or-unknown fraction of defs
    rept_incorrect_rate: float   # silently wrong fraction
    er_exact: bool               # ER replay reproduces the failure
    rept_by_distance: List[Tuple[int, float]]


@dataclass
class AccuracyResult:
    rows: List[AccuracyRow]

    @property
    def er_always_exact(self) -> bool:
        return all(r.er_exact for r in self.rows)

    def rept_error_grows_with_length(self) -> bool:
        """Longer traces should hurt REPT more (rank correlation > 0)."""
        ordered = sorted(self.rows, key=lambda r: r.trace_length)
        if len(ordered) < 2:
            return True
        first = ordered[: len(ordered) // 2]
        last = ordered[len(ordered) - len(first):]
        avg = lambda rs: sum(r.rept_error_rate for r in rs) / len(rs)
        return avg(last) >= avg(first)

    def render(self) -> str:
        headers = ["Failure", "Trace len", "REPT err (wrong+unknown)",
                   "REPT silently wrong", "ER replay exact?"]
        rows = [[r.name, r.trace_length, percent(r.rept_error_rate, 1),
                 percent(r.rept_incorrect_rate, 1),
                 "yes" if r.er_exact else "NO"] for r in self.rows]
        footer = ("\nER reproduces a replayable execution: every replayed "
                  "value is exact (paper: REPT loses 15-60% beyond 100K "
                  "instructions; all REPT reproductions contain incorrect "
                  "values)")
        curve = self._distance_curve()
        if curve:
            footer += "\n\nREPT error rate by distance from the failure " \
                      "(pooled):\n" + curve
        return render_table(headers, rows,
                            "Accuracy — ER vs REPT value recovery") + footer

    def _distance_curve(self) -> str:
        """Pooled REPT error per distance bucket: nearer = better."""
        from collections import defaultdict

        pooled = defaultdict(list)
        for row in self.rows:
            for bound, rate in row.rept_by_distance:
                pooled[bound].append(rate)
        lines = []
        for bound in sorted(pooled):
            rates = pooled[bound]
            label = f"<= {bound}" if bound < (1 << 29) else "all"
            lines.append(f"  distance {label:>9}: "
                         f"{percent(sum(rates) / len(rates), 1)} wrong "
                         f"or missing")
        return "\n".join(lines)


def measure_accuracy_for(workload: Workload) -> AccuracyRow:
    env = workload.failing_env(1)
    analyzer = ReptAnalyzer()
    rept: ReptReport = analyzer.analyze(workload.fresh_module(), env)

    reconstructor = ExecutionReconstructor(
        workload.fresh_module(), work_limit=workload.work_limit,
        max_occurrences=workload.max_occurrences)
    report = reconstructor.reconstruct(ProductionSite(workload.failing_env))
    er_exact = bool(report.success and report.verified)

    failing_run = Interpreter(workload.fresh_module(),
                              workload.failing_env(1)).run()
    return AccuracyRow(
        name=workload.name,
        trace_length=failing_run.instr_count,
        rept_error_rate=rept.error_rate,
        rept_incorrect_rate=rept.incorrect_rate,
        er_exact=er_exact,
        rept_by_distance=list(rept.by_distance),
    )


def run_accuracy(names: Optional[List[str]] = None) -> AccuracyResult:
    """Compare REPT and ER accuracy over the single-threaded failures.

    (REPT's published prototype targets single-threaded traces; we
    follow suit to keep the comparison fair.)
    """
    rows = []
    for workload in all_workloads():
        if workload.multithreaded:
            continue
        if names is not None and workload.name not in names:
            continue
        rows.append(measure_accuracy_for(workload))
    return AccuracyResult(rows)
