"""Concrete interpreter: the simulated production runtime."""

from .env import CLOCK_STREAM, EnvEvent, Environment
from .failures import FailureInfo, FailureKind, MemoryFault
from .interpreter import Interpreter, NullTracer, RunResult
from .memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, Memory, MemoryObject

__all__ = [
    "CLOCK_STREAM",
    "EnvEvent",
    "Environment",
    "FailureInfo",
    "FailureKind",
    "MemoryFault",
    "Interpreter",
    "NullTracer",
    "RunResult",
    "Memory",
    "MemoryObject",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "STACK_BASE",
]
