"""Shepherded symbolic execution (§3.2).

The engine replays a decoded PT trace over the IR with symbolic inputs:

* the scheduler is replaced by the recorded chunk order (§3.4),
* every conditional branch consumes one recorded TNT bit and contributes
  the branch condition (oriented by the bit) to the path constraint,
* every ``ptwrite`` consumes one recorded PTW value, asserts equality,
  and **concretizes** the register — the step that collapses constraint
  complexity after key-data-value selection,
* every symbolic memory access invokes the solver (bounded by a work
  budget); a timeout is a *stall* and yields a :class:`StallInfo` for
  key data value selection,
* at the end of the trace, the recorded failure is turned into a final
  constraint (e.g. the faulting address is out of bounds) and the full
  path constraint is handed to the solver for input generation.
"""

from __future__ import annotations

import logging
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import SolverTimeout, SymexError, TraceDivergence, UnsatError
from ..interp.failures import FailureInfo, FailureKind
from ..ir import instructions as ins
from ..ir.module import Function, Module, ProgramPoint
from ..solver import terms as T
from ..solver.budget import DEFAULT_WORK_LIMIT, Budget, UnlimitedBudget
from ..solver.cache import SolverCache
from ..solver.solver import Solver
from ..solver.terms import Term
from ..trace.decoder import DecodedTrace
from ..trace.packets import GapEvent, PtwEvent, TntEvent
from .environment import SymbolicEnvironment
from .memory import SymMemory, SymObject
from .result import StallInfo, SymexResult, SymexStats

logger = logging.getLogger(__name__)


@dataclass
class SymFrame:
    func: Function
    block: str
    index: int
    regs: Dict[str, Term]
    stack_objs: List[SymObject] = field(default_factory=list)
    ret_reg: Optional[str] = None


@dataclass
class SymThread:
    tid: int
    frames: List[SymFrame]
    done: bool = False

    @property
    def frame(self) -> SymFrame:
        return self.frames[-1]

    def call_stack(self) -> Tuple[str, ...]:
        return tuple(f.func.name for f in self.frames)

    def current_point(self) -> ProgramPoint:
        frame = self.frame
        return ProgramPoint(frame.func.name, frame.block, frame.index)


class _Stall(Exception):
    def __init__(self, info: StallInfo):
        self.info = info


class ShepherdedSymex:
    """One shepherded symbolic execution over one decoded trace."""

    def __init__(self, module: Module, trace: DecodedTrace,
                 failure: Optional[FailureInfo], *,
                 work_limit: int = DEFAULT_WORK_LIMIT,
                 no_timeout: bool = False,
                 check_feasibility: bool = True,
                 continue_on_stall: bool = False,
                 banned_concretizations=None,
                 gap_decisions=None,
                 solver_cache: Optional[SolverCache] = None,
                 portfolio: int = 1):
        self.module = module
        self.trace = trace
        self.failure = failure
        self.work_limit = work_limit
        self.no_timeout = no_timeout
        self.check_feasibility = check_feasibility
        #: Fig. 5 mode: per-access solver timeouts do not abort the
        #: replay; the work is accounted and shepherding continues
        self.continue_on_stall = continue_on_stall
        #: {repr(term): {values}} — concretization picks a caller ruled
        #: out after they made the path unsat (retry protocol)
        self.banned_concretizations = dict(banned_concretizations or {})
        #: committed outcomes for GapEvents (lost TNT bits); beyond this
        #: prefix the engine defaults to 'taken' and records its choice
        self.gap_decisions = list(gap_decisions or [])
        self.gap_bits_used: List[bool] = []

        #: per-session solver-query cache; the reconstructor passes one
        #: shared across iterations so later iterations warm-start from
        #: the previous iteration's partial model
        self.solver_cache = (solver_cache if solver_cache is not None
                             else SolverCache())
        #: >1 races that many search strategies per query (answers stay
        #: byte-identical to the reference strategy; see solver/portfolio)
        self.portfolio = portfolio
        self.solver = Solver(work_limit, cache=self.solver_cache,
                             portfolio=portfolio)
        self.sym_env = SymbolicEnvironment()
        self.memory = SymMemory(module)
        self.threads: Dict[int, SymThread] = {}
        self.constraints: List[Term] = []
        self.exec_counts: Counter = Counter()
        self.stats = SymexStats()
        self.outputs: Dict[str, List[Term]] = {}
        self._events: Deque = deque()
        self._chunk_index: int = -1
        #: (term, value) pairs pinned by solver concretization (malloc
        #: sizes, wild addresses); if the path later turns unsat, the
        #: wrong pick is the likely culprit — recording the term fixes
        #: it across occurrences (§3.3.4), banning the value fixes it
        #: within one analysis (Fig. 5 mode)
        self._concretized: List[Tuple[Term, int]] = []

        self._dispatch = {
            ins.Const: self._exec_const,
            ins.BinOp: self._exec_binop,
            ins.Cmp: self._exec_cmp,
            ins.Select: self._exec_select,
            ins.Trunc: self._exec_trunc,
            ins.SExt: self._exec_sext,
            ins.GlobalAddr: self._exec_global,
            ins.FrameAlloc: self._exec_alloca,
            ins.HeapAlloc: self._exec_malloc,
            ins.HeapFree: self._exec_free,
            ins.Gep: self._exec_gep,
            ins.Load: self._exec_load,
            ins.Store: self._exec_store,
            ins.Jmp: self._exec_jmp,
            ins.Br: self._exec_br,
            ins.Call: self._exec_call,
            ins.Ret: self._exec_ret,
            ins.Input: self._exec_input,
            ins.Output: self._exec_output,
            ins.Assert: self._exec_assert,
            ins.Abort: self._exec_abort,
            ins.PtWrite: self._exec_ptwrite,
            ins.Spawn: self._exec_spawn,
            ins.Join: self._exec_nop,
            ins.Lock: self._exec_nop,
            ins.Unlock: self._exec_nop,
            ins.Nop: self._exec_nop,
        }

    # ------------------------------------------------------------------
    # public API

    def run(self) -> SymexResult:
        """Shepherd the whole trace; solve for inputs at the end."""
        with telemetry.span("symex.run",
                            chunks=len(self.trace.chunks)) as sp:
            result = self._run()
        self.stats.wall_seconds = sp.seconds
        self._publish_stats(result)
        return result

    def _publish_stats(self, result: SymexResult) -> None:
        tel = telemetry.get()
        tel.count("symex.runs")
        tel.count(f"symex.{result.status}")
        tel.count("symex.instrs_executed", self.stats.instrs_executed)
        tel.count("symex.solver_calls", self.stats.solver_calls)
        tel.count("symex.solver_work", self.stats.solver_work)
        tel.histogram("symex.wall_seconds").record(self.stats.wall_seconds)
        logger.debug(
            "symex %s: %d instrs, %d solver calls, %d work, %.3fs wall",
            result.status, self.stats.instrs_executed,
            self.stats.solver_calls, self.stats.solver_work,
            self.stats.wall_seconds)
        if result.status == "diverged":
            logger.info("symex diverged at chunk %d: %s",
                        result.diverged_chunk, result.divergence_reason)
            tel.event("symex.divergence", chunk=result.diverged_chunk,
                      reason=result.divergence_reason)

    def _run(self) -> SymexResult:
        # A fresh term space per run (reusing the reconstruction's space
        # when one is active) replaces the old process-global cache
        # clear: concurrent engines in one process can no longer reset
        # each other's intern tables, and terms held across runs (stall
        # terms, report payloads) stay structurally valid.
        with T.term_scope(reuse_active=True):
            return self._run_in_scope()

    def _run_in_scope(self) -> SymexResult:
        try:
            self._init_main()
            self._replay_chunks()
            self._apply_failure_constraints()
            model = self._final_solve()
        except _Stall as stall:
            return SymexResult(status="stalled",
                               constraints=list(self.constraints),
                               stall=stall.info, stats=self.stats,
                               exec_counts=self.exec_counts,
                               gap_bits=list(self.gap_bits_used))
        except TraceDivergence as div:
            if self._concretized:
                # the divergence is (most likely) a bad concretization
                # pick; report a stall naming the concretized terms so
                # selection records them for the next occurrence (or so
                # a Fig.-5-style driver bans the value and retries)
                budget = Budget(self.work_limit, "concretization conflict")
                return SymexResult(status="stalled",
                                   constraints=list(self.constraints),
                                   stall=self._make_stall(
                                       [t for t, _v in self._concretized],
                                       budget),
                                   stats=self.stats,
                                   exec_counts=self.exec_counts,
                                   gap_bits=list(self.gap_bits_used))
            return SymexResult(status="diverged", stats=self.stats,
                               constraints=list(self.constraints),
                               exec_counts=self.exec_counts,
                               divergence_reason=str(div),
                               diverged_chunk=self._chunk_index,
                               gap_bits=list(self.gap_bits_used))
        return SymexResult(status="completed",
                           constraints=list(self.constraints), model=model,
                           stats=self.stats, exec_counts=self.exec_counts,
                           gap_bits=list(self.gap_bits_used))

    # ------------------------------------------------------------------
    # trace replay

    def _init_main(self) -> None:
        main = self.module.function("main")
        if main.params:
            raise SymexError("shepherded main must take no arguments")
        self.threads[0] = SymThread(
            0, [SymFrame(main, next(iter(main.blocks)), 0, {})])
        self._next_tid = 1

    def _replay_chunks(self) -> None:
        for index, chunk in enumerate(self.trace.chunks):
            self._chunk_index = index
            thread = self.threads.get(chunk.tid)
            if thread is None:
                raise TraceDivergence(
                    f"trace chunk for unknown thread {chunk.tid}")
            self._events = deque(chunk.events)
            for _ in range(chunk.n_instrs):
                if thread.done:
                    raise TraceDivergence(
                        f"chunk {index} runs past thread {chunk.tid} end")
                self._step(thread)
            if self._events:
                raise TraceDivergence(
                    f"{len(self._events)} unconsumed trace events in chunk")

    def _step(self, thread: SymThread) -> None:
        frame = thread.frame
        instr = frame.func.blocks[frame.block].instrs[frame.index]
        point = ProgramPoint(frame.func.name, frame.block, frame.index)
        self.exec_counts[point] += 1
        self.stats.instrs_executed += 1
        self._current_point = point
        self._current_thread = thread
        handler = self._dispatch[type(instr)]
        handler(thread, frame, instr, point)

    # ------------------------------------------------------------------
    # solver plumbing

    def _new_budget(self, context: str) -> Budget:
        if self.no_timeout:
            return UnlimitedBudget(context)
        return Budget(self.work_limit, context)

    def _charge_stats(self, budget: Budget) -> None:
        self.stats.solver_calls += 1
        self.stats.solver_work += budget.spent
        self.stats.add_progress(self.stats.instrs_executed,
                                self.stats.solver_work)

    def _check_feasible(self, stall_terms: List[Term], context: str) -> None:
        """The per-access solver call of §3.2; may stall."""
        if not self.check_feasibility:
            return
        budget = self._new_budget(context)
        try:
            feasible = self.solver.is_feasible(self.constraints, budget)
        except SolverTimeout:
            self._charge_stats(budget)
            if self.continue_on_stall:
                return
            raise _Stall(self._make_stall(stall_terms, budget)) from None
        self._charge_stats(budget)
        if not feasible:
            raise TraceDivergence(f"infeasible path constraint at {context}")

    def _make_stall(self, stall_terms: List[Term],
                    budget: Budget) -> StallInfo:
        chains = [obj.chain for obj in self.memory.objects_with_chains()]
        conflict = None
        if self._concretized:
            term, value = self._concretized[-1]
            conflict = (repr(term), value)
        return StallInfo(constraints=list(self.constraints),
                         stall_terms=list(stall_terms),
                         chains=chains,
                         exec_counts=Counter(self.exec_counts),
                         work_spent=budget.spent,
                         point=self._current_point,
                         concretization_conflict=conflict)

    def _final_solve(self):
        budget = self._new_budget("final input generation")
        try:
            model = self.solver.solve(self.constraints, budget)
        except SolverTimeout:
            self._charge_stats(budget)
            raise _Stall(self._make_stall([], budget)) from None
        except UnsatError as exc:
            self._charge_stats(budget)
            raise TraceDivergence(f"final constraints unsat: {exc}") from None
        self._charge_stats(budget)
        return model

    # ------------------------------------------------------------------
    # failure constraints

    def _apply_failure_constraints(self) -> None:
        if self.failure is None:
            return
        thread = self.threads.get(self.failure.tid)
        if thread is None or thread.done:
            raise TraceDivergence("failing thread not live at trace end")
        point = thread.current_point()
        if point != self.failure.point:
            raise TraceDivergence(
                f"replay ends at {point}, failure was at {self.failure.point}")
        if thread.call_stack() != self.failure.call_stack:
            raise TraceDivergence("call stack mismatch at failure point")
        frame = thread.frame
        instr = frame.func.blocks[frame.block].instrs[frame.index]
        kind = self.failure.kind

        if kind == FailureKind.ABORT:
            return
        if kind == FailureKind.ASSERT:
            cond = self._value(frame, instr.cond)
            self._add_constraint(T.cmp("eq", cond, T.const(0), 64))
            return
        if kind == FailureKind.DIV_BY_ZERO:
            rhs = self._value(frame, instr.rhs)
            self._add_constraint(T.cmp("eq", rhs, T.const(0), instr.width))
            return
        if kind in (FailureKind.STACK_OVERFLOW, FailureKind.HANG):
            return
        if kind in (FailureKind.USE_AFTER_FREE, FailureKind.DOUBLE_FREE):
            # liveness is concrete in replay; reaching the point suffices,
            # but sanity-check the object really is dead.
            addr = self._value(frame, instr.addr)
            if addr.is_const:
                obj = self.memory.find_object(addr.value)
                if obj is not None and obj.live and \
                        kind == FailureKind.USE_AFTER_FREE:
                    raise TraceDivergence("object live at use-after-free")
            return
        # memory-safety faults with possibly-symbolic addresses
        addr_operand = getattr(instr, "addr", None)
        if addr_operand is None:
            raise TraceDivergence(
                f"failure kind {kind} at non-memory instruction")
        addr = self._value(frame, addr_operand)
        size = getattr(instr, "size", 1)
        if kind == FailureKind.NULL_DEREF:
            if addr.is_const:
                if addr.value >= 0x1000:
                    raise TraceDivergence("address not null at null-deref")
            else:
                self._add_constraint(
                    T.cmp("ult", addr, T.const(0x1000), 64))
            return
        if kind == FailureKind.OUT_OF_BOUNDS:
            if addr.is_const:
                obj = self.memory.find_object(addr.value)
                if obj is not None and addr.value + size <= obj.end:
                    raise TraceDivergence("in-bounds at out-of-bounds fault")
                return
            obj, offset = self._decompose_address(addr)
            if obj is None:
                return
            self._add_constraint(
                T.cmp("ugt", offset, T.const(obj.size - size), 64))
            return
        raise TraceDivergence(f"unhandled failure kind {kind}")

    # ------------------------------------------------------------------
    # helpers

    def _value(self, frame: SymFrame, operand) -> Term:
        if isinstance(operand, str):
            try:
                return frame.regs[operand]
            except KeyError:
                raise SymexError(
                    f"read of unset register {operand} in {frame.func.name}"
                ) from None
        return T.const(operand)

    def _add_constraint(self, term: Term) -> None:
        term = T.bool_term(term)
        if term.is_const:
            if term.value == 0:
                raise TraceDivergence("constraint trivially false")
            return
        self.constraints.append(term)

    def _set_dest(self, frame: SymFrame, point: ProgramPoint, dest: str,
                  term: Term, size_bytes: int) -> None:
        if not term.is_const and term.prov is None:
            term.prov = (point, dest, size_bytes)
        frame.regs[dest] = term

    def _advance(self, frame: SymFrame) -> None:
        frame.index += 1

    def _next_event(self, want, point: ProgramPoint):
        if not self._events:
            raise TraceDivergence(f"trace exhausted at {point}")
        event = self._events.popleft()
        if not isinstance(event, want):
            names = (want.__name__ if isinstance(want, type)
                     else "/".join(w.__name__ for w in want))
            raise TraceDivergence(
                f"expected {names} at {point}, got {event!r}")
        return event

    # ------------------------------------------------------------------
    # address handling

    def _concretize(self, term: Term, context: str) -> int:
        """Pin a symbolic term to one feasible value (KLEE-style)."""
        budget = self._new_budget(context)
        banned = self.banned_concretizations.get(repr(term), ())
        extra = [T.cmp("ne", term, T.const(v), 64) for v in banned]
        try:
            values = self.solver.feasible_values(
                term, list(self.constraints) + extra, limit=1, budget=budget)
        except SolverTimeout:
            self._charge_stats(budget)
            raise _Stall(self._make_stall([term], budget)) from None
        self._charge_stats(budget)
        if not values:
            raise TraceDivergence(f"no feasible value for {context}")
        self._concretized.append((term, values[0]))
        self._add_constraint(T.cmp("eq", term, T.const(values[0]), 64))
        return values[0]

    def _decompose_address(self, addr: Term):
        """Split a symbolic address into (object, offset term).

        Canonicalization keeps ``base + symbolic`` in the shape
        ``add(const, X)``; if the pattern fails, concretize via the solver
        (KLEE-style address concretization) and pin it with a constraint.
        """
        if addr.is_const:
            obj = self.memory.find_object(addr.value)
            if obj is None:
                return None, T.const(0)
            return obj, T.const(addr.value - obj.base)
        if addr.op == "add" and addr.args[0].is_const and addr.args[2] == 64:
            base_const = addr.args[0].value
            obj = self.memory.find_object(base_const)
            if obj is not None:
                offset = T.binop("add", T.const(base_const - obj.base),
                                 addr.args[1], 64)
                return obj, offset
        # fallback: ask the solver for a concrete address
        concrete = self._concretize(addr, "address concretization")
        obj = self.memory.find_object(concrete)
        if obj is None:
            return None, T.const(0)
        return obj, T.const(concrete - obj.base)

    def _access(self, point: ProgramPoint, addr: Term, size: int,
                is_store: bool):
        """Resolve one retired memory access; returns (object, offset_term).

        Retired accesses (the failing instruction never retires) must stay
        in bounds of a live object; symbolic offsets add an in-bounds
        constraint and trigger the per-access solver call.
        """
        obj, offset = self._decompose_address(addr)
        if obj is None or not obj.live:
            raise TraceDivergence(
                f"access to {'dead' if obj else 'unmapped'} memory at {point}")
        if offset.is_const:
            if offset.value + size > obj.size:
                raise TraceDivergence(f"out-of-bounds replay at {point}")
            return obj, offset
        in_bounds = T.cmp("ule", offset, T.const(obj.size - size), 64)
        self._add_constraint(in_bounds)
        self._check_feasible([in_bounds, offset], f"bounds check at {point}")
        return obj, offset

    # ------------------------------------------------------------------
    # instruction handlers

    def _exec_const(self, thread, frame, instr, point):
        frame.regs[instr.dest] = T.const(instr.value)
        self._advance(frame)

    def _exec_binop(self, thread, frame, instr, point):
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        if instr.op in ("udiv", "sdiv", "urem", "srem"):
            if rhs.is_const:
                if (rhs.value & ((1 << instr.width) - 1)) == 0:
                    raise TraceDivergence(
                        f"division by zero replayed at {point}")
            else:
                self._add_constraint(
                    T.cmp("ne", rhs, T.const(0), instr.width))
        term = T.binop(instr.op, lhs, rhs, instr.width)
        self._set_dest(frame, point, instr.dest, term, instr.width // 8 or 1)
        self._advance(frame)

    def _exec_cmp(self, thread, frame, instr, point):
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        term = T.cmp(instr.op, lhs, rhs, instr.width)
        self._set_dest(frame, point, instr.dest, term, 1)
        self._advance(frame)

    def _exec_select(self, thread, frame, instr, point):
        cond = T.bool_term(self._value(frame, instr.cond))
        term = T.ite(cond, self._value(frame, instr.if_true),
                     self._value(frame, instr.if_false))
        self._set_dest(frame, point, instr.dest, term, 8)
        self._advance(frame)

    def _exec_trunc(self, thread, frame, instr, point):
        term = T.trunc(self._value(frame, instr.value), instr.width)
        self._set_dest(frame, point, instr.dest, term, instr.width // 8 or 1)
        self._advance(frame)

    def _exec_sext(self, thread, frame, instr, point):
        term = T.sext(self._value(frame, instr.value), instr.from_width)
        self._set_dest(frame, point, instr.dest, term, 8)
        self._advance(frame)

    def _exec_global(self, thread, frame, instr, point):
        frame.regs[instr.dest] = T.const(self.memory.global_addrs[instr.name])
        self._advance(frame)

    def _exec_alloca(self, thread, frame, instr, point):
        obj = self.memory.alloc_stack(
            f"{frame.func.name}.{instr.name}", instr.size)
        frame.stack_objs.append(obj)
        frame.regs[instr.dest] = T.const(obj.base)
        self._advance(frame)

    def _exec_malloc(self, thread, frame, instr, point):
        size = self._value(frame, instr.size)
        if not size.is_const:
            size = T.const(self._concretize(
                size, "allocation size concretization"))
        obj = self.memory.alloc_heap(size.value)
        frame.regs[instr.dest] = T.const(obj.base)
        self._advance(frame)

    def _exec_free(self, thread, frame, instr, point):
        addr = self._value(frame, instr.addr)
        if not addr.is_const:
            obj, _offset = self._decompose_address(addr)
            if obj is None:
                raise TraceDivergence(f"free of unmapped address at {point}")
            addr = T.const(obj.base)
        try:
            self.memory.free_heap(addr.value)
        except Exception as exc:
            raise TraceDivergence(f"free diverged at {point}: {exc}") from None
        self._advance(frame)

    def _exec_gep(self, thread, frame, instr, point):
        base = self._value(frame, instr.base)
        index = self._value(frame, instr.index)
        scaled = T.binop("mul", index, T.const(instr.scale), 64)
        term = T.binop("add", base, scaled, 64)
        self._set_dest(frame, point, instr.dest, term, 8)
        self._advance(frame)

    def _exec_load(self, thread, frame, instr, point):
        addr = self._value(frame, instr.addr)
        obj, offset = self._access(point, addr, instr.size, is_store=False)
        if obj is None:
            # failing access: no value materializes (trap)
            frame.regs[instr.dest] = T.const(0)
            self._advance(frame)
            return
        if offset.is_const:
            base_off = offset.value
            parts = [obj.read_byte(base_off + i) for i in range(instr.size)]
        else:
            parts = [obj.read_sym(T.binop("add", offset, T.const(i), 64))
                     for i in range(instr.size)]
        term = T.concat(parts)
        self._set_dest(frame, point, instr.dest, term, instr.size)
        self._advance(frame)

    def _exec_store(self, thread, frame, instr, point):
        addr = self._value(frame, instr.addr)
        value = self._value(frame, instr.value)
        obj, offset = self._access(point, addr, instr.size, is_store=True)
        if obj is None:
            self._advance(frame)
            return
        if offset.is_const:
            for i in range(instr.size):
                obj.write_byte(offset.value + i, T.extract(value, i))
        else:
            for i in range(instr.size):
                obj.write_sym(T.binop("add", offset, T.const(i), 64),
                              T.extract(value, i))
        self._advance(frame)

    def _exec_jmp(self, thread, frame, instr, point):
        frame.block = instr.label
        frame.index = 0

    def _exec_br(self, thread, frame, instr, point):
        event = self._next_event((TntEvent, GapEvent), point)
        cond = self._value(frame, instr.cond)
        if isinstance(event, GapEvent):
            taken = self._gap_outcome(cond)
        else:
            taken = event.taken
        if cond.is_const:
            if bool(cond.value) != taken:
                raise TraceDivergence(
                    f"concrete branch disagrees with trace at {point}")
        else:
            cond_bool = T.bool_term(cond)
            self._add_constraint(cond_bool if taken
                                 else T.not_(cond_bool))
        frame.block = instr.if_true if taken else instr.if_false
        frame.index = 0

    def _gap_outcome(self, cond: Term) -> bool:
        """Outcome for a branch whose TNT bit was lost.

        A concrete condition decides itself (free recovery); a symbolic
        one takes the committed decision for this gap index, defaulting
        to 'taken' — the gap-recovery driver flips decisions on
        divergence (see :mod:`repro.symex.gaps`).
        """
        if cond.is_const:
            # concrete conditions recover the lost bit for free and do
            # not consume a decision slot
            return bool(cond.value)
        index = len(self.gap_bits_used)
        taken = (self.gap_decisions[index]
                 if index < len(self.gap_decisions) else True)
        self.gap_bits_used.append(taken)
        return taken

    def _exec_call(self, thread, frame, instr, point):
        callee = self.module.function(instr.func)
        regs = {p: self._value(frame, a)
                for p, a in zip(callee.params, instr.args)}
        self._advance(frame)
        thread.frames.append(SymFrame(callee, next(iter(callee.blocks)), 0,
                                      regs, ret_reg=instr.dest))

    def _exec_ret(self, thread, frame, instr, point):
        value = (T.const(0) if instr.value is None
                 else self._value(frame, instr.value))
        for obj in frame.stack_objs:
            obj.live = False
        thread.frames.pop()
        if not thread.frames:
            thread.done = True
            return
        if frame.ret_reg is not None:
            thread.frame.regs[frame.ret_reg] = value

    def _exec_input(self, thread, frame, instr, point):
        term = self.sym_env.read(instr.stream, instr.size)
        # provenance on each byte too: recording the input register once
        # determines all of its bytes
        prov = (point, instr.dest, instr.size)
        if term.op == "concat":
            for part in term.args:
                if part.prov is None:
                    part.prov = prov
        self._set_dest(frame, point, instr.dest, term, instr.size)
        self._advance(frame)

    def _exec_output(self, thread, frame, instr, point):
        self.outputs.setdefault(instr.stream, []).append(
            self._value(frame, instr.value))
        self._advance(frame)

    def _exec_assert(self, thread, frame, instr, point):
        # a retired assert passed in production
        cond = self._value(frame, instr.cond)
        if cond.is_const:
            if cond.value == 0:
                raise TraceDivergence(f"assert trivially fails at {point}")
        else:
            self._add_constraint(T.cmp("ne", cond, T.const(0), 64))
        self._advance(frame)

    def _exec_abort(self, thread, frame, instr, point):
        # aborts never retire; reaching here means the trace kept going
        raise TraceDivergence(f"abort executed mid-trace at {point}")

    def _exec_ptwrite(self, thread, frame, instr, point):
        event = self._next_event(PtwEvent, point)
        if event.tag != instr.tag:
            raise TraceDivergence(
                f"PTW tag mismatch at {point}: trace {event.tag}, "
                f"program {instr.tag}")
        value = self._value(frame, instr.value)
        if value.is_const:
            if value.value != event.value:
                raise TraceDivergence(
                    f"PTW value mismatch at {point}")
        else:
            self._add_constraint(T.cmp("eq", value, T.const(event.value), 64))
            if isinstance(instr.value, str):
                # concretize: this is what simplifies later constraints
                frame.regs[instr.value] = T.const(event.value)
        self._advance(frame)

    def _exec_spawn(self, thread, frame, instr, point):
        callee = self.module.function(instr.func)
        regs = {p: self._value(frame, a)
                for p, a in zip(callee.params, instr.args)}
        tid = self._next_tid
        self._next_tid += 1
        self.threads[tid] = SymThread(
            tid, [SymFrame(callee, next(iter(callee.blocks)), 0, regs)])
        frame.regs[instr.dest] = T.const(tid)
        self._advance(frame)

    def _exec_nop(self, thread, frame, instr, point):
        self._advance(frame)
