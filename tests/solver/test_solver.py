"""The budgeted search solver: propagation, search, arrays, budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverTimeout, UnsatError
from repro.solver import terms as T
from repro.solver.budget import Budget, UnlimitedBudget
from repro.solver.evaluator import tv_eval
from repro.solver.model import Model, input_var_name, parse_var_name
from repro.solver.solver import Solver


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def check_model(model, constraints):
    for c in constraints:
        assert tv_eval(T.bool_term(c), model.assignment,
                       UnlimitedBudget()) == 1, c


class TestPropagation:
    def test_direct_equality(self):
        cs = [T.cmp("eq", T.var("a"), T.const(42), 8)]
        m = Solver().solve(cs)
        assert m["a"] == 42

    def test_add_inversion(self):
        cs = [T.cmp("eq", T.binop("add", T.var("a"), T.const(10), 8),
                    T.const(5), 8)]
        m = Solver().solve(cs)
        assert (m["a"] + 10) % 256 == 5

    def test_xor_inversion(self):
        cs = [T.cmp("eq", T.binop("xor", T.var("a"), T.const(0xFF), 8),
                    T.const(0x0F), 8)]
        assert Solver().solve(cs)["a"] == 0xF0

    def test_concat_propagates_bytes(self):
        word = T.concat([T.var("a"), T.var("b"), T.var("c"), T.var("d")])
        cs = [T.cmp("eq", word, T.const(0x04030201), 32)]
        m = Solver().solve(cs)
        assert [m["a"], m["b"], m["c"], m["d"]] == [1, 2, 3, 4]

    def test_contradiction_unsat(self):
        a = T.var("a")
        cs = [T.cmp("eq", a, T.const(1), 8), T.cmp("eq", a, T.const(2), 8)]
        with pytest.raises(UnsatError):
            Solver().solve(cs)

    def test_trivially_false_unsat(self):
        with pytest.raises(UnsatError):
            Solver().solve([T.FALSE])


class TestSearch:
    def test_sum_constraint(self):
        a, b = T.var("a"), T.var("b")
        cs = [T.cmp("eq", T.binop("add", a, b, 8), T.const(100), 8),
              T.cmp("ugt", a, T.const(40), 8),
              T.cmp("ult", a, T.const(50), 8)]
        m = Solver().solve(cs)
        check_model(m, cs)

    def test_case_insensitive_keyword_pattern(self):
        # (ch | 0x20) == 's' — the SQLite accuracy pattern
        ch = T.var("q")
        cs = [T.cmp("eq", T.binop("or", ch, T.const(0x20), 8),
                    T.const(ord("s")), 8)]
        m = Solver().solve(cs)
        assert m["q"] in (ord("s"), ord("S"))

    def test_range_on_multibyte_word(self):
        word = T.concat([T.var(f"b{i}") for i in range(4)])
        cs = [T.cmp("ugt", word, T.const(256), 32),
              T.cmp("ule", word, T.const(300), 32)]
        m = Solver().solve(cs)
        check_model(m, cs)

    def test_unconstrained_vars_default_zero(self):
        cs = [T.cmp("eq", T.var("a"), T.const(1), 8)]
        m = Solver().solve(cs)
        assert m["never-mentioned"] == 0

    def test_ne_chain(self):
        a = T.var("a")
        cs = [T.cmp("ne", a, T.const(v), 8) for v in range(5)]
        m = Solver().solve(cs)
        assert m["a"] >= 5


class TestArrays:
    def test_table_content_scan(self):
        table = bytearray(64)
        table[17] = 0x7F
        arr = T.array("tbl", bytes(table))
        idx = T.var("i")
        cs = [T.cmp("eq", T.read(arr, idx), T.const(0x7F, 8), 8)]
        m = Solver().solve(cs)
        assert m["i"] == 17

    def test_fold_table_lookup(self):
        fold = bytes(c + 32 if 65 <= c <= 90 else c for c in range(256))
        arr = T.array("fold", fold)
        ch = T.var("c")
        cs = [T.cmp("eq", T.read(arr, ch), T.const(ord("k"), 8), 8)]
        m = Solver().solve(cs)
        assert m["c"] in (ord("k"), ord("K"))

    def test_read_over_symbolic_write(self):
        arr = T.array("A", bytes(16))
        i, j = T.var("i"), T.var("j")
        chain = T.store(arr, i, T.const(9, 8))
        cs = [T.cmp("eq", T.read(chain, j), T.const(9, 8), 8),
              T.cmp("ult", i, T.const(16), 8),
              T.cmp("ult", j, T.const(16), 8)]
        m = Solver().solve(cs)
        check_model(m, cs)
        assert m["i"] == m["j"]

    def test_aliasing_required_unsat(self):
        arr = T.array("A", bytes(4))
        i = T.var("i")
        chain = T.store(arr, i, T.const(9, 8))
        # read elsewhere must see 0, but we demand 9 at a distinct index
        cs = [T.cmp("ult", i, T.const(4), 8),
              T.cmp("eq", T.read(chain, T.const(2)), T.const(9, 8), 8),
              T.cmp("ne", i, T.const(2), 8)]
        with pytest.raises(UnsatError):
            Solver().solve(cs)


class TestBudget:
    def test_timeout_on_long_chain(self):
        arr = T.array("A", bytes(2048))
        node = arr
        for i in range(150):
            node = T.store(node, T.binop("add", T.var("x"), T.const(i)),
                           T.var("v"))
        cs = [T.cmp("eq", T.read(node, T.var("y")), T.const(1, 8), 8),
              T.cmp("ult", T.var("x"), T.const(200), 64)]
        with pytest.raises(SolverTimeout):
            Solver(work_limit=500).solve(cs)

    def test_budget_carries_across_calls(self):
        budget = Budget(10_000)
        solver = Solver()
        solver.solve([T.cmp("eq", T.var("a"), T.const(1), 8)], budget)
        first = budget.spent
        solver.solve([T.cmp("eq", T.var("b"), T.const(2), 8)], budget)
        assert budget.spent > first

    def test_is_feasible(self):
        s = Solver()
        assert s.is_feasible([T.cmp("eq", T.var("a"), T.const(3), 8)])
        assert not s.is_feasible([T.FALSE])


class TestFeasibleValues:
    def test_enumerates_distinct(self):
        a = T.var("a")
        cs = [T.cmp("ult", a, T.const(3), 8)]
        values = Solver().feasible_values(a, cs, limit=10)
        assert sorted(values) == [0, 1, 2]

    def test_respects_limit(self):
        a = T.var("a")
        values = Solver().feasible_values(a, [], limit=4)
        assert len(values) == 4 and len(set(values)) == 4

    def test_singleton(self):
        a = T.var("a")
        cs = [T.cmp("eq", a, T.const(9), 8)]
        assert Solver().feasible_values(a, cs, limit=8) == [9]


class TestModel:
    def test_streams_reassembly(self):
        m = Model({input_var_name("stdin", 0): 0x41,
                   input_var_name("stdin", 2): 0x43,
                   "not-an-input": 7})
        assert m.streams() == {"stdin": b"A\x00C"}

    def test_parse_var_name(self):
        assert parse_var_name("net#12") == ("net", 12)
        assert parse_var_name("plain") is None

    def test_eval_term(self):
        m = Model({"a": 3, "b": 4})
        t = T.binop("mul", T.var("a"), T.var("b"))
        assert m.eval_term(t) == 12


# -- property: models satisfy; unsat agrees with brute force -------------

_byte = st.integers(0, 255)


@st.composite
def small_constraints(draw):
    """Random constraints over two byte vars (brute-forceable)."""
    a, b = T.var("p0"), T.var("p1")
    out = []
    for _ in range(draw(st.integers(1, 4))):
        op = draw(st.sampled_from(["eq", "ne", "ult", "ule", "ugt"]))
        shape = draw(st.integers(0, 2))
        if shape == 0:
            lhs = a
        elif shape == 1:
            lhs = T.binop(draw(st.sampled_from(["add", "xor", "and"])),
                          a, b, 8)
        else:
            lhs = T.binop("add", b, T.const(draw(_byte)), 8)
        out.append(T.cmp(op, lhs, T.const(draw(_byte)), 8))
    return out


class TestSolverProperty:
    @settings(max_examples=60, deadline=None)
    @given(small_constraints())
    def test_model_satisfies_or_unsat_is_right(self, constraints):
        T.clear_term_cache()
        # rebuild constraints in the fresh cache by structural identity:
        # they are still valid Term objects, evaluation is structural
        try:
            model = Solver().solve(constraints)
        except UnsatError:
            # verify by brute force over both bytes
            for va in range(256):
                for vb in range(256):
                    env = {"p0": va, "p1": vb}
                    if all(tv_eval(c, env, UnlimitedBudget()) == 1
                           for c in constraints):
                        pytest.fail(f"solver said unsat but {env} works")
            return
        check_model(model, constraints)
