"""Scalar helpers: masking, signedness, byte codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.types import (MASK64, bytes_le, from_signed, int_le, mask,
                            sign_extend, to_signed)

WIDTHS = (1, 8, 16, 32, 64)


class TestMask:
    def test_mask_truncates(self):
        assert mask(0x1FF, 8) == 0xFF

    def test_mask_default_is_64_bits(self):
        assert mask(1 << 64) == 0
        assert mask((1 << 64) + 5) == 5

    def test_mask_identity_when_fits(self):
        assert mask(42, 8) == 42

    @given(st.integers(min_value=-(1 << 70), max_value=1 << 70),
           st.sampled_from(WIDTHS))
    def test_mask_range(self, value, width):
        assert 0 <= mask(value, width) < (1 << width)


class TestSigned:
    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_to_signed_positive(self):
        assert to_signed(0x7F, 8) == 127

    def test_from_signed_roundtrip(self):
        assert from_signed(-1, 8) == 0xFF

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_roundtrip_64(self, value):
        assert to_signed(from_signed(value, 64), 64) == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.sampled_from((8, 16, 32)))
    def test_to_from_signed_inverse(self, value, width):
        value = mask(value, width)
        assert from_signed(to_signed(value, width), width) == value


class TestSignExtend:
    def test_extends_negative(self):
        assert sign_extend(0xFF, 8, 64) == MASK64

    def test_keeps_positive(self):
        assert sign_extend(0x7F, 8, 64) == 0x7F

    def test_extend_32_to_64(self):
        assert sign_extend(0x80000000, 32, 64) == 0xFFFFFFFF80000000


class TestByteCodec:
    def test_bytes_le(self):
        assert bytes_le(0x0102, 2) == b"\x02\x01"

    def test_int_le(self):
        assert int_le(b"\x02\x01") == 0x0102

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.sampled_from((1, 2, 4, 8)))
    def test_roundtrip(self, value, size):
        value = mask(value, size * 8)
        assert int_le(bytes_le(value, size)) == value
