"""Human-readable rendering of decoded PT traces (the CLI's `trace`)."""

from __future__ import annotations

from typing import List

from .decoder import DecodedTrace
from .packets import PtwEvent, TntEvent


def format_chunk_events(events, per_line: int = 24) -> List[str]:
    """Compact event strings: TNT bits as +/-, PTWs as tag=value."""
    cells = []
    for event in events:
        if isinstance(event, TntEvent):
            cells.append("+" if event.taken else "-")
        elif isinstance(event, PtwEvent):
            cells.append(f"[ptw {event.tag}={event.value:#x}]")
    lines = []
    current = ""
    count = 0
    for cell in cells:
        current += cell
        count += 1
        if count >= per_line and len(cell) == 1:
            lines.append(current)
            current = ""
            count = 0
    if current:
        lines.append(current)
    return lines or [""]


def format_trace(trace: DecodedTrace, max_chunks: int = 50) -> str:
    """Render a decoded trace: per-chunk header + event summary."""
    lines = [
        f"decoded trace: {len(trace.chunks)} chunk(s), "
        f"{trace.instr_count} instructions, {trace.branch_count} branch "
        f"bits, {len(trace.ptwrites())} ptwrites"
        + (", TRUNCATED" if trace.truncated else "")
    ]
    for index, chunk in enumerate(trace.chunks[:max_chunks]):
        lines.append(
            f"  chunk {index:3d}  tid={chunk.tid}  ts={chunk.timestamp:<6d}"
            f" instrs={chunk.n_instrs:<6d} events={len(chunk.events)}")
        for event_line in format_chunk_events(chunk.events):
            if event_line:
                lines.append(f"      {event_line}")
    if len(trace.chunks) > max_chunks:
        lines.append(f"  ... {len(trace.chunks) - max_chunks} more chunks")
    return "\n".join(lines)
