"""Cycle-level overhead model for online monitoring (Fig. 6 substrate).

We model runtime cost in abstract cycles:

* every retired instruction costs :data:`CPI` cycles;
* Intel-PT-style tracing adds a small cost per emitted trace byte (the
  hardware writes packets to memory) and a fixed cost per executed
  ``ptwrite`` instruction;
* rr-style record/replay adds a multiplicative instrumentation tax plus a
  large fixed cost per intercepted non-deterministic event (syscalls,
  scheduling) — the published rr overheads (49–685 %, §6) come from
  event-dense workloads.

The harness perturbs measurements with seeded noise so repeated runs give
realistic error bars.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..interp.interpreter import RunResult

#: base cycles per instruction
CPI = 1.0
#: cycles per trace byte written by the PT hardware
PT_BYTE_COST = 0.012
#: extra cycles per executed ptwrite instruction
PTWRITE_COST = 3.0
#: rr: multiplicative tax on every instruction (trap handling, chunking)
RR_INSTR_TAX = 0.14
#: rr: cycles per recorded non-deterministic event
RR_EVENT_COST = 700.0
#: rr: cycles per scheduler chunk (serialization of threads)
RR_CHUNK_COST = 40.0


@dataclass
class OverheadSample:
    """One measured run: baseline cycles and monitored cycles."""

    base_cycles: float
    monitored_cycles: float

    @property
    def overhead(self) -> float:
        """Fractional overhead, e.g. 0.003 for +0.3 %."""
        return self.monitored_cycles / self.base_cycles - 1.0


class OverheadModel:
    """Computes modelled runtimes for one execution under each monitor."""

    def __init__(self, noise: float = 0.0005, seed: Optional[int] = None):
        self._rng = random.Random(seed)
        self.noise = noise

    def _jitter(self) -> float:
        return 1.0 + self._rng.gauss(0.0, self.noise)

    def baseline_cycles(self, run: RunResult) -> float:
        return run.instr_count * CPI * self._jitter()

    def er_sample(self, run: RunResult, trace_bytes: int) -> OverheadSample:
        """ER monitoring: PT control flow + recorded key data values."""
        base = run.instr_count * CPI
        monitored = (base
                     + trace_bytes * PT_BYTE_COST
                     + run.ptwrite_count * PTWRITE_COST)
        return OverheadSample(base * self._jitter(),
                              monitored * self._jitter())

    def rr_sample(self, run: RunResult) -> OverheadSample:
        """rr-style full record/replay of the same execution.

        Scheduler chunks only cost when the program is multithreaded:
        rr serializes threads onto one core and pays a switch cost per
        chunk, while single-threaded programs have no such events.
        """
        base = run.instr_count * CPI
        chunk_cost = (run.chunk_count * RR_CHUNK_COST
                      if run.thread_count > 1 else 0.0)
        monitored = (base * (1.0 + RR_INSTR_TAX)
                     + run.env.syscall_estimate() * RR_EVENT_COST
                     + chunk_cost)
        return OverheadSample(base * self._jitter(),
                              monitored * self._jitter())
