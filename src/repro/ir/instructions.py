"""Instruction set of the miniature IR.

The IR is a register machine (not SSA): each function has an unbounded set
of mutable virtual registers written as ``%name``.  Operands are either a
register name (a ``str`` beginning with ``%``) or an integer immediate.

The instruction set is deliberately close to the subset of LLVM IR that the
paper's KLEE-based prototype consumes: arithmetic/logic with explicit
widths, byte-addressed loads/stores, direct calls, conditional branches,
plus the pieces ER needs — ``input`` (non-deterministic environment data),
``ptwrite`` (key-data-value recording), threading primitives, and explicit
heap management so that use-after-free and overflow bugs trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .types import VALID_ACCESS_SIZES, VALID_WIDTHS

#: An operand: a register name (``"%x"``) or an immediate integer.
Operand = Union[str, int]

BINARY_OPS = (
    "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)

CMP_OPS = ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge")


def is_register(operand: Operand) -> bool:
    """True if ``operand`` names a virtual register."""
    return isinstance(operand, str)


@dataclass
class Instr:
    """Base class for all instructions."""

    def operands(self) -> Tuple[Operand, ...]:
        """Operands read by this instruction (registers and immediates)."""
        return ()

    def dest_register(self) -> Optional[str]:
        """The register written by this instruction, if any."""
        return getattr(self, "dest", None)

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, Jmp, Ret, Abort))


@dataclass
class Const(Instr):
    """``%dest = const <value>``"""

    dest: str
    value: int


@dataclass
class BinOp(Instr):
    """``%dest = <op>.<width> <lhs>, <rhs>`` — result masked to ``width``."""

    dest: str
    op: str
    lhs: Operand
    rhs: Operand
    width: int = 64

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")
        if self.width not in VALID_WIDTHS:
            raise ValueError(f"invalid width {self.width}")

    def operands(self):
        return (self.lhs, self.rhs)


@dataclass
class Cmp(Instr):
    """``%dest = cmp <op>.<width> <lhs>, <rhs>`` — result is 0 or 1."""

    dest: str
    op: str
    lhs: Operand
    rhs: Operand
    width: int = 64

    def __post_init__(self):
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")
        if self.width not in VALID_WIDTHS:
            raise ValueError(f"invalid width {self.width}")

    def operands(self):
        return (self.lhs, self.rhs)


@dataclass
class Select(Instr):
    """``%dest = select <cond>, <if_true>, <if_false>``"""

    dest: str
    cond: Operand
    if_true: Operand
    if_false: Operand

    def operands(self):
        return (self.cond, self.if_true, self.if_false)


@dataclass
class Trunc(Instr):
    """``%dest = trunc.<width> <value>`` — zero-extended back to 64 bits."""

    dest: str
    value: Operand
    width: int = 32

    def operands(self):
        return (self.value,)


@dataclass
class SExt(Instr):
    """``%dest = sext.<from_width> <value>`` — sign extend to 64 bits."""

    dest: str
    value: Operand
    from_width: int = 32

    def operands(self):
        return (self.value,)


@dataclass
class GlobalAddr(Instr):
    """``%dest = global <name>`` — address of a module-level object."""

    dest: str
    name: str


@dataclass
class FrameAlloc(Instr):
    """``%dest = alloca <name>, <size>`` — stack object, freed on return."""

    dest: str
    name: str
    size: int


@dataclass
class HeapAlloc(Instr):
    """``%dest = malloc <size>`` — heap object."""

    dest: str
    size: Operand

    def operands(self):
        return (self.size,)


@dataclass
class HeapFree(Instr):
    """``free <addr>`` — subsequent accesses trap as use-after-free."""

    addr: Operand

    def operands(self):
        return (self.addr,)


@dataclass
class Gep(Instr):
    """``%dest = gep <base>, <index>, <scale>`` — base + index*scale."""

    dest: str
    base: Operand
    index: Operand
    scale: int = 1

    def operands(self):
        return (self.base, self.index)


@dataclass
class Load(Instr):
    """``%dest = load.<size> <addr>`` — little-endian, size in bytes."""

    dest: str
    addr: Operand
    size: int = 8

    def __post_init__(self):
        if self.size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid load size {self.size}")

    def operands(self):
        return (self.addr,)


@dataclass
class Store(Instr):
    """``store.<size> <addr>, <value>``"""

    addr: Operand
    value: Operand
    size: int = 8

    def __post_init__(self):
        if self.size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid store size {self.size}")

    def operands(self):
        return (self.addr, self.value)


@dataclass
class Jmp(Instr):
    """``jmp <label>`` — unconditional, emits no trace packet."""

    label: str


@dataclass
class Br(Instr):
    """``br <cond>, <if_true>, <if_false>`` — emits one TNT bit."""

    cond: Operand
    if_true: str
    if_false: str

    def operands(self):
        return (self.cond,)


@dataclass
class Call(Instr):
    """``%dest = call <func>(<args>)`` — direct call; dest optional."""

    dest: Optional[str]
    func: str
    args: List[Operand] = field(default_factory=list)

    def operands(self):
        return tuple(self.args)


@dataclass
class Ret(Instr):
    """``ret <value>`` or bare ``ret``."""

    value: Optional[Operand] = None

    def operands(self):
        return () if self.value is None else (self.value,)


@dataclass
class Input(Instr):
    """``%dest = input <stream>, <size>``.

    Reads ``size`` bytes (little-endian) from the named environment stream.
    In production this is a syscall-like source of non-determinism; during
    symbolic execution it introduces fresh symbolic bytes.
    """

    dest: str
    stream: str
    size: int = 1

    def __post_init__(self):
        if self.size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid input size {self.size}")


@dataclass
class Output(Instr):
    """``output <stream>, <value>, <size>`` — writes to the environment."""

    stream: str
    value: Operand
    size: int = 8

    def operands(self):
        return (self.value,)


@dataclass
class Assert(Instr):
    """``assert <cond>, "message"`` — failure if cond is zero."""

    cond: Operand
    message: str = "assertion failed"

    def operands(self):
        return (self.cond,)


@dataclass
class Abort(Instr):
    """``abort "message"`` — unconditional failure (e.g. abort(3))."""

    message: str = "abort"


@dataclass
class PtWrite(Instr):
    """``ptwrite <value>, <tag>`` — record a key data value into the trace.

    Inserted by ER's instrumentation pass; models the x86 ``ptwrite``
    instruction emitting a PTW packet.
    """

    value: Operand
    tag: int = 0

    def operands(self):
        return (self.value,)


@dataclass
class Spawn(Instr):
    """``%dest = spawn <func>(<args>)`` — start a thread; dest = tid."""

    dest: str
    func: str
    args: List[Operand] = field(default_factory=list)

    def operands(self):
        return tuple(self.args)


@dataclass
class Join(Instr):
    """``join <tid>`` — block until the thread finishes."""

    tid: Operand

    def operands(self):
        return (self.tid,)


@dataclass
class Lock(Instr):
    """``lock <mutex>`` — acquire mutex (identified by integer id)."""

    mutex: Operand

    def operands(self):
        return (self.mutex,)


@dataclass
class Unlock(Instr):
    """``unlock <mutex>``"""

    mutex: Operand

    def operands(self):
        return (self.mutex,)


@dataclass
class Nop(Instr):
    """``nop`` — placeholder; consumes one cycle."""

    comment: str = ""
