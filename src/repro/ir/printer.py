"""Textual serialization of IR modules (inverse of ``repro.ir.parser``)."""

from __future__ import annotations

from typing import List

from . import instructions as ins
from .instructions import Instr, Operand
from .module import Function, Module


def _operand(op: Operand) -> str:
    return op if isinstance(op, str) else str(op)


def _args(args) -> str:
    return ", ".join(_operand(a) for a in args)


def format_instr(instr: Instr) -> str:
    """Render one instruction in the textual syntax."""
    if isinstance(instr, ins.Const):
        return f"{instr.dest} = const {instr.value}"
    if isinstance(instr, ins.BinOp):
        return (f"{instr.dest} = {instr.op}.{instr.width} "
                f"{_operand(instr.lhs)}, {_operand(instr.rhs)}")
    if isinstance(instr, ins.Cmp):
        return (f"{instr.dest} = cmp {instr.op}.{instr.width} "
                f"{_operand(instr.lhs)}, {_operand(instr.rhs)}")
    if isinstance(instr, ins.Select):
        return (f"{instr.dest} = select {_operand(instr.cond)}, "
                f"{_operand(instr.if_true)}, {_operand(instr.if_false)}")
    if isinstance(instr, ins.Trunc):
        return f"{instr.dest} = trunc.{instr.width} {_operand(instr.value)}"
    if isinstance(instr, ins.SExt):
        return f"{instr.dest} = sext.{instr.from_width} {_operand(instr.value)}"
    if isinstance(instr, ins.GlobalAddr):
        return f"{instr.dest} = global {instr.name}"
    if isinstance(instr, ins.FrameAlloc):
        return f"{instr.dest} = alloca {instr.name}, {instr.size}"
    if isinstance(instr, ins.HeapAlloc):
        return f"{instr.dest} = malloc {_operand(instr.size)}"
    if isinstance(instr, ins.HeapFree):
        return f"free {_operand(instr.addr)}"
    if isinstance(instr, ins.Gep):
        return (f"{instr.dest} = gep {_operand(instr.base)}, "
                f"{_operand(instr.index)}, {instr.scale}")
    if isinstance(instr, ins.Load):
        return f"{instr.dest} = load.{instr.size} {_operand(instr.addr)}"
    if isinstance(instr, ins.Store):
        return (f"store.{instr.size} {_operand(instr.addr)}, "
                f"{_operand(instr.value)}")
    if isinstance(instr, ins.Jmp):
        return f"jmp {instr.label}"
    if isinstance(instr, ins.Br):
        return (f"br {_operand(instr.cond)}, {instr.if_true}, "
                f"{instr.if_false}")
    if isinstance(instr, ins.Call):
        call = f"call {instr.func}({_args(instr.args)})"
        return f"{instr.dest} = {call}" if instr.dest else call
    if isinstance(instr, ins.Ret):
        return "ret" if instr.value is None else f"ret {_operand(instr.value)}"
    if isinstance(instr, ins.Input):
        return f"{instr.dest} = input {instr.stream}, {instr.size}"
    if isinstance(instr, ins.Output):
        return (f"output {instr.stream}, {_operand(instr.value)}, "
                f"{instr.size}")
    if isinstance(instr, ins.Assert):
        return f"assert {_operand(instr.cond)}, {instr.message!r}"
    if isinstance(instr, ins.Abort):
        return f"abort {instr.message!r}"
    if isinstance(instr, ins.PtWrite):
        return f"ptwrite {_operand(instr.value)}, {instr.tag}"
    if isinstance(instr, ins.Spawn):
        return f"{instr.dest} = spawn {instr.func}({_args(instr.args)})"
    if isinstance(instr, ins.Join):
        return f"join {_operand(instr.tid)}"
    if isinstance(instr, ins.Lock):
        return f"lock {_operand(instr.mutex)}"
    if isinstance(instr, ins.Unlock):
        return f"unlock {_operand(instr.mutex)}"
    if isinstance(instr, ins.Nop):
        return "nop" if not instr.comment else f"nop  ; {instr.comment}"
    raise TypeError(f"cannot print {type(instr).__name__}")


def format_function(func: Function) -> str:
    lines: List[str] = [f"func {func.name}({', '.join(func.params)}) {{"]
    for block in func.blocks.values():
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"  {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module as parseable text."""
    lines: List[str] = [f"module {module.name}", ""]
    for obj in module.globals.values():
        if obj.init:
            lines.append(f"global {obj.name} {obj.size} = {obj.init.hex()}")
        else:
            lines.append(f"global {obj.name} {obj.size}")
    if module.globals:
        lines.append("")
    for func in module.functions.values():
        lines.append(format_function(func))
        lines.append("")
    return "\n".join(lines)
