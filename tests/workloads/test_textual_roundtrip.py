"""Every workload module survives the textual IR round-trip.

This is the parser/printer's integration test at application scale: the
13 Table-1 programs plus od/pr are serialized, reparsed, verified, and
re-executed with identical results.
"""

import pytest

from repro.interp.interpreter import Interpreter
from repro.ir import format_module, parse_module, verify_module
from repro.workloads import all_workloads
from repro.workloads.coreutils import coreutils_modules

WORKLOADS = all_workloads()
IDS = [w.name for w in WORKLOADS]


@pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
class TestWorkloadRoundTrip:
    def test_format_parse_fixpoint(self, workload):
        text = format_module(workload.module())
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_reparsed_module_reproduces_failure(self, workload):
        reparsed = parse_module(format_module(workload.module()))
        original = Interpreter(workload.fresh_module(),
                               workload.failing_env(1)).run()
        again = Interpreter(reparsed, workload.failing_env(1)).run()
        assert again.failure is not None
        assert again.failure.matches(original.failure)
        assert again.instr_count == original.instr_count


@pytest.mark.parametrize("name,module", [
    (name, module) for name, module, _, _ in coreutils_modules()
])
def test_coreutils_roundtrip(name, module):
    text = format_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert format_module(reparsed) == text
