"""Mini key-value server: Memcached CVE-2019-11596 (MT NULL deref).

The real bug: a ``lru_crawler metadump`` racing with connection
teardown dereferences a connection pointer another thread has already
cleared.  The mini server runs two worker threads over per-connection
command streams sharing an item hash table (write-chain fuel) and a
global ``stats_conn`` pointer:

* ``W`` (watch)  — publishes the worker's connection as the stats sink.
* ``Q`` (quit)   — tears the connection down, clearing ``stats_conn``.
* ``D`` (dump)   — checks ``stats_conn``, iterates items (a delay that
  spans a scheduler quantum), then *re-reads* the pointer and
  dereferences it: the TOCTOU window.
* ``S<k><v>``    — stores an item (hash insert).
* ``G<k>``       — item lookup.

Under the failing schedule, worker 1's ``Q`` lands in worker 0's dump
window, so the re-read returns NULL — the coarse-grained interleaving
the paper's §3.4 timestamp replay is built for.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

ITEM_SLOTS = 32


def build_memcached() -> Module:
    b = ModuleBuilder("memcached-2019-11596")
    b.global_("item_table", ITEM_SLOTS * 8)
    b.global_("stats_conn", 8)
    b.global_("conn0", 16)
    b.global_("conn1", 16)

    # item_put(key, value): hash insert (chain fuel)
    f = b.function("item_put", ["key", "value"])
    f.block("entry")
    h0 = f.mul("%key", 3, width=32)
    h = f.add(h0, "%value", width=32, dest="%h")
    slot = f.urem("%h", ITEM_SLOTS, dest="%slot")
    tbl = f.global_addr("item_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")

    # item_get(key)
    f = b.function("item_get", ["key"])
    f.block("entry")
    slot = f.urem("%key", ITEM_SLOTS, dest="%slot")
    tbl = f.global_addr("item_table")
    sp = f.gep(tbl, "%slot", 8)
    v = f.load(sp, 8, dest="%v")
    # LRU accounting: per-hit bookkeeping work
    f.const(0, dest="%k")
    f.jmp("lru")
    f.block("lru")
    done = f.cmp("uge", "%k", 24)
    f.br(done, "out", "body")
    f.block("body")
    sh = f.shl("%v", 1, width=32)
    f.xor(sh, "%k", width=32, dest="%v")
    f.add("%k", 1, dest="%k")
    f.jmp("lru")
    f.block("out")
    f.ret("%v")

    # dump_items(): iterate the table — the delay inside the race window
    f = b.function("dump_items", [])
    f.block("entry")
    tbl = f.global_addr("item_table", dest="%tbl")
    f.const(0, dest="%i")
    f.const(0, dest="%acc")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", ITEM_SLOTS)
    f.br(done, "out", "body")
    f.block("body")
    p = f.gep("%tbl", "%i", 8)
    v = f.load(p, 8)
    f.add("%acc", v, dest="%acc")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%acc")

    # one worker function per connection stream (reads are static)
    for wid in (0, 1):
        stream = f"conn{wid}"
        f = b.function(f"worker{wid}", [])
        f.block("entry")
        f.jmp("cmd")
        f.block("cmd")
        op = f.input(stream, 1, dest="%op")
        is_end = f.cmp("eq", "%op", 0, width=8)
        f.br(is_end, "out", "chk_set")

        f.block("chk_set")
        is_set = f.cmp("eq", "%op", ord("S"), width=8)
        f.br(is_set, "set", "chk_get")
        f.block("set")
        key = f.input(stream, 1, dest="%key")
        val = f.input(stream, 1, dest="%val")
        f.call("item_put", ["%key", "%val"])
        f.jmp("cmd")

        f.block("chk_get")
        is_get = f.cmp("eq", "%op", ord("G"), width=8)
        f.br(is_get, "get", "chk_watch")
        f.block("get")
        gkey = f.input(stream, 1, dest="%gkey")
        f.call("item_get", ["%gkey"])
        f.jmp("cmd")

        f.block("chk_watch")
        is_watch = f.cmp("eq", "%op", ord("W"), width=8)
        f.br(is_watch, "watch", "chk_quit")
        f.block("watch")
        conn = f.global_addr(f"conn{wid}", dest="%conn")
        scp = f.global_addr("stats_conn", dest="%scp")
        f.store("%scp", "%conn", 8)
        f.jmp("cmd")

        f.block("chk_quit")
        is_quit = f.cmp("eq", "%op", ord("Q"), width=8)
        f.br(is_quit, "quit", "chk_dump")
        f.block("quit")
        # teardown: clear the published stats connection
        scp2 = f.global_addr("stats_conn", dest="%scp2")
        f.store("%scp2", 0, 8)
        f.jmp("cmd")

        f.block("chk_dump")
        is_dump = f.cmp("eq", "%op", ord("D"), width=8)
        f.br(is_dump, "dump", "cmd")
        f.block("dump")
        scp3 = f.global_addr("stats_conn", dest="%scp3")
        sc1 = f.load("%scp3", 8, dest="%sc1")
        has_sink = f.cmp("ne", "%sc1", 0)
        f.br(has_sink, "dump_go", "cmd")
        f.block("dump_go")
        f.call("dump_items", [])        # the delay: spans a quantum
        sc2 = f.load("%scp3", 8, dest="%sc2")
        # BUG: no re-validation — sc2 may have been cleared meanwhile
        flags = f.load("%sc2", 8, dest="%flags")
        f.output("stats", "%flags", 8)
        f.jmp("cmd")

        f.block("out")
        f.ret(0)

    f = b.function("main", [])
    f.block("entry")
    t0 = f.spawn("worker0", [], dest="%t0")
    t1 = f.spawn("worker1", [], dest="%t1")
    f.join("%t0")
    f.join("%t1")
    f.ret(0)
    return b.build()


def _set(key: int, val: int) -> bytes:
    return bytes((ord("S"), key & 0xFF, val & 0xFF))


def _failing_memcached(occurrence: int) -> Environment:
    rng = random.Random(500 + occurrence)
    sets = b"".join(_set(rng.randint(1, 255), rng.randint(1, 255))
                    for _ in range(3))
    # worker 0: stores, then watch + dump (dump_items spans quanta);
    # worker 1: gets for pacing, then quit — lands in the dump window
    conn0 = sets + b"WD\x00"
    pad = b"".join(bytes((ord("G"), rng.randint(1, 255)))
                   for _ in range(1))
    conn1 = pad + b"Q\x00"
    return Environment({"conn0": conn0, "conn1": conn1}, quantum=30)


def _benign_memcached(seed: int) -> Environment:
    rng = random.Random(seed)
    def traffic(allow_dump: bool) -> bytes:
        out = bytearray()
        for _ in range(rng.randint(120, 160)):
            r = rng.random()
            if r < 0.5:
                out += _set(rng.randint(1, 255), rng.randint(1, 255))
            elif r < 0.8:
                out += bytes((ord("G"), rng.randint(1, 255)))
            elif allow_dump:
                out += b"WD"
        out += b"\x00"
        return bytes(out)
    # no quit racing a dump: benign
    return Environment({"conn0": traffic(True), "conn1": traffic(False)},
                       quantum=250)


def memcached_workloads():
    return [Workload(
        name="memcached-2019-11596", app="Memcached 1.5.13",
        bug_id="CVE-2019-11596",
        bug_type="NULL pointer dereference", multithreaded=True,
        expected_kind=FailureKind.NULL_DEREF,
        build=build_memcached,
        failing_env=_failing_memcached, benign_env=_benign_memcached,
        bench_name="memtier_benchmark",
        work_limit=400,
        paper_occurrences=2, paper_instrs=1_840_258)]
