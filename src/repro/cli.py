"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    The Table-1 workload registry.
``reproduce WORKLOAD``
    Run the full iterative reconstruction for one workload and print
    the report (occurrences, recorded values, generated inputs).
``run FILE.eir``
    Execute a textual-IR program against streams given on the command
    line (``--stream name=hex`` or ``name=@path``).
``trace FILE.eir``
    Execute under the PT tracer and dump the decoded trace.
``report``
    Regenerate every evaluation table/figure into one markdown file.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional

from .core import ExecutionReconstructor, ProductionSite
from .errors import ReproError
from .evaluation.formatting import render_table
from .interp.env import Environment
from .interp.interpreter import Interpreter
from .ir import parse_module, verify_module
from .trace.decoder import decode
from .trace.encoder import PTEncoder
from .trace.inspect import format_trace
from .trace.ringbuffer import RingBuffer
from .workloads import all_workloads, get_workload


def _parse_streams(pairs: List[str]) -> Dict[str, bytes]:
    streams: Dict[str, bytes] = {}
    for pair in pairs or ():
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"bad --stream {pair!r}: want name=hex or "
                             "name=@file")
        if value.startswith("@"):
            streams[name] = pathlib.Path(value[1:]).read_bytes()
        elif value.startswith("text:"):
            streams[name] = value[len("text:"):].encode() + b"\x00"
        else:
            streams[name] = bytes.fromhex(value)
    return streams


def _load_module(path: str):
    text = pathlib.Path(path).read_text()
    module = parse_module(text)
    verify_module(module)
    return module


# ----------------------------------------------------------------------
# commands

def cmd_list(args) -> int:
    rows = []
    for workload in all_workloads():
        rows.append([workload.name, workload.app, workload.bug_type,
                     "Y" if workload.multithreaded else "N",
                     workload.paper_occurrences, workload.work_limit])
    print(render_table(
        ["name", "application", "bug type", "MT", "paper #Occur",
         "work limit"], rows, "Table-1 workloads"))
    return 0


def cmd_reproduce(args) -> int:
    workload = get_workload(args.workload)
    module = workload.fresh_module()
    reconstructor = ExecutionReconstructor(
        module,
        work_limit=args.work_limit or workload.work_limit,
        max_occurrences=args.max_occurrences or workload.max_occurrences)
    site = ProductionSite(workload.failing_env,
                          trace_after=args.trace_after)
    report = reconstructor.reconstruct(site)
    print(report.summary())
    if report.success and args.minimize:
        from .core.minimize import minimize_test_case

        minimized = minimize_test_case(workload.fresh_module(),
                                       report.test_case, report.failure)
        print("\nminimized test case:")
        for stream, data in sorted(minimized.streams.items()):
            print(f"  input {stream!r}: {data!r}")
    return 0 if report.success else 1


def cmd_run(args) -> int:
    module = _load_module(args.file)
    env = Environment(_parse_streams(args.stream), quantum=args.quantum)
    result = Interpreter(module, env).run()
    for stream, data in sorted(result.outputs.items()):
        print(f"output {stream!r}: {data.hex()} ({data!r})")
    print(f"{result.instr_count} instructions, "
          f"{result.branch_count} branches, "
          f"{result.thread_count} thread(s)")
    if result.failure is not None:
        print(f"FAILURE: {result.failure}")
        return 1
    print(f"exit value: {result.return_value}")
    return 0


def cmd_trace(args) -> int:
    module = _load_module(args.file)
    env = Environment(_parse_streams(args.stream), quantum=args.quantum)
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder).run()
    trace = decode(encoder.buffer)
    print(format_trace(trace, max_chunks=args.max_chunks))
    print(f"\ntrace bytes: {encoder.bytes_emitted}")
    if result.failure is not None:
        print(f"run failed: {result.failure}")
    return 0


def cmd_report(args) -> int:
    from .evaluation.report import run_full_report

    text = run_full_report(only=args.only,
                           echo=lambda m: print(m, file=sys.stderr))
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Execution Reconstruction (PLDI 2021) — reproduce "
                    "production failures from traces + reoccurrences")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-1 workloads")

    p = sub.add_parser("reproduce",
                       help="reconstruct one workload's failure")
    p.add_argument("workload")
    p.add_argument("--work-limit", type=int, default=None,
                   help="solver budget per query (the 30s-timeout analog)")
    p.add_argument("--max-occurrences", type=int, default=None)
    p.add_argument("--trace-after", type=int, default=0,
                   help="enable tracing only after N untraced failures")
    p.add_argument("--minimize", action="store_true",
                   help="ddmin-shrink the generated test case")

    for name, fn_help in (("run", "execute a textual-IR (.eir) program"),
                          ("trace", "execute and dump the decoded PT "
                                    "trace")):
        p = sub.add_parser(name, help=fn_help)
        p.add_argument("file")
        p.add_argument("--stream", action="append", default=[],
                       metavar="NAME=HEX|NAME=@FILE|NAME=text:STR",
                       help="environment stream contents")
        p.add_argument("--quantum", type=int, default=50)
        if name == "trace":
            p.add_argument("--max-chunks", type=int, default=50)

    p = sub.add_parser("report",
                       help="regenerate every evaluation table/figure")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--only", action="append", default=None,
                   metavar="KEYWORD",
                   help="run only sections whose title contains KEYWORD")

    return parser


COMMANDS = {
    "list": cmd_list,
    "reproduce": cmd_reproduce,
    "run": cmd_run,
    "trace": cmd_trace,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except (ReproError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
