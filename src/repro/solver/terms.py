"""Hash-consed bitvector/array terms: the solver's (and symex's) language.

Term kinds
----------

========== =============================== ==========================
op          args                            width
========== =============================== ==========================
const       (value,)                        value width (bits)
var         (name,)                         8 (input bytes)
array       (name, data_bytes)              object size in *bytes*
store       (array, index, value)           object size in *bytes*
read        (array, index)                  8
add..ashr   (lhs, rhs, opwidth)             64
cmp ops     (lhs, rhs, opwidth)             1
trunc       (value, to_width)               64
sext        (value, from_width)             64
concat      (byte0, byte1, ... LSB first)   8 * n
extract     (value, byte_index)             8
ite         (cond, if_true, if_false)       64
========== =============================== ==========================

Terms are immutable and interned: within one :class:`TermSpace`,
structural equality is identity, which makes memoized traversals cheap.
Each term optionally carries *provenance* — the program point whose
destination register held this value — which is what turns a
constraint-graph node into something ER's runtime can record with a
``ptwrite``.

Interning is **scoped**, not process-global: constructors intern into
the context-local active :class:`TermSpace` (installed with
:func:`term_scope`), falling back to a module-level default space.  A
symbolic-execution session opens its own space, so concurrent engines in
one process cannot cross-pollinate their intern tables, and dropping a
session's space can never invalidate terms held by another session.
Because spaces are scoped, ``Term.__eq__`` is *structural* with an
identity fast path: two structurally equal terms from different spaces
(e.g. a stall term kept across engine runs) still compare and hash
equal.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import SolverError
from ..ir.ops import apply_binop, apply_cmp
from ..ir.types import mask, sign_extend

BINOP_OPS = frozenset((
    "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
    "and", "or", "xor", "shl", "lshr", "ashr",
))
CMP_OPS = frozenset((
    "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
))


class Term:
    """An immutable, interned term node."""

    __slots__ = ("op", "args", "width", "prov", "_free", "_hash")

    def __init__(self, op: str, args: tuple, width: int):
        self.op = op
        self.args = args
        self.width = width
        #: provenance: (ProgramPoint, register, size_bytes) or None
        self.prov = None
        self._free: Optional[FrozenSet[str]] = None
        self._hash = hash((op, args, width))

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        """Structural equality with an identity fast path.

        Terms interned in the same :class:`TermSpace` are identical, so
        same-space comparisons never walk the structure.  Cross-space
        comparisons (a stall term held across engine runs, a cache key
        built in a previous session) fall back to an *iterative*
        structural walk — terms grow far past the recursion limit, so
        nothing here may recurse.
        """
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        if self._hash != other._hash:
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            if a.op != b.op or a.width != b.width or \
                    len(a.args) != len(b.args):
                return False
            for x, y in zip(a.args, b.args):
                if isinstance(x, Term) and isinstance(y, Term):
                    if x is not y:
                        if x._hash != y._hash:
                            return False
                        stack.append((x, y))
                elif type(x) is not type(y) or x != y:
                    return False
        return True

    def __repr__(self):
        if self.op == "const":
            return f"bv({self.args[0]})"
        if self.op == "var":
            return f"λ{self.args[0]}"
        if self.op == "array":
            return f"array({self.args[0]}[{self.width}])"
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.op}({inner})"

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        if self.op != "const":
            raise SolverError(f"not a constant: {self!r}")
        return self.args[0]

    def free_vars(self) -> FrozenSet[str]:
        """Names of symbolic input variables occurring in this term."""
        if self._free is None:
            acc = set()
            stack = [self]
            seen = set()
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if node.op == "var":
                    acc.add(node.args[0])
                else:
                    for arg in node.args:
                        if isinstance(arg, Term):
                            if arg._free is not None:
                                acc.update(arg._free)
                            else:
                                stack.append(arg)
            self._free = frozenset(acc)
        return self._free


#: forward declarations — rebound to interned singletons below, after
#: the first space exists; TermSpace._seed checks for the None window.
TRUE: Optional[Term] = None
FALSE: Optional[Term] = None


class TermSpace:
    """One intern table: terms constructed under it share identity.

    A space is cheap (one dict) and lives exactly as long as the session
    that opened it — a symex engine run, a whole reconstruction in a
    parallel worker, a test.  The TRUE/FALSE singletons are pre-seeded
    into every space so identity with them holds everywhere.
    """

    __slots__ = ("table",)

    def __init__(self):
        self.table: Dict[tuple, Term] = {}
        self._seed()

    def _seed(self) -> None:
        if TRUE is not None:  # module fully initialised
            self.table[("const", (1,), 1)] = TRUE
            self.table[("const", (0,), 1)] = FALSE

    def reset(self) -> None:
        """Drop every interned term except the TRUE/FALSE singletons."""
        self.table.clear()
        self._seed()

    def __len__(self) -> int:
        return len(self.table)


#: fallback space for code running outside any term_scope (module-level
#: constants, ad-hoc library use, legacy tests)
_DEFAULT_SPACE = TermSpace()

#: the context-local active space; ``None`` means "use the default".
#: ContextVars are per-thread (and per-async-task), so concurrent
#: sessions in one process each see their own space.
_ACTIVE: "ContextVar[Optional[TermSpace]]" = ContextVar(
    "repro_term_space", default=None)


def current_space() -> "TermSpace":
    """The space constructors intern into right now."""
    space = _ACTIVE.get()
    return space if space is not None else _DEFAULT_SPACE


@contextmanager
def term_scope(space: Optional["TermSpace"] = None, *,
               reuse_active: bool = False):
    """Install ``space`` (default: a fresh one) for the dynamic extent.

    ``reuse_active=True`` keeps an already-active space instead of
    nesting a new one — a session that is itself part of a larger
    session (e.g. a gap-recovery replay inside a reconstruction) shares
    its parent's intern table.
    """
    if reuse_active:
        active = _ACTIVE.get()
        if active is not None:
            yield active
            return
    if space is None:
        space = TermSpace()
    token = _ACTIVE.set(space)
    try:
        yield space
    finally:
        _ACTIVE.reset(token)


def clear_term_cache() -> None:
    """Reset the *current scope's* intern table (test isolation).

    Kept for backward compatibility; new code should open a
    :func:`term_scope` instead.  Unlike the old process-global reset,
    this touches only the active space, and live terms from before the
    reset remain structurally equal (``==``) to re-built ones — only
    ``is`` identity with them is given up.
    """
    current_space().reset()


def _intern(op: str, args: tuple, width: int) -> Term:
    table = current_space().table
    key = (op, args, width)
    term = table.get(key)
    if term is None:
        term = Term(op, args, width)
        table[key] = term
    return term


# ----------------------------------------------------------------------
# constructors (with inline constant folding / light simplification)

def const(value: int, width: int = 64) -> Term:
    return _intern("const", (mask(value, width),), width)


TRUE = const(1, 1)
FALSE = const(0, 1)


def var(name: str, width: int = 8) -> Term:
    return _intern("var", (name,), width)


def array(name: str, data: bytes) -> Term:
    return _intern("array", (name, bytes(data)), len(data))


def store(arr: Term, index: Term, value_term: Term) -> Term:
    if arr.op not in ("array", "store"):
        raise SolverError(f"store into non-array {arr!r}")
    return _intern("store", (arr, index, value_term), arr.width)


def read(arr: Term, index: Term) -> Term:
    """Read one byte; collapses over the write chain where indices allow."""
    if arr.op not in ("array", "store"):
        raise SolverError(f"read from non-array {arr!r}")
    node = arr
    if index.is_const:
        idx = index.value
        while node.op == "store":
            st_index, st_value = node.args[1], node.args[2]
            if st_index.is_const:
                if st_index.value == idx:
                    return st_value
                node = node.args[0]
                continue
            break  # symbolic store below: cannot see through
        if node.op == "array":
            data = node.args[1]
            if 0 <= idx < len(data):
                return const(data[idx], 8)
    return _intern("read", (arr, index), 8)


def binop(op: str, lhs: Term, rhs: Term, opwidth: int = 64) -> Term:
    if op not in BINOP_OPS:
        raise SolverError(f"unknown binop {op!r}")
    if lhs.is_const and rhs.is_const:
        if op in ("udiv", "sdiv", "urem", "srem") and \
                mask(rhs.value, opwidth) == 0:
            raise SolverError(f"constant {op} by zero")
        return const(apply_binop(op, lhs.value, rhs.value, opwidth), 64)
    # canonicalize: constant on the left for commutative ops
    if op in ("add", "mul", "and", "or", "xor") and rhs.is_const:
        lhs, rhs = rhs, lhs
    if lhs.is_const:
        value = mask(lhs.value, opwidth)
        if op == "add" and value == 0:
            return _mask_to(rhs, opwidth)
        if op == "mul" and value == 1:
            return _mask_to(rhs, opwidth)
        if op == "mul" and value == 0:
            return const(0, 64)
        if op in ("and",) and value == 0:
            return const(0, 64)
        if op in ("or", "xor") and value == 0:
            return _mask_to(rhs, opwidth)
        # (c1 + (c2 + x)) -> (c1+c2) + x : keeps address bases foldable
        if op == "add" and rhs.op == "add" and rhs.args[2] == opwidth:
            inner_lhs, inner_rhs = rhs.args[0], rhs.args[1]
            if inner_lhs.is_const:
                folded = const(apply_binop("add", lhs.value, inner_lhs.value,
                                           opwidth), 64)
                return _intern("add", (folded, inner_rhs, opwidth),
                               min(64, opwidth))
    return _intern(op, (lhs, rhs, opwidth), min(64, opwidth))


def _mask_to(term: Term, opwidth: int) -> Term:
    """x as a width-`opwidth` result: no-op if x already fits."""
    if opwidth >= 64:
        return term
    if term.is_const:
        return const(mask(term.value, opwidth), 64)
    if term.width <= opwidth:
        return term
    return trunc(term, opwidth)


def cmp(op: str, lhs: Term, rhs: Term, opwidth: int = 64) -> Term:
    if op not in CMP_OPS:
        raise SolverError(f"unknown cmp {op!r}")
    if lhs.is_const and rhs.is_const:
        return const(apply_cmp(op, lhs.value, rhs.value, opwidth), 1)
    if lhs is rhs:
        if op in ("eq", "ule", "uge", "sle", "sge"):
            return TRUE
        if op in ("ne", "ult", "ugt", "slt", "sgt"):
            return FALSE
    # canonicalize eq/ne with constant on the right
    if op in ("eq", "ne") and lhs.is_const:
        lhs, rhs = rhs, lhs
    return _intern(op, (lhs, rhs, opwidth), 1)


def trunc(value_term: Term, to_width: int) -> Term:
    if value_term.is_const:
        return const(mask(value_term.value, to_width), 64)
    if value_term.op == "trunc" and value_term.args[1] <= to_width:
        return value_term
    if value_term.width <= to_width:
        return value_term
    return _intern("trunc", (value_term, to_width), to_width)


def sext(value_term: Term, from_width: int) -> Term:
    if value_term.is_const:
        return const(sign_extend(value_term.value, from_width), 64)
    return _intern("sext", (value_term, from_width), 64)


def concat(byte_terms: Iterable[Term]) -> Term:
    """LSB-first byte concatenation (multi-byte loads and inputs)."""
    parts: Tuple[Term, ...] = tuple(byte_terms)
    if not parts:
        raise SolverError("empty concat")
    if len(parts) == 1:
        return parts[0]
    if all(p.is_const for p in parts):
        value = 0
        for i, part in enumerate(parts):
            value |= mask(part.value, 8) << (8 * i)
        return const(value, 8 * len(parts))
    return _intern("concat", parts, 8 * len(parts))


def extract(value_term: Term, byte_index: int) -> Term:
    """Byte ``byte_index`` (little-endian) of a term."""
    if value_term.is_const:
        return const((value_term.value >> (8 * byte_index)) & 0xFF, 8)
    if value_term.op == "concat" and byte_index < len(value_term.args):
        return value_term.args[byte_index]
    if value_term.op == "concat":
        return const(0, 8)
    if value_term.width <= 8 * byte_index:
        return const(0, 8)
    return _intern("extract", (value_term, byte_index), 8)


def ite(cond: Term, if_true: Term, if_false: Term) -> Term:
    if cond.is_const:
        return if_true if cond.value else if_false
    if if_true is if_false:
        return if_true
    return _intern("ite", (cond, if_true, if_false),
                   max(if_true.width, if_false.width))


def not_(cond: Term) -> Term:
    """Boolean negation of a width-1 term."""
    if cond.is_const:
        return FALSE if cond.value else TRUE
    negations = {"eq": "ne", "ne": "eq", "ult": "uge", "uge": "ult",
                 "ule": "ugt", "ugt": "ule", "slt": "sge", "sge": "slt",
                 "sle": "sgt", "sgt": "sle"}
    if cond.op in negations:
        lhs, rhs, opwidth = cond.args
        return cmp(negations[cond.op], lhs, rhs, opwidth)
    return cmp("eq", cond, FALSE, 1)


def bool_term(cond: Term) -> Term:
    """Coerce an arbitrary term to width-1 (non-zero test)."""
    if cond.width == 1:
        return cond
    if cond.is_const:
        return TRUE if cond.value else FALSE
    return cmp("ne", cond, const(0, 64), 64)


# ----------------------------------------------------------------------
# traversal helpers

def iter_nodes(roots: Iterable[Term]) -> Iterable[Term]:
    """Every distinct term node reachable from ``roots`` (post-order-ish)."""
    seen = set()
    stack: List[Term] = [r for r in roots]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        for arg in node.args:
            if isinstance(arg, Term):
                stack.append(arg)


def term_size(term: Term) -> int:
    """Number of distinct nodes reachable from ``term``."""
    return sum(1 for _ in iter_nodes([term]))


def chain_length(arr: Term) -> int:
    """Number of store nodes above the base array."""
    count = 0
    node = arr
    while node.op == "store":
        count += 1
        node = node.args[0]
    return count


def base_array(arr: Term) -> Term:
    node = arr
    while node.op == "store":
        node = node.args[0]
    return node


def symbolic_store_count(arr: Term) -> int:
    """Stores in the chain whose index or value is symbolic."""
    count = 0
    node = arr
    while node.op == "store":
        index, value_term = node.args[1], node.args[2]
        if not index.is_const or not value_term.is_const:
            count += 1
        node = node.args[0]
    return count


def substitute(term: Term, mapping: Dict[Term, Term]) -> Term:
    """Rebuild ``term`` with every occurrence of a mapped subterm replaced.

    Replacement goes through the public constructors, so constant
    folding and simplification fire exactly as they would have during
    execution — substituting a recorded register's term by its constant
    yields the same (structurally equal) terms the engine builds when it
    concretizes that register at a ``ptwrite``.  That is what lets a
    speculatively pre-solved constraint set match the next occurrence's
    live query key.  Matching is structural (mapped keys may come from
    any term scope); the traversal is iterative (loop-grown terms exceed
    the recursion limit).
    """
    if not mapping:
        return term
    rebuilt: Dict[int, Term] = {}
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in rebuilt:
            continue
        if not ready:
            replacement = mapping.get(node)
            if replacement is not None:
                rebuilt[id(node)] = replacement
                continue
            stack.append((node, True))
            for arg in node.args:
                if isinstance(arg, Term) and id(arg) not in rebuilt:
                    stack.append((arg, False))
            continue
        rebuilt[id(node)] = _rebuild_node(node, rebuilt)
    return rebuilt[id(term)]


def _rebuild_node(node: Term, rebuilt: Dict[int, Term]) -> Term:
    """One substituted node, re-run through its public constructor."""
    args = tuple(rebuilt[id(a)] if isinstance(a, Term) else a
                 for a in node.args)
    if all(new is old for new, old in zip(args, node.args)):
        return node
    op = node.op
    if op in BINOP_OPS:
        return binop(op, args[0], args[1], args[2])
    if op in CMP_OPS:
        return cmp(op, args[0], args[1], args[2])
    if op == "store":
        return store(args[0], args[1], args[2])
    if op == "read":
        return read(args[0], args[1])
    if op == "concat":
        return concat(args)
    if op == "extract":
        return extract(args[0], args[1])
    if op == "trunc":
        return trunc(args[0], args[1])
    if op == "sext":
        return sext(args[0], args[1])
    if op == "ite":
        return ite(args[0], args[1], args[2])
    return _intern(op, args, node.width)


# ----------------------------------------------------------------------
# canonical serialization (disk-cache keys cross process boundaries)

def serialize_term(term: Term) -> str:
    """Canonical, injective string form of a term.

    The DAG is flattened into a topologically ordered node list (each
    node ``[op, args, width]``, term arguments as ``["t", index]``
    references) and JSON-encoded with no whitespace.  Nodes are deduped
    *structurally*, not by identity, so two structurally equal terms —
    even from different :func:`term_scope`\\ s, even with different
    internal sharing — serialize to the same string.  That stability is
    what disk-cache keys depend on.  Provenance (``Term.prov``) is
    advisory and deliberately excluded.

    The traversal is iterative: loop-grown terms exceed the recursion
    limit.
    """
    import json as _json

    nodes: List[list] = []
    canon: Dict[tuple, int] = {}     # structural key -> node index
    by_id: Dict[int, int] = {}       # id(term) -> node index (fast path)
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in by_id:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if isinstance(arg, Term) and id(arg) not in by_id:
                    stack.append((arg, False))
            continue
        encoded: List[object] = []
        for arg in node.args:
            if isinstance(arg, Term):
                encoded.append(("t", by_id[id(arg)]))
            elif isinstance(arg, bytes):
                encoded.append(("b", arg.hex()))
            elif isinstance(arg, str):
                encoded.append(("s", arg))
            else:
                encoded.append(arg)  # int
        key = (node.op, tuple(encoded), node.width)
        index = canon.get(key)
        if index is None:
            index = len(nodes)
            canon[key] = index
            nodes.append([node.op, [list(e) if isinstance(e, tuple) else e
                                    for e in encoded], node.width])
        by_id[id(node)] = index
    return _json.dumps(nodes, separators=(",", ":"))


def deserialize_term(text: str) -> Term:
    """Rebuild a term from :func:`serialize_term` output.

    The result is interned into the *current* space, so round-tripping
    re-establishes identity with same-space terms and structural
    equality (same hash) with terms from any other space.
    """
    import json as _json

    nodes = _json.loads(text)
    if not nodes:
        raise SolverError("empty serialized term")
    built: List[Term] = []
    for op, encoded, width in nodes:
        args: List[object] = []
        for item in encoded:
            if isinstance(item, list):
                tag, payload = item
                if tag == "t":
                    args.append(built[payload])
                elif tag == "b":
                    args.append(bytes.fromhex(payload))
                elif tag == "s":
                    args.append(payload)
                else:
                    raise SolverError(f"bad serialized arg tag {tag!r}")
            else:
                args.append(item)
        built.append(_intern(op, tuple(args), width))
    return built[-1]


def term_digest(term: Term) -> str:
    """128-bit hex digest of the canonical serialization.

    Disk-cache keys are *sets* of these digests; subsumption reasoning
    (subset ⇒ infeasible, superset ⇒ model) is sound exactly because the
    serialization behind the digest is injective.
    """
    import hashlib

    return hashlib.sha256(
        serialize_term(term).encode("ascii")).hexdigest()[:32]
