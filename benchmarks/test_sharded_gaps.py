"""Benchmark: sharded gap-recovery search vs the serial DFS.

Degrades a gap-heavy Table-1 trace (the paper's 8.5 % TNT loss), runs
the decision-vector search once serially and once over a worker pool,
and records the speedup plus the cold→warm persistent solver-cache hit
rates to ``benchmarks/out/BENCH_sharded_gaps.json`` — the artifact the
CI smoke job uploads next to ``BENCH_parallel.json``.  As with the
batch benchmark, the speedup assertion only arms on multi-core
machines; a single CPU records the run as informational.
"""

import json
import os
import time

import pytest

from repro import telemetry
from repro.core import ProductionSite
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.parallel import run_batch
from repro.symex.gaps import replay_with_gap_recovery
from repro.trace.decoder import decode
from repro.trace.degrade import degrade_trace, gap_count
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload

#: deepest decision-vector search among the Table-1 workloads at the
#: paper's loss rate — enough replays to amortize the pool start-up
WORKLOAD = "sqlite-7be932d"
MAPPING_LOSS = 0.085
SHARDS = 4


def test_sharded_gap_speedup(artifact_dir, tmp_path):
    workload = get_workload(WORKLOAD)
    module = workload.fresh_module()
    occurrence = ProductionSite(workload.failing_env,
                                mapping_loss=MAPPING_LOSS,
                                per_cpu_buffers=True).run_once(module)
    kwargs = dict(work_limit=workload.work_limit * 20)

    start = time.perf_counter()
    serial = replay_with_gap_recovery(module, occurrence.trace,
                                      occurrence.failure, **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = replay_with_gap_recovery(module, occurrence.trace,
                                       occurrence.failure, shards=SHARDS,
                                       **kwargs)
    sharded_s = time.perf_counter() - start

    # correctness before speed: identical outcome, bit for bit
    assert sharded.status == serial.status
    serial_model = serial.model.assignment if serial.model else None
    sharded_model = sharded.model.assignment if sharded.model else None
    assert sharded_model == serial_model
    speedup = serial_s / sharded_s if sharded_s else 0.0

    # cold→warm persistent cache: the second run must hit the disk tier
    cache_dir = tmp_path / "solver-cache"
    cache_dir.mkdir()
    cold = run_batch([WORKLOAD], parallel=1, cache_dir=str(cache_dir))
    warm = run_batch([WORKLOAD], parallel=1, cache_dir=str(cache_dir))
    assert cold.succeeded == warm.succeeded == 1
    assert warm.solver_cache_stats["hit_rate"] > \
        cold.solver_cache_stats["hit_rate"]

    data = {
        "workload": WORKLOAD,
        "mapping_loss": MAPPING_LOSS,
        "gap_count": gap_count(occurrence.trace),
        "gap_attempts": serial.gap_attempts,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial_s, 4),
        "sharded_wall_seconds": round(sharded_s, 4),
        "speedup": round(speedup, 3),
        "status": serial.status,
        "cold_cache": cold.solver_cache_stats,
        "warm_cache": warm.solver_cache_stats,
    }
    (artifact_dir / "BENCH_sharded_gaps.json").write_text(
        json.dumps(data, indent=2) + "\n")
    print(f"\nserial {serial_s:.2f}s, sharded({SHARDS}) {sharded_s:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} cpu(s); "
          f"cache hit rate {cold.solver_cache_stats['hit_rate']:.1%} cold "
          f"-> {warm.solver_cache_stats['hit_rate']:.1%} warm")

    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5, (
            f"expected >=1.5x on a multi-core host, got {speedup:.2f}x")
    else:
        pytest.skip(f"single CPU: speedup {speedup:.2f}x recorded, "
                    "not asserted")


# -- skewed subspaces: where the static fan-out loses and stealing wins

#: forced-True guard decisions: any False guard hits a PTW tag the trace
#: never recorded, so that whole prefix subspace dies on its first replay
GUARDS = 6
#: late-diverging tail decisions: both arms are instruction-identical, so
#: a wrong tail bit is only caught at the final PTW pin — after the
#: expensive concrete loop has been replayed in full
TAIL = 8
#: concrete-loop iterations: the per-replay cost a scheduler must balance
WORK_ITERS = 250
SKEW_SHARDS = 4


def _skewed_module():
    """A program whose gap-decision space is maximally skewed.

    Six guard branches test bits of the first input byte (0x3f in
    production: all True); the False arm executes a ``ptwrite`` with a
    tag the trace never contains, so every subspace fixing any guard to
    False diverges immediately.  A concrete loop then makes each full
    replay expensive, and eight tail branches (bits of the second input
    byte, 0x00 in production: all False) accumulate into a value pinned
    by the final ``ptwrite`` — wrong tail bits replay everything before
    diverging.  The serial DFS (True-first) therefore explores the whole
    2^TAIL tail space under the single all-True guard prefix: a static
    prefix fan-out parks all of that work in one task, while stealing
    redistributes it at checkpoint granularity.
    """
    b = ModuleBuilder("skewed-gaps")
    f = b.function("main", [])
    f.block("entry")
    f.input("stdin", 1, dest="%x")
    f.input("stdin", 1, dest="%y")
    f.const(0, dest="%acc")
    f.jmp("g0")
    for i in range(GUARDS):
        nxt = f"g{i + 1}" if i + 1 < GUARDS else "work"
        f.block(f"g{i}")
        bit = f.binop("and", f.binop("lshr", "%x", i, width=8), 1,
                      width=8)
        cond = f.cmp("ne", bit, 0, width=8)
        f.br(cond, f"g{i}_ok", f"g{i}_bad")
        f.block(f"g{i}_bad")
        f.ptwrite(0, tag=10 + i)  # tag absent from the trace
        f.jmp(nxt)
        f.block(f"g{i}_ok")
        f.jmp(nxt)
    f.block("work")
    f.const(0, dest="%i")
    f.const(0, dest="%h")
    f.jmp("w_loop")
    f.block("w_loop")
    done = f.cmp("uge", "%i", WORK_ITERS)
    f.br(done, "t0", "w_body")
    f.block("w_body")
    f.add("%h", 7, width=32, dest="%h")
    f.mul("%h", 3, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("w_loop")
    for i in range(TAIL):
        nxt = f"t{i + 1}" if i + 1 < TAIL else "pin"
        f.block(f"t{i}")
        bit = f.binop("and", f.binop("lshr", "%y", i, width=8), 1,
                      width=8)
        cond = f.cmp("ne", bit, 0, width=8)
        f.br(cond, f"t{i}_on", f"t{i}_off")
        f.block(f"t{i}_on")      # instruction-identical arms: the
        f.add("%acc", 1 << i, width=32, dest="%acc")
        f.jmp(nxt)
        f.block(f"t{i}_off")     # divergence only shows at the pin
        f.add("%acc", 0, width=32, dest="%acc")
        f.jmp(nxt)
    f.block("pin")
    f.ptwrite("%acc", tag=0)
    f.abort("skewed tail reached")
    return b.build()


def test_steal_rebalances_skewed_subspaces(artifact_dir):
    module = _skewed_module()
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module,
                      Environment({"stdin": bytes([0x3f, 0x00])}),
                      tracer=encoder).run()
    assert run.failure is not None
    degraded = degrade_trace(decode(encoder.buffer), loss=1.0)
    kwargs = dict(max_attempts=1024)

    start = time.perf_counter()
    serial = replay_with_gap_recovery(module, degraded, run.failure,
                                      **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    static = replay_with_gap_recovery(module, degraded, run.failure,
                                      shards=SKEW_SHARDS, steal=False,
                                      **kwargs)
    static_s = time.perf_counter() - start
    registry = telemetry.Telemetry()
    start = time.perf_counter()
    with telemetry.scoped(registry):
        stolen = replay_with_gap_recovery(module, degraded, run.failure,
                                          shards=SKEW_SHARDS, steal=True,
                                          **kwargs)
    steal_s = time.perf_counter() - start
    counters = registry.snapshot()["counters"]

    # correctness before speed: all three walks commit the same leaf
    assert serial.completed
    for result in (static, stolen):
        assert result.status == serial.status
        assert result.model.assignment == serial.model.assignment

    steal_vs_static = static_s / steal_s if steal_s else 0.0
    data = {
        "guards": GUARDS,
        "tail": TAIL,
        "work_iters": WORK_ITERS,
        "gap_count": gap_count(degraded),
        "serial_gap_attempts": serial.gap_attempts,
        "shards": SKEW_SHARDS,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial_s, 4),
        "static_wall_seconds": round(static_s, 4),
        "steal_wall_seconds": round(steal_s, 4),
        "steal_vs_static_speedup": round(steal_vs_static, 3),
        "steals": counters.get("parallel.steals", 0),
        "cancelled_shards": counters.get("parallel.cancelled_shards", 0),
    }
    (artifact_dir / "BENCH_steal_skew.json").write_text(
        json.dumps(data, indent=2) + "\n")
    print(f"\nskew: serial {serial_s:.2f}s, static {static_s:.2f}s, "
          f"steal {steal_s:.2f}s ({steal_vs_static:.2f}x vs static, "
          f"{data['steals']} steals) on {os.cpu_count()} cpu(s)")

    if (os.cpu_count() or 1) >= 2:
        assert steal_vs_static >= 1.5, (
            "expected stealing to beat the static fan-out >=1.5x on a "
            f"multi-core host, got {steal_vs_static:.2f}x")
    else:
        pytest.skip(f"single CPU: {steal_vs_static:.2f}x recorded, "
                    "not asserted")
