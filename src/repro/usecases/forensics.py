"""Security forensics on reconstructed executions: input attribution.

The paper motivates ER with security audits of production breaches
("leak assessment", §1).  A reconstructed execution comes with the full
path constraint, which already encodes the dataflow from input bytes to
the failure: the free variables of each constraint are exactly the
input bytes that influenced that branch/access, so attribution falls
out of the artifacts ER produces anyway.

:func:`attribute_failure` reports, per input stream, which byte offsets
the failing path depends on — the bytes an attacker controls — and how
strongly (how many path constraints each byte appears in).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..solver.model import parse_var_name
from ..symex.result import SymexResult


@dataclass
class InputAttribution:
    """Which input bytes the failing path depends on."""

    #: stream -> sorted byte offsets the path constraints mention
    influential: Dict[str, List[int]]
    #: (stream, offset) -> number of path constraints involving the byte
    weight: Dict[Tuple[str, int], int]
    #: bytes read by the program but irrelevant to the failure path
    uninfluential: Dict[str, List[int]]
    total_constraints: int = 0

    def hottest(self, count: int = 5) -> List[Tuple[str, int, int]]:
        """The most-constrained bytes: (stream, offset, weight)."""
        ranked = sorted(self.weight.items(),
                        key=lambda item: (-item[1], item[0]))
        return [(stream, offset, w)
                for (stream, offset), w in ranked[:count]]

    def render(self) -> str:
        lines = ["input attribution (bytes influencing the failure path):"]
        for stream in sorted(self.influential):
            offsets = self.influential[stream]
            lines.append(f"  {stream!r}: {len(offsets)} influential "
                         f"byte(s) at offsets {offsets}")
        for stream in sorted(self.uninfluential):
            offsets = self.uninfluential[stream]
            if offsets:
                lines.append(f"  {stream!r}: {len(offsets)} byte(s) read "
                             "but not constrained (attacker-irrelevant)")
        hottest = self.hottest(3)
        if hottest:
            hot = ", ".join(f"{s}[{o}]x{w}" for s, o, w in hottest)
            lines.append(f"  most constrained: {hot}")
        return "\n".join(lines)


def attribute_failure(result: SymexResult) -> InputAttribution:
    """Attribute a completed (or stalled) symex result to input bytes."""
    weight: Counter = Counter()
    for constraint in result.constraints:
        for name in constraint.free_vars():
            parsed = parse_var_name(name)
            if parsed is not None:
                weight[parsed] += 1

    influential: Dict[str, List[int]] = {}
    for (stream, offset), _count in weight.items():
        influential.setdefault(stream, []).append(offset)
    for offsets in influential.values():
        offsets.sort()

    uninfluential: Dict[str, List[int]] = {}
    if result.model is not None:
        for name in result.model.assignment:
            parsed = parse_var_name(name)
            if parsed is None:
                continue
            stream, offset = parsed
            if (stream, offset) not in weight:
                uninfluential.setdefault(stream, []).append(offset)
        for offsets in uninfluential.values():
            offsets.sort()

    return InputAttribution(influential=influential,
                            weight=dict(weight),
                            uninfluential=uninfluential,
                            total_constraints=len(result.constraints))
