"""Shared arithmetic semantics (the interp/symex/solver contract)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.ops import apply_binop, apply_cmp
from repro.ir.types import mask, to_signed

values = st.integers(min_value=0, max_value=(1 << 64) - 1)
widths = st.sampled_from((8, 16, 32, 64))


class TestBinop:
    def test_add_wraps(self):
        assert apply_binop("add", 0xFF, 1, 8) == 0

    def test_sub_wraps(self):
        assert apply_binop("sub", 0, 1, 8) == 0xFF

    def test_mul_masks(self):
        assert apply_binop("mul", 16, 16, 8) == 0

    def test_udiv(self):
        assert apply_binop("udiv", 7, 2, 8) == 3

    def test_sdiv_truncates_toward_zero(self):
        minus7 = mask(-7, 8)
        assert to_signed(apply_binop("sdiv", minus7, 2, 8), 8) == -3

    def test_srem_sign_follows_dividend(self):
        minus7 = mask(-7, 8)
        assert to_signed(apply_binop("srem", minus7, 2, 8), 8) == -1

    def test_shift_count_masked_by_width(self):
        # x86-style: shl by width is shl by 0
        assert apply_binop("shl", 1, 8, 8) == 1
        assert apply_binop("shl", 1, 9, 8) == 2

    def test_ashr_replicates_sign(self):
        assert apply_binop("ashr", 0x80, 1, 8) == 0xC0

    def test_lshr_zero_fills(self):
        assert apply_binop("lshr", 0x80, 1, 8) == 0x40

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            apply_binop("frob", 1, 2, 8)

    @given(values, values, widths)
    def test_results_fit_width(self, a, b, w):
        for op in ("add", "sub", "mul", "and", "or", "xor", "shl",
                   "lshr", "ashr"):
            assert 0 <= apply_binop(op, a, b, w) < (1 << w)

    @given(values, values, widths)
    def test_add_commutes(self, a, b, w):
        assert apply_binop("add", a, b, w) == apply_binop("add", b, a, w)

    @given(values, values, widths)
    def test_add_matches_python(self, a, b, w):
        assert apply_binop("add", a, b, w) == (mask(a, w) + mask(b, w)) % (1 << w)

    @given(values, st.integers(min_value=1, max_value=(1 << 64) - 1), widths)
    def test_udiv_matches_python(self, a, b, w):
        if mask(b, w) == 0:
            return
        assert apply_binop("udiv", a, b, w) == mask(a, w) // mask(b, w)

    @given(values, values, widths)
    def test_xor_self_inverse(self, a, b, w):
        once = apply_binop("xor", a, b, w)
        assert apply_binop("xor", once, b, w) == mask(a, w)


class TestCmp:
    def test_eq(self):
        assert apply_cmp("eq", 0x100, 0, 8) == 1  # masked equal

    def test_unsigned_vs_signed(self):
        assert apply_cmp("ult", 1, 0xFF, 8) == 1
        assert apply_cmp("slt", 1, 0xFF, 8) == 0  # 0xFF is -1 signed

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            apply_cmp("wat", 1, 2, 8)

    @given(values, values, widths)
    def test_total_order(self, a, b, w):
        lt = apply_cmp("ult", a, b, w)
        gt = apply_cmp("ugt", a, b, w)
        eq = apply_cmp("eq", a, b, w)
        assert lt + gt + eq == 1

    @given(values, values, widths)
    def test_negation_pairs(self, a, b, w):
        for op, neg in (("eq", "ne"), ("ult", "uge"), ("ule", "ugt"),
                        ("slt", "sge"), ("sle", "sgt")):
            assert apply_cmp(op, a, b, w) == 1 - apply_cmp(neg, a, b, w)

    @given(values, values, widths)
    def test_signed_matches_python(self, a, b, w):
        expected = int(to_signed(a, w) < to_signed(b, w))
        assert apply_cmp("slt", a, b, w) == expected
