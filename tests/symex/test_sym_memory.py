"""Symbolic memory unit tests: overlays, chains, snapshots."""

import pytest

from repro.interp.failures import FailureKind, MemoryFault
from repro.ir.module import Module
from repro.solver import terms as T
from repro.symex.memory import SymMemory, SymObject


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


class TestSymObject:
    def test_concrete_read_write(self):
        obj = SymObject(0x1000, 8, "heap", "o")
        obj.write_byte(3, T.const(0xAB, 8))
        assert obj.read_byte(3).value == 0xAB

    def test_symbolic_value_overlay(self):
        obj = SymObject(0x1000, 8, "heap", "o")
        v = T.var("v")
        obj.write_byte(2, v)
        assert obj.read_byte(2) is v
        assert obj.chain is None  # concrete index: no chain yet

    def test_concrete_write_clears_overlay(self):
        obj = SymObject(0x1000, 8, "heap", "o")
        obj.write_byte(2, T.var("v"))
        obj.write_byte(2, T.const(5, 8))
        assert obj.read_byte(2).value == 5

    def test_symbolic_index_starts_chain(self):
        obj = SymObject(0x1000, 8, "heap", "o")
        obj.write_sym(T.var("i"), T.const(1, 8))
        assert obj.chain is not None
        assert obj.chain_length() == 1

    def test_all_stores_chain_after_freeze(self):
        obj = SymObject(0x1000, 8, "heap", "o")
        obj.write_sym(T.var("i"), T.const(1, 8))
        obj.write_byte(0, T.const(9, 8))   # concrete, but must chain
        assert obj.chain_length() == 2

    def test_read_after_freeze_goes_through_chain(self):
        obj = SymObject(0x1000, 8, "heap", "o", init=b"\x07" * 8)
        obj.write_sym(T.var("i"), T.const(1, 8))
        term = obj.read_byte(0)
        # cannot see through the symbolic store: stays a read term
        assert term.op == "read"

    def test_snapshot_includes_overlay(self):
        obj = SymObject(0x1000, 4, "heap", "o", init=b"\x01\x02\x03\x04")
        v = T.var("v")
        obj.write_byte(1, v)
        arr = obj.array_term()
        assert T.read(arr, T.const(1)) is v
        assert T.read(arr, T.const(2)).value == 3

    def test_snapshot_caching_and_invalidation(self):
        obj = SymObject(0x1000, 4, "heap", "o")
        first = obj.array_term()
        assert obj.array_term() is first       # cached
        obj.write_byte(0, T.const(9, 8))
        second = obj.array_term()
        assert second is not first             # invalidated
        assert T.read(second, T.const(0)).value == 9

    def test_init_truncated_to_size(self):
        obj = SymObject(0x1000, 2, "heap", "o", init=b"abcdef")
        assert bytes(obj.data) == b"ab"


class TestSymMemory:
    def _module(self):
        m = Module()
        m.add_global("g", 16, b"\xAA")
        m.add_function(_dummy_main())
        return m

    def test_layout_matches_concrete_memory(self):
        from repro.interp.memory import Memory

        module = self._module()
        concrete = Memory(module)
        symbolic = SymMemory(module)
        assert concrete.global_addrs == symbolic.global_addrs
        c_stack = concrete.alloc_stack("s", 24).base
        s_stack = symbolic.alloc_stack("s", 24).base
        assert c_stack == s_stack
        assert concrete.alloc_heap(8).base == symbolic.alloc_heap(8).base

    def test_find_object(self):
        mem = SymMemory()
        obj = mem.alloc_heap(16)
        assert mem.find_object(obj.base + 5) is obj
        assert mem.find_object(obj.base + 16) is None

    def test_free_heap_liveness(self):
        mem = SymMemory()
        obj = mem.alloc_heap(8)
        mem.free_heap(obj.base)
        assert not obj.live
        with pytest.raises(MemoryFault) as exc:
            mem.free_heap(obj.base)
        assert exc.value.kind == FailureKind.DOUBLE_FREE

    def test_objects_with_chains(self):
        mem = SymMemory()
        a = mem.alloc_heap(8)
        b = mem.alloc_heap(8)
        a.write_sym(T.var("i"), T.const(1, 8))
        assert mem.objects_with_chains() == [a]


def _dummy_main():
    from repro.ir import instructions as ins
    from repro.ir.module import Function

    func = Function("main")
    func.add_block("entry").instrs.append(ins.Ret())
    return func
