"""Session-scoped memoization of solver queries (+ warm-start models).

Shepherded symbolic execution issues a solver query at *every* symbolic
memory access, and consecutive queries share almost all of their
constraint set — the path constraint grows monotonically, and loops
re-assert the same in-bounds terms over and over.  Three layers exploit
that redundancy, all sound by construction:

1. **Exact-key memoization** — feasibility and value-enumeration
   results are keyed on the *normalized* constraint set (a frozenset of
   hash-consed terms, so duplicated and reordered constraints collapse
   to one key).  Loops that re-check an unchanged constraint set hit
   this layer for free.
2. **Model probing** — a model that satisfied the previous query very
   often satisfies the current, slightly larger one.  Before searching,
   recent models are re-evaluated against the new constraint set with
   the three-valued evaluator (cost: one propagation pass, charged to
   the budget); a surviving model answers feasibility immediately.
3. **Warm-start hints** — the most recent satisfying assignment seeds
   the search's candidate ordering, so the backtracking solver tries
   "what worked last time" before anything else.  Across reconstruction
   iterations the reconstructor shares one cache, warm-starting each
   iteration's search from the previous iteration's partial model.

Two further layers extend the session cache across query *shapes* and
across *processes*:

4. **Subsumption** — a cached constraint set answers queries it was
   never asked verbatim: an *infeasible subset* forces the query
   infeasible (every model of the superset would satisfy the subset),
   and a *feasible superset with a recorded model* forces the query
   feasible (that model satisfies every query constraint).  Both
   directions are sound set logic over normalized keys.
5. **Persistence** — an optional disk tier
   (:class:`~repro.solver.diskcache.DiskSolverCache`) keyed on canonical
   term digests, shared across processes via an append-only locked
   file.  Gap-recovery shards and successive CLI runs warm-start each
   other through it.

Timeouts are never cached (they are budget-dependent), and enumeration
results are only cached when complete or limit-truncated — never when
truncated by an unknown value.

A cache belongs to one session (one engine run, or one reconstruction
when the reconstructor threads its cache through every iteration); keys
are :class:`~repro.solver.terms.Term` objects, whose structural
equality keeps them valid even across term-space boundaries.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .terms import Term, term_digest

__all__ = ["SolverCache", "ValueEnumeration"]

#: bounded windows for the in-memory subsumption scans
_MAX_INFEASIBLE_KEYS = 256
_MAX_KEYED_MODELS = 16
#: term -> digest memo bound (serialization is O(term size); constraint
#: sets grow monotonically, so each term is digested once per session)
_MAX_DIGEST_MEMO = 8192


class ValueEnumeration(List[int]):
    """``feasible_values`` result: a list plus an explicit completeness flag.

    ``complete`` is True only when the enumeration provably exhausted
    the value set (the final query was unsatisfiable).  A False flag
    means *partial*: the ``limit`` was reached, or a model left the term
    unevaluable (``truncated_reason`` says which) — callers must not
    treat the list as the full value set.
    """

    __slots__ = ("complete", "truncated_reason")

    def __init__(self, values: Sequence[int] = (), *,
                 complete: bool = False,
                 truncated_reason: Optional[str] = None):
        super().__init__(values)
        self.complete = complete
        self.truncated_reason = truncated_reason

    def __repr__(self):
        state = "complete" if self.complete \
            else f"partial:{self.truncated_reason}"
        return f"ValueEnumeration({list(self)!r}, {state})"


class SolverCache:
    """Memoized query results and warm-start models for one session."""

    def __init__(self, max_entries: int = 4096, max_models: int = 4,
                 persistent=None):
        self.max_entries = max_entries
        #: optional disk tier (:class:`DiskSolverCache`), shared across
        #: processes; consulted after every in-memory miss
        self.persistent = persistent
        #: optional :class:`~repro.solver.incremental.AssumptionStack`;
        #: the gap search enables one per session so sibling queries
        #: along a shared constraint prefix re-solve only the delta
        self.assumptions = None
        #: frozenset(constraints) -> bool
        self._feasible: "OrderedDict[FrozenSet[Term], bool]" = OrderedDict()
        #: (term, frozenset(constraints), limit) -> ValueEnumeration
        self._values: "OrderedDict[Tuple, ValueEnumeration]" = OrderedDict()
        #: recent satisfying assignments, newest last
        self._models: Deque[Dict[str, int]] = deque(maxlen=max_models)
        #: recent infeasible keys (subset-subsumption scan window)
        self._infeasible_keys: Deque[FrozenSet[Term]] = deque(
            maxlen=_MAX_INFEASIBLE_KEYS)
        #: recent (key, model) pairs (superset-model scan window)
        self._keyed_models: Deque[Tuple[FrozenSet[Term], Dict[str, int]]] = \
            deque(maxlen=_MAX_KEYED_MODELS)
        #: Term -> canonical digest memo (disk-tier keys)
        self._digests: "OrderedDict[Term, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.model_probe_hits = 0
        self.subsumption_hits = 0
        self.disk_hits = 0

    # -- keys ------------------------------------------------------------

    @staticmethod
    def key(constraints: Sequence[Term]) -> FrozenSet[Term]:
        """Normalized constraint-set key: order and duplicates erased."""
        return frozenset(constraints)

    def digest_key(self, key: FrozenSet[Term]) -> FrozenSet[str]:
        """The key's cross-process form: canonical per-term digests."""
        return frozenset(self.term_digest(term) for term in key)

    def term_digest(self, term: Term) -> str:
        """One term's canonical digest, via the session memo."""
        digest = self._digests.get(term)
        if digest is None:
            digest = term_digest(term)
            self._digests[term] = digest
            while len(self._digests) > _MAX_DIGEST_MEMO:
                self._digests.popitem(last=False)
        else:
            self._digests.move_to_end(term)
        return digest

    # -- feasibility -----------------------------------------------------

    def lookup_feasible(self, key: FrozenSet[Term]) -> Optional[bool]:
        result = self.peek_feasible(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def peek_feasible(self, key: FrozenSet[Term]) -> Optional[bool]:
        """Exact in-memory lookup with no hit/miss accounting."""
        result = self._feasible.get(key)
        if result is not None:
            self._feasible.move_to_end(key)
        return result

    def lookup_subsumed(self, key: FrozenSet[Term]):
        """Answer an exact miss by subsumption (memory, then disk).

        Returns ``(feasible, source)`` with ``source`` one of
        ``"memory-subsume"``, ``"disk-exact"``, ``"disk-subsume"`` — or
        ``None``.  No hit/miss accounting beyond the subsumption/disk
        counters; callers settle ``hits``/``misses`` once they know the
        final outcome.  A disk model rides back into the probe window so
        warm starts survive process boundaries.
        """
        for infeasible in reversed(self._infeasible_keys):
            if infeasible < key:
                self.subsumption_hits += 1
                return False, "memory-subsume"
        for stored_key, model in reversed(self._keyed_models):
            if stored_key > key:
                self.subsumption_hits += 1
                self.record_model(model)
                return True, "memory-subsume"
        if self.persistent is not None:
            found = self.persistent.lookup(self.digest_key(key))
            if found is not None:
                feasible, model, kind = found
                self.disk_hits += 1
                if kind != "exact":
                    self.subsumption_hits += 1
                if model:
                    self.record_model(model)
                return feasible, f"disk-{kind}"
        return None

    def superset_model(self, key: FrozenSet[Term]):
        """A model recorded for ``key`` or a superset, if any tier has one.

        Returns ``(model, source)`` with ``source`` ``"memory"``,
        ``"disk-exact"``, or ``"disk-subsume"`` — or ``None``.  Sound to
        *try* for ``solve``: a
        superset's model satisfies every constraint in the subset.
        Callers still verify it against the live constraints before
        returning it, so a stale or corrupt disk tier degrades to a
        wasted probe, never a wrong model.
        """
        for stored_key, model in reversed(self._keyed_models):
            if stored_key >= key:
                return dict(model), "memory"
        if self.persistent is not None:
            found = self.persistent.lookup(self.digest_key(key))
            if found is not None:
                feasible, model, kind = found
                if feasible and model:
                    self.disk_hits += 1
                    return dict(model), f"disk-{kind}"
        return None

    def store_feasible(self, key: FrozenSet[Term], feasible: bool, *,
                       write_through: bool = True) -> None:
        self._feasible[key] = feasible
        self._feasible.move_to_end(key)
        while len(self._feasible) > self.max_entries:
            self._feasible.popitem(last=False)
        if not feasible:
            self._infeasible_keys.append(key)
        if write_through and self.persistent is not None:
            self.persistent.store(self.digest_key(key), feasible)

    # -- speculation ------------------------------------------------------

    def commit_speculation(self, key: FrozenSet[Term], feasible: bool,
                           model: Optional[Dict[str, int]] = None, *,
                           keyed_model: bool = False) -> None:
        """Commit a pre-solved fact from the pipelined loop's speculation.

        Called only after the strict commit rule held: the arrived
        occurrence's recorded values exactly matched the speculation's
        assumed inputs, so ``key`` is a constraint set the next symex
        run will actually build.  The fact lands in the exact-key
        feasibility tier (and, infeasible, in the subset-subsumption
        window; with a disk tier, it is written through) — the layers
        that only ever return the boolean the live search would have
        computed.

        ``keyed_model`` additionally stages the speculative model into
        the superset-model window.  It defaults *off*: a speculative
        model was found without the session's warm-start hints, so
        returning it from ``solve``/``feasible_values`` could pick a
        different (equally valid) assignment than the sequential loop —
        byte-identity across ``--pipeline``/``--no-pipeline`` is the
        invariant, and cache warming must never perturb which model the
        search lands on.  The probe/hint deque (``_models``) is never
        touched for the same reason.
        """
        self.store_feasible(key, feasible)
        if keyed_model and feasible and model:
            self._keyed_models.append((key, dict(model)))
            if self.persistent is not None:
                self.persistent.store(self.digest_key(key), True,
                                      model=model)

    # -- value enumeration ----------------------------------------------

    def lookup_values(self, term: Term, key: FrozenSet[Term],
                      limit: int) -> Optional[ValueEnumeration]:
        result = self._values.get((term, key, limit))
        if result is None:
            self.misses += 1
        else:
            self._values.move_to_end((term, key, limit))
            self.hits += 1
        return result

    def store_values(self, term: Term, key: FrozenSet[Term], limit: int,
                     values: ValueEnumeration,
                     witnesses: Optional[List[Dict[str, int]]] = None, *,
                     write_through: bool = True) -> None:
        """Memoize an enumeration; persist it when it is budget-stable.

        Only ``complete`` and limit-truncated enumerations reach the
        disk tier (an ``unevaluable`` truncation depends on which model
        the search happened to find).  ``witnesses`` — one satisfying
        assignment per enumerated value — ride along so loaders can
        re-verify every value against their live constraints, exactly
        like cached models: a poisoned file degrades to a cache miss,
        never to injected values.
        """
        self._values[(term, key, limit)] = values
        while len(self._values) > self.max_entries:
            self._values.popitem(last=False)
        if (write_through and self.persistent is not None
                and (values.complete or values.truncated_reason == "limit")
                and len(witnesses or ()) == len(values)):
            self.persistent.store_values(
                self.digest_key(key), self.term_digest(term), limit,
                list(values), values.complete, values.truncated_reason,
                witnesses or [])

    def lookup_values_persistent(self, term: Term, key: FrozenSet[Term],
                                 limit: int):
        """Disk-tier enumeration lookup: ``(enumeration, witnesses)``.

        The result is *unverified* — callers must check every witness
        against their live constraints (and the term against its
        claimed value) before trusting it, mirroring the superset-model
        verification path.
        """
        if self.persistent is None:
            return None
        lookup = getattr(self.persistent, "lookup_values", None)
        if lookup is None:
            return None
        found = lookup(self.digest_key(key), self.term_digest(term), limit)
        if found is None:
            return None
        values, complete, reason, witnesses = found
        enum = ValueEnumeration(values, complete=complete,
                                truncated_reason=reason)
        return enum, witnesses

    # -- models ----------------------------------------------------------

    def record_model(self, assignment: Dict[str, int],
                     key: Optional[FrozenSet[Term]] = None) -> None:
        """Remember a satisfying assignment for probing and warm starts.

        When ``key`` (the constraint set the model satisfies) is given,
        the pair also feeds the superset-model subsumption window and is
        written through to the disk tier.
        """
        if assignment and assignment not in self._models:
            self._models.append(dict(assignment))
        if key is not None and assignment:
            self._keyed_models.append((key, dict(assignment)))
            if self.persistent is not None:
                self.persistent.store(self.digest_key(key), True,
                                      model=assignment)

    def recent_models(self) -> List[Dict[str, int]]:
        """Newest first — the best probe order."""
        return list(reversed(self._models))

    def hints(self) -> Dict[str, int]:
        """The most recent model, as search-ordering hints."""
        return dict(self._models[-1]) if self._models else {}

    # -- stats -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "model_probe_hits": self.model_probe_hits,
            "subsumption_hits": self.subsumption_hits,
            "disk_hits": self.disk_hits,
            "hit_rate": round(self.hit_rate, 4),
            "feasible_entries": len(self._feasible),
            "value_entries": len(self._values),
        }
        if self.persistent is not None:
            out["persistent"] = self.persistent.stats()
        return out
