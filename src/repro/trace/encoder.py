"""PT encoder: the tracer sink the interpreter streams events into.

Implements the tracer protocol (``begin_chunk`` / ``on_branch`` /
``on_ptwrite`` / ``end_chunk``) and serializes packets into a
:class:`~repro.trace.ringbuffer.RingBuffer`.  Branch bits are buffered and
packed six-per-TNT-packet; a pending TNT packet is flushed before any PTW
packet so the decoder can reconstruct exact program order.
"""

from __future__ import annotations

from typing import List, Optional

from .. import telemetry
from ..errors import TraceError
from ..ir.types import MASK64
from .packets import (CHD, CHE, PSB, PSB_PERIOD, TNT_CAPACITY, encode_tnt,
                      encode_varint)
from .ringbuffer import RingBuffer


class PTEncoder:
    """Serializes interpreter events into a simulated PT byte stream."""

    def __init__(self, buffer: Optional[RingBuffer] = None):
        self.buffer = buffer if buffer is not None else RingBuffer()
        self._tnt_bits: List[bool] = []
        self._in_chunk = False
        self._since_psb = 0
        # counters cached once: the tracer protocol fires per branch /
        # per packet, so updates must stay attribute arithmetic
        tel = telemetry.get()
        self._c_packets = tel.counter("trace.packets_emitted")
        self._c_tnt_bits = tel.counter("trace.tnt_bits")
        self._c_ptw = tel.counter("trace.ptw_packets")
        self._c_bytes = tel.counter("trace.bytes_emitted")
        self._c_chunks = tel.counter("trace.chunks_emitted")
        self._emit_psb()

    # -- tracer protocol -------------------------------------------------

    def begin_chunk(self, tid: int, timestamp: int) -> None:
        if self._in_chunk:
            raise TraceError("begin_chunk while a chunk is open")
        self._in_chunk = True
        self._emit(bytes((CHD,)) + encode_varint(tid)
                   + encode_varint(timestamp))

    def on_branch(self, taken: bool) -> None:
        self._require_chunk()
        self._tnt_bits.append(taken)
        if len(self._tnt_bits) == TNT_CAPACITY:
            self._flush_tnt()

    def on_ptwrite(self, tag: int, value: int) -> None:
        self._require_chunk()
        self._flush_tnt()
        payload = (value & MASK64).to_bytes(8, "little")
        self._c_ptw.add()
        self._emit(bytes((0x05,)) + encode_varint(tag) + payload)

    def end_chunk(self, n_instrs: int) -> None:
        self._require_chunk()
        self._flush_tnt()
        self._emit(bytes((CHE,)) + encode_varint(n_instrs))
        self._in_chunk = False
        self._c_chunks.add()
        if self._since_psb >= PSB_PERIOD:
            self._emit_psb()

    # -- internals ---------------------------------------------------------

    def _require_chunk(self) -> None:
        if not self._in_chunk:
            raise TraceError("trace event outside a chunk")

    def _flush_tnt(self) -> None:
        if self._tnt_bits:
            self._c_tnt_bits.add(len(self._tnt_bits))
            self._emit(encode_tnt(self._tnt_bits))
            self._tnt_bits = []

    def _emit(self, data: bytes) -> None:
        self.buffer.write(data)
        self._c_packets.add()
        self._c_bytes.add(len(data))
        self._since_psb += len(data)

    def _emit_psb(self) -> None:
        self.buffer.write(bytes((PSB,)))
        self._since_psb = 0

    # -- results -----------------------------------------------------------

    @property
    def bytes_emitted(self) -> int:
        """Total trace bytes produced (overhead-model input)."""
        return self.buffer.total_written

    def raw(self) -> bytes:
        return self.buffer.contents()
