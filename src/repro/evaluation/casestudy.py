"""§5.4 case study: invariant-based failure localization on ER output.

MIMIC learns likely invariants (Daikon-style) from four passing runs of
``od`` and ``pr``, then localizes a failure by checking which
invariants the failing execution violates.  The paper's claim: feeding
MIMIC the ER-*reconstructed* execution identifies the same potential
root causes as feeding it the original failing test case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import ExecutionReconstructor, ProductionSite
from ..invariants.mimic import MimicLocalizer
from ..solver.budget import WORK_PER_SECOND
from ..workloads.coreutils import coreutils_modules
from .formatting import render_table


@dataclass
class CaseStudyRow:
    program: str
    invariants_learned: int
    direct_candidates: List[str]      # from the original failing test
    direct_violations: List[str]
    er_occurrences: int
    er_candidates: List[str]          # from the ER-reconstructed run
    er_violations: List[str]

    @property
    def same_root_causes(self) -> bool:
        return self.direct_candidates == self.er_candidates


@dataclass
class CaseStudyResult:
    rows: List[CaseStudyRow]

    @property
    def all_match(self) -> bool:
        return all(r.same_root_causes for r in self.rows)

    def render(self) -> str:
        headers = ["Program", "Invariants", "Direct candidates",
                   "ER candidates", "Match?"]
        rows = [[r.program, r.invariants_learned,
                 ", ".join(r.direct_candidates) or "-",
                 ", ".join(r.er_candidates) or "-",
                 "yes" if r.same_root_causes else "NO"]
                for r in self.rows]
        out = [render_table(
            headers, rows,
            "Case study — MIMIC localization from ER-reconstructed runs")]
        for r in self.rows:
            out.append(f"\n{r.program}: violated invariants "
                       f"(direct): {r.direct_violations[:4]}")
            out.append(f"{r.program}: violated invariants "
                       f"(via ER):  {r.er_violations[:4]}")
        out.append("\nsame potential root causes from the reconstructed "
                   "execution as from the failing test (paper: yes for "
                   "both od and pr)")
        return "\n".join(out)


def run_casestudy() -> CaseStudyResult:
    rows = []
    for name, module, passing_envs, failing_env in coreutils_modules():
        localizer = MimicLocalizer(module)
        invariants = localizer.learn([env.clone() for env in passing_envs])

        direct = localizer.localize(failing_env.clone())

        reconstructor = ExecutionReconstructor(
            module, work_limit=2 * WORK_PER_SECOND, max_occurrences=10)
        report = reconstructor.reconstruct(
            ProductionSite(lambda occ: failing_env.clone()))
        er_env = report.test_case.environment()
        via_er = localizer.localize(er_env)

        rows.append(CaseStudyRow(
            program=name,
            invariants_learned=len(invariants),
            direct_candidates=direct.candidate_functions(),
            direct_violations=direct.violated_invariants(),
            er_occurrences=report.occurrences,
            er_candidates=via_er.candidate_functions(),
            er_violations=via_er.violated_invariants(),
        ))
    return CaseStudyResult(rows)
