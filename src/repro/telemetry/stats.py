"""Offline analysis of a telemetry JSONL stream (``repro stats``).

Reconstructs the per-iteration cost breakdown of a reconstruction run
from its event log: phase spans emitted by the reconstructor carry an
``iteration`` attribute, deeper spans (trace decode, symex engine runs)
are attributed to the iteration whose ``reconstruct.iteration`` end
event follows them in stream order, and the final ``snapshot`` event
supplies whole-run totals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: span names the reconstructor tags with an ``iteration`` attribute
PHASE_SPANS = {
    "reconstruct.production": "production_s",
    "reconstruct.symex": "symex_s",
    "reconstruct.selection": "selection_s",
}

#: untagged inner spans folded into the enclosing iteration
NESTED_SPANS = {
    "trace.decode": "decode_s",
}

#: coordination-overhead sources: table label -> histogram name.  The
#: first three are recorded by the parallel schedulers (worker-side,
#: folded into the parent registry), the spans by the pool lifecycle,
#: and the lock wait by ``DiskSolverCache`` around its ``flock`` calls.
OVERHEAD_SOURCES = (
    ("worker idle", "parallel.worker_idle_seconds"),
    ("queue wait", "parallel.queue_wait_seconds"),
    ("steal latency", "parallel.steal_latency_seconds"),
    ("pool spin-up", "span.parallel.pool_spinup"),
    ("pool teardown", "span.parallel.pool_teardown"),
    ("cache lock wait", "solver.diskcache.lock_wait_seconds"),
)


def overhead_attribution(metrics: Optional[Dict]) -> Dict[str, Dict]:
    """Coordination-overhead totals from a metric snapshot.

    Every :data:`OVERHEAD_SOURCES` entry is present in the result (zero
    when unrecorded) so downstream consumers — ``BENCH_parallel.json``,
    the fleet-mode scrape — get a stable schema.
    """
    histograms = (metrics or {}).get("histograms", {})
    out: Dict[str, Dict] = {}
    for label, name in OVERHEAD_SOURCES:
        h = histograms.get(name) or {}
        count = int(h.get("count", 0))
        total = float(h.get("sum", 0.0))
        out[name] = {
            "label": label,
            "count": count,
            "total_s": round(total, 6),
            "mean_s": round(total / count, 6) if count else 0.0,
        }
    return out


def _new_row(iteration: int) -> Dict:
    row = {"iteration": iteration, "status": "?", "instrs": 0,
           "trace_bytes": 0, "solver_calls": 0, "modelled_s": 0.0,
           "recorded_bytes": 0}
    for field in list(PHASE_SPANS.values()) + list(NESTED_SPANS.values()):
        row[field] = 0.0
    return row


def iteration_rows(events: Sequence[Dict]) -> List[Dict]:
    """Fold a telemetry event stream into one row per iteration."""
    rows: Dict[int, Dict] = {}
    pending_nested: Dict[str, float] = {}

    def row_for(iteration: int) -> Dict:
        return rows.setdefault(iteration, _new_row(iteration))

    for event in events:
        kind = event.get("type")
        name = event.get("name", "")
        attrs = event.get("attrs", {}) or {}
        if kind == "span" and name in PHASE_SPANS \
                and "iteration" in attrs:
            row = row_for(attrs["iteration"])
            row[PHASE_SPANS[name]] += event.get("dur_s", 0.0)
        elif kind == "span" and name in NESTED_SPANS:
            field = NESTED_SPANS[name]
            pending_nested[field] = (pending_nested.get(field, 0.0)
                                     + event.get("dur_s", 0.0))
        elif kind == "event" and name == "reconstruct.iteration":
            row = row_for(attrs.get("iteration", len(rows) + 1))
            row["status"] = attrs.get("status", row["status"])
            for key in ("instrs", "trace_bytes", "solver_calls",
                        "modelled_s", "recorded_bytes"):
                if key in attrs:
                    row[key] = attrs[key]
            for field, seconds in pending_nested.items():
                row[field] += seconds
            pending_nested.clear()
    return [rows[i] for i in sorted(rows)]


def final_snapshot(events: Sequence[Dict]) -> Optional[Dict]:
    """The last ``snapshot`` event's metrics, if any."""
    metrics = None
    for event in events:
        if event.get("type") == "snapshot":
            metrics = event.get("metrics")
    return metrics


def merge_snapshots(snapshots: Sequence[Optional[Dict]]) -> Dict:
    """Merge per-worker metric snapshots into one aggregate snapshot.

    The batch runner gives every worker process its own registry and
    folds them together afterwards.  Counters sum exactly; gauges are
    last-write-wins per process, so the merge keeps the max (the only
    order-independent choice); histograms merge count/sum/min/max
    exactly, recompute the mean, and count-weight the percentiles
    (approximate — the underlying samples stay in the workers).
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, h in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(h)
                continue
            total = merged["count"] + h["count"]
            if total:
                for p in ("p50", "p90", "p99"):
                    merged[p] = (merged[p] * merged["count"]
                                 + h[p] * h["count"]) / total
            merged["count"] = total
            merged["sum"] += h["sum"]
            merged["min"] = min(merged["min"], h["min"])
            merged["max"] = max(merged["max"], h["max"])
            merged["mean"] = merged["sum"] / total if total else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def render_stats(events: Sequence[Dict]) -> str:
    """Human-readable per-iteration breakdown + whole-run totals."""
    from ..evaluation.formatting import render_table

    parts: List[str] = []
    rows = iteration_rows(events)
    if rows:
        table_rows = []
        for row in rows:
            table_rows.append([
                row["iteration"], row["status"], row["instrs"],
                row["trace_bytes"],
                f"{row['production_s']:.3f}", f"{row['decode_s']:.3f}",
                f"{row['symex_s']:.3f}", f"{row['selection_s']:.3f}",
                row["solver_calls"], f"{row['modelled_s']:.1f}",
                row["recorded_bytes"],
            ])
        parts.append(render_table(
            ["iter", "status", "instrs", "trace B", "production s",
             "decode s", "symex s", "select s", "solver calls",
             "modelled s", "recorded B"],
            table_rows, "Per-iteration cost breakdown"))
    else:
        parts.append("no per-iteration events in this stream "
                     "(not a `repro reproduce --telemetry` log?)")

    metrics = final_snapshot(events)
    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            parts.append(render_table(
                ["counter", "value"],
                sorted(counters.items()), "Counters"))
        hits = counters.get("solver.cache.hits", 0)
        misses = counters.get("solver.cache.misses", 0)
        if hits or misses:
            probes = counters.get("solver.cache.model_probe_hits", 0)
            # a successful model probe is counted as a miss plus
            # model_probe_hits, so fold it back into the answered side;
            # subsumption/disk answers already ride inside `hits`
            rate = (hits + probes) / (hits + misses)
            line = (f"solver cache: {hits} hits / {misses} misses "
                    f"({rate:.1%} hit rate incl. "
                    f"{probes} model-probe hits)")
            subsumed = counters.get("solver.cache.subsumption_hits", 0)
            disk = counters.get("solver.cache.disk_hits", 0)
            if subsumed or disk:
                line += (f", {subsumed} subsumption hits, "
                         f"{disk} disk hits")
                tiers = [
                    (name, counters.get(f"solver.cache.disk_hits_{name}",
                                        0))
                    for name in ("exact", "subsume", "values")]
                if any(value for _, value in tiers):
                    # per-tier disk attribution: `disk_hits` alone folds
                    # exact, subsume, and value-enumeration answers
                    line += (" ("
                             + ", ".join(f"{value} {name}"
                                         for name, value in tiers)
                             + ")")
            parts.append(line)
        races = counters.get("solver.portfolio.races", 0)
        if races:
            wins = {name[len("solver.portfolio.wins."):]: value
                    for name, value in counters.items()
                    if name.startswith("solver.portfolio.wins.")}
            win_text = ", ".join(f"{name} {count}" for name, count
                                 in sorted(wins.items()))
            parts.append(
                f"solver portfolio: {races} races (wins: {win_text}); "
                f"{counters.get('solver.portfolio.rescues', 0)} unsat "
                f"rescues, "
                f"{counters.get('solver.portfolio.cancelled', 0)} "
                f"cancelled, "
                f"{counters.get('solver.portfolio.variant_sat_discarded', 0)}"
                " variant models discarded")
        inc_queries = counters.get("solver.incremental.queries", 0)
        if inc_queries:
            parts.append(
                f"incremental solving: {inc_queries} session queries, "
                f"{counters.get('solver.incremental.reused_terms', 0)} "
                f"constraints answered from the assumption stack, "
                f"{counters.get('solver.incremental.conflicts_learned', 0)} "
                f"conflicts learned, "
                f"{counters.get('solver.incremental.skipped_candidates', 0)} "
                f"candidates pruned")
        histograms = metrics.get("histograms", {})
        speculations = counters.get("pipeline.speculations", 0)
        spinups = counters.get("parallel.pool.spinups", 0)
        pipeline_active = any(
            name.startswith("pipeline.") for name in counters)
        if speculations or spinups or pipeline_active:
            commits = counters.get("pipeline.commits", 0)
            hit_rate = (f"{commits / speculations:.1%}"
                        if speculations else "n/a")
            overlap = histograms.get("pipeline.overlap_seconds",
                                     {}).get("sum", 0.0)
            generations = counters.get("parallel.pool.generations", 0)
            parts.append(
                f"pipeline: {speculations} speculations, {commits} "
                f"committed ({hit_rate} hit rate), "
                f"{counters.get('pipeline.discards', 0)} discarded, "
                f"{counters.get('pipeline.unspeculable_stalls', 0)} "
                f"unspeculable stalls, "
                f"{counters.get('pipeline.enum_timeouts', 0)} "
                f"enumeration timeouts; {overlap:.3f}s overlapped with "
                f"the production wait; preshard "
                f"{counters.get('pipeline.preshard_hits', 0)} hits / "
                f"{counters.get('pipeline.preshard_misses', 0)} misses; "
                f"worker pool: {spinups} spin-ups over {generations} "
                f"jobs ({counters.get('parallel.pool.reuses', 0)} "
                f"reused, {counters.get('parallel.pool.reaps', 0)} "
                f"idle reaps)")
        reports = counters.get("serve.reports", 0)
        if reports:
            wait = histograms.get(
                "serve.first_reoccurrence_wait_seconds", {})
            parts.append(
                f"fleet serve: {reports} failure reports over "
                f"{counters.get('serve.instance_runs', 0)} instance "
                f"runs into {counters.get('serve.buckets', 0)} "
                f"signature bucket(s); "
                f"{counters.get('serve.deduplicated_reports', 0)} "
                f"deduplicated, "
                f"{counters.get('serve.stale_reports', 0)} stale, "
                f"{counters.get('serve.redeployments', 0)} "
                f"redeployments, "
                f"{counters.get('serve.instance_errors', 0)} instance "
                f"errors; reoccurrence wait "
                f"{wait.get('sum', 0.0):.3f}s across "
                f"{wait.get('count', 0)} bucket(s)")
        overhead_names = {name for _, name in OVERHEAD_SOURCES}
        span_rows = []
        metric_rows = []
        for name, h in sorted(histograms.items()):
            if name in overhead_names:
                continue  # rendered in the overhead-attribution table
            if name.startswith("span."):
                span_rows.append([name[len("span."):], h["count"],
                                  f"{h['sum']:.3f}", f"{h['mean']:.4f}",
                                  f"{h['p90']:.4f}"])
            else:
                metric_rows.append([name, h["count"], f"{h['min']:.0f}",
                                    f"{h['mean']:.1f}",
                                    f"{h['p90']:.1f}", f"{h['max']:.0f}"])
        if span_rows:
            parts.append(render_table(
                ["span", "count", "total s", "mean s", "p90 s"],
                span_rows, "Span timings"))
        if metric_rows:
            parts.append(render_table(
                ["histogram", "count", "min", "mean", "p90", "max"],
                metric_rows, "Metric histograms"))
        overhead = overhead_attribution(metrics)
        if any(entry["count"] for entry in overhead.values()):
            parts.append(render_table(
                ["source", "count", "total s", "mean s"],
                [[entry["label"], entry["count"],
                  f"{entry['total_s']:.3f}", f"{entry['mean_s']:.4f}"]
                 for entry in overhead.values()],
                "Overhead attribution"))
    return "\n\n".join(parts)
