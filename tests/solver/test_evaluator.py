"""Three-valued evaluation: partial knowledge and work charging."""

import pytest

from repro.errors import SolverTimeout
from repro.solver import terms as T
from repro.solver.budget import Budget, UnlimitedBudget
from repro.solver.evaluator import tv_eval


@pytest.fixture(autouse=True)
def fresh_cache():
    T.clear_term_cache()
    yield


def ev(term, env=None, budget=None):
    return tv_eval(term, env or {}, budget or UnlimitedBudget())


class TestBasics:
    def test_const(self):
        assert ev(T.const(7)) == 7

    def test_unassigned_var_unknown(self):
        assert ev(T.var("a")) is None

    def test_assigned_var(self):
        assert ev(T.var("a"), {"a": 9}) == 9

    def test_binop_known(self):
        t = T.binop("add", T.var("a"), T.var("b"), 8)
        assert ev(t, {"a": 200, "b": 100}) == 44

    def test_binop_partial_unknown(self):
        t = T.binop("add", T.var("a"), T.var("b"))
        assert ev(t, {"a": 1}) is None

    def test_and_zero_short_circuits(self):
        t = T.binop("and", T.const(0), T.var("a"))
        assert ev(t) == 0

    def test_mul_zero_short_circuits(self):
        t = T.binop("mul", T.var("a"), T.const(0))
        # folded at construction, but check via non-folded shape
        t2 = T.binop("mul", T.var("a"), T.var("b"))
        assert ev(t2, {"b": 0}) == 0

    def test_cmp(self):
        t = T.cmp("ult", T.var("a"), T.const(5), 8)
        assert ev(t, {"a": 3}) == 1
        assert ev(t, {"a": 9}) == 0

    def test_division_by_zero_infeasible(self):
        t = T.binop("udiv", T.const(4), T.var("a"), 8)
        assert ev(t, {"a": 0}) is None

    def test_concat_and_extract(self):
        t = T.concat([T.var("a"), T.var("b")])
        assert ev(t, {"a": 0x34, "b": 0x12}) == 0x1234
        assert ev(T.extract(t, 1), {"a": 0x34, "b": 0x12}) == 0x12

    def test_ite_evaluates_only_taken_branch(self):
        cond = T.cmp("eq", T.var("c"), T.const(1), 8)
        t = T.ite(cond, T.const(10), T.var("unset"))
        assert ev(t, {"c": 1}) == 10


class TestReads:
    def _chain(self, n_stores=3):
        arr = T.array("A", bytes(range(16)))
        node = arr
        for i in range(n_stores):
            node = T.store(node, T.var(f"i{i}"), T.const(100 + i, 8))
        return node

    def test_read_resolves_through_chain(self):
        chain = self._chain(2)
        env = {"i0": 3, "i1": 7, "j": 3}
        # i1 != 3, i0 == 3 -> value 100
        assert ev(T.read(chain, T.var("j")), env) == 100

    def test_read_hits_topmost_store(self):
        chain = self._chain(2)
        env = {"i0": 3, "i1": 3, "j": 3}
        assert ev(T.read(chain, T.var("j")), env) == 101

    def test_read_falls_through_to_base(self):
        chain = self._chain(2)
        env = {"i0": 3, "i1": 7, "j": 5}
        assert ev(T.read(chain, T.var("j")), env) == 5

    def test_unknown_index_is_unknown(self):
        chain = self._chain(1)
        assert ev(T.read(chain, T.var("j")), {"i0": 0}) is None

    def test_unknown_store_index_blocks(self):
        chain = self._chain(1)
        assert ev(T.read(chain, T.var("j")), {"j": 5}) is None

    def test_out_of_bounds_read_infeasible(self):
        arr = T.array("A", bytes(4))
        assert ev(T.read(arr, T.var("j")), {"j": 99}) is None


class TestWorkCharging:
    def test_budget_charged_per_node(self):
        budget = Budget(1_000_000)
        t = T.binop("add", T.var("a"), T.var("b"))
        tv_eval(t, {"a": 1, "b": 2}, budget)
        assert budget.spent >= 3

    def test_chain_walk_costs_per_store(self):
        arr = T.array("A", bytes(16))
        node = arr
        for i in range(10):
            node = T.store(node, T.const(i), T.var(f"v{i}"))
        env = {f"v{i}": 0 for i in range(10)}
        env["j"] = 15
        short_budget = Budget(1_000_000)
        tv_eval(T.read(T.store(arr, T.const(0), T.var("v0")),
                       T.var("j")), env, short_budget)
        long_budget = Budget(1_000_000)
        tv_eval(T.read(node, T.var("j")), env, long_budget)
        assert long_budget.spent > short_budget.spent

    def test_large_object_costs_more_when_unresolved(self):
        small = T.array("S", bytes(16))
        large = T.array("L", bytes(4096))
        env = {}  # index unknown
        b_small, b_large = Budget(10**9), Budget(10**9)
        tv_eval(T.read(small, T.var("i")), env, b_small)
        tv_eval(T.read(large, T.var("i")), env, b_large)
        assert b_large.spent > b_small.spent

    def test_timeout_raised(self):
        budget = Budget(2)
        t = T.binop("add", T.var("a"),
                    T.binop("mul", T.var("b"), T.var("c")))
        with pytest.raises(SolverTimeout):
            tv_eval(t, {"a": 1, "b": 2, "c": 3}, budget)

    def test_unlimited_budget_never_raises(self):
        budget = UnlimitedBudget()
        arr = T.array("A", bytes(4096))
        node = arr
        for i in range(100):
            node = T.store(node, T.var(f"i{i}"), T.const(0, 8))
        tv_eval(T.read(node, T.var("j")), {}, budget)
        assert budget.spent > 0

    def test_memoization_shares_subterms(self):
        shared = T.binop("mul", T.var("a"), T.var("b"))
        tree = T.binop("add", shared, shared)
        budget = Budget(10**9)
        tv_eval(tree, {"a": 3, "b": 4}, budget)
        # shared subterm evaluated once: cost well below 2x
        assert budget.spent <= 6
