"""Gap-tolerant shepherding: recovering lost TNT bits (§4).

The paper's x86→LLVM mapping drops ~8.5 % of control-flow events; KLEE
then "deals with partially-recovered traces at the expense of slight
path explosion".  This module is that bounded exploration: branches with
concrete conditions recover their outcome for free during replay; the
remaining symbolic-condition gaps form a small decision vector the
driver searches depth-first, pruning with the divergence position —
choosing a wrong bit typically contradicts a *later recorded* bit
quickly.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from .. import telemetry
from ..interp.failures import FailureInfo
from ..ir.module import Module
from ..solver import terms as T
from ..solver.cache import SolverCache
from ..trace.decoder import DecodedTrace
from .engine import ShepherdedSymex
from .result import SymexResult

logger = logging.getLogger(__name__)

#: bound on replays (exponential worst case; divergence-guided in practice)
MAX_GAP_ATTEMPTS = 512


def replay_with_gap_recovery(module: Module, trace: DecodedTrace,
                             failure: Optional[FailureInfo],
                             max_attempts: int = MAX_GAP_ATTEMPTS,
                             **engine_kwargs) -> SymexResult:
    """Shepherd a trace containing :class:`GapEvent`s.

    DFS over the symbolic-gap outcomes: default each gap to 'taken'; on
    divergence, backtrack within the bits actually consumed (later gaps
    were never reached, so their defaults are untouched).  Returns the
    first non-diverged result, or the last divergence after the search
    is exhausted.
    """
    # every attempt replays the same module and trace, so all attempts
    # share one term space and one solver cache: the common prefix's
    # queries hit the cache instead of being re-solved per replay
    cache = engine_kwargs.pop("solver_cache", None)
    if cache is None:
        cache = SolverCache()
    with T.term_scope(reuse_active=True):
        return _search_gap_decisions(module, trace, failure, max_attempts,
                                     cache, engine_kwargs)


def _search_gap_decisions(module, trace, failure, max_attempts,
                          cache, engine_kwargs):
    decisions: List[bool] = []
    last: Optional[SymexResult] = None
    for attempt in range(1, max_attempts + 1):
        engine = ShepherdedSymex(module, trace, failure,
                                 gap_decisions=decisions,
                                 solver_cache=cache, **engine_kwargs)
        result = engine.run()
        result.gap_attempts = attempt
        if result.status != "diverged":
            telemetry.count("symex.gap_recoveries")
            telemetry.get().histogram(
                "symex.gap_attempts").record(attempt)
            if attempt > 1:
                logger.debug("gap recovery converged after %d replays",
                             attempt)
            return result
        telemetry.count("symex.gap_replays")
        last = result
        # the bits consumed up to the divergence are the DFS prefix
        prefix = list(result.gap_bits)
        while prefix and prefix[-1] is False:
            prefix.pop()          # False branch exhausted: backtrack
        if not prefix:
            break                 # whole space explored
        prefix[-1] = False        # try the other outcome
        decisions = prefix
    if last is None:
        raise ValueError("trace has no chunks")
    last.divergence_reason += f" (after {attempt} gap assignments)"
    return last
