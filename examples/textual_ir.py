#!/usr/bin/env python3
"""Working with programs in the textual IR (.eir) format.

The library's programs are plain data: they parse from text, print back
to text, and everything (interpreter, tracer, ER) operates on the same
Module either way.  This example loads ``examples/programs/checksum.eir``
— a byte-stream checksummer with a latent bug (the checksum of some
inputs collapses to zero and hits an ``abort``) — finds a failing input,
and reconstructs it.

Run:  python examples/textual_ir.py
"""

import pathlib

from repro import Environment, Interpreter, parse_module
from repro.core import ExecutionReconstructor, ProductionSite
from repro.ir import format_module, verify_module

PROGRAM = pathlib.Path(__file__).parent / "programs" / "checksum.eir"


def main():
    text = PROGRAM.read_text()
    module = parse_module(text)
    verify_module(module)
    print(f"loaded {PROGRAM.name}: {module.instruction_count()} "
          f"instructions in {len(module.functions)} function(s)\n")

    # round-trip sanity: print(parse(text)) is a fixpoint
    assert format_module(parse_module(format_module(module))) \
        == format_module(module)

    # a benign run
    ok = Interpreter(module, Environment({"stdin": b"hello\x00"})).run()
    print(f"checksum('hello') = "
          f"{int.from_bytes(ok.outputs['stdout'], 'little'):#010x}")

    # the failure: an empty document leaves the hash at zero
    crash = Interpreter(module, Environment({"stdin": b"\x00"})).run()
    print(f"empty input -> {crash.failure}\n")

    # ER reconstructs it from traces alone
    er = ExecutionReconstructor(module)
    report = er.reconstruct(ProductionSite(
        lambda occ: Environment({"stdin": b"\x00"})))
    print(report.summary())

    # the whole program, as text, fits in a code review:
    print("\n--- the program under reconstruction ---")
    print(text.strip())


if __name__ == "__main__":
    main()
