"""Canonical fault signatures: the fleet's deduplication key.

Pins the bucketing contract: occurrences of one bug sign identically
across instances, run-to-run noise, and ``ptwrite``-instrumented
redeploys; occurrences of different bugs never collide.
"""

import pytest

from repro.core.instrument import instrument
from repro.core.selection import RecordingItem
from repro.core.signature import (FaultSignature, canonical_signature,
                                  normalize_failure)
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.ir.module import ProgramPoint


def _fail(module, data=b"\xff"):
    run = Interpreter(module, Environment({"stdin": data})).run()
    assert run.failure is not None
    return run.failure


@pytest.fixture
def inline_abort_module():
    """Aborts in the *same block* as a recordable definition, so
    instrumenting that definition shifts the failure point's index."""
    b = ModuleBuilder("sig-demo")
    f = b.function("main", [])
    f.block("entry")
    f.input("stdin", 1, dest="%x")
    f.add("%x", 1, dest="%y")
    f.abort("boom")
    return b.build()


class TestCanonicalSignature:
    def test_same_failure_signs_identically(self, abort_module):
        # different occurrences (different inputs) of one bug
        s1 = canonical_signature(abort_module, _fail(abort_module, b"\xc8"))
        s2 = canonical_signature(abort_module, _fail(abort_module, b"\xff"))
        assert s1 == s2
        assert s1.digest == s2.digest

    def test_run_to_run_noise_excluded(self, abort_module):
        import dataclasses

        failure = _fail(abort_module)
        noisy = dataclasses.replace(failure, tid=7, address=0xdead,
                                    message="other text")
        assert canonical_signature(abort_module, failure) \
            == canonical_signature(abort_module, noisy)

    def test_instrumentation_shift_discounted(self, inline_abort_module):
        module = inline_abort_module
        bare = canonical_signature(module, _fail(module))
        # splice a ptwrite before the abort in the same block
        item = RecordingItem(ProgramPoint("main", "entry", 0), "%x", 1)
        inst = instrument(module, [item])
        shifted_failure = _fail(inst.module)
        assert shifted_failure.point != _fail(module).point  # did shift
        assert canonical_signature(inst.module, shifted_failure) == bare

    def test_distinct_failures_never_collide(self, abort_module,
                                             inline_abort_module):
        s1 = canonical_signature(abort_module, _fail(abort_module))
        s2 = canonical_signature(inline_abort_module,
                                 _fail(inline_abort_module))
        assert s1 != s2
        assert s1.digest != s2.digest

    def test_normalize_matches_original_coordinates(self,
                                                    inline_abort_module):
        module = inline_abort_module
        original = _fail(module)
        item = RecordingItem(ProgramPoint("main", "entry", 1), "%y", 1)
        inst = instrument(module, [item])
        normalized = normalize_failure(inst.module, _fail(inst.module))
        assert normalized.point == original.point
        assert normalized.matches(original)


class TestDigest:
    def test_digest_is_stable_content_hash(self):
        a = FaultSignature("abort", "main:entry:2", ("main",))
        b = FaultSignature("abort", "main:entry:2", ("main",))
        assert a.digest == b.digest
        assert len(a.digest) == 16
        int(a.digest, 16)  # hex

    def test_digest_covers_every_field(self):
        base = FaultSignature("abort", "main:entry:2", ("main",))
        assert base.digest != FaultSignature(
            "hang", "main:entry:2", ("main",)).digest
        assert base.digest != FaultSignature(
            "abort", "main:entry:3", ("main",)).digest
        assert base.digest != FaultSignature(
            "abort", "main:entry:2", ("main", "helper")).digest

    def test_to_dict_and_str(self):
        sig = FaultSignature("abort", "main:entry:2", ("main", "helper"))
        data = sig.to_dict()
        assert data["kind"] == "abort"
        assert data["site"] == "main:entry:2"
        assert data["call_stack"] == ["main", "helper"]
        assert data["digest"] == sig.digest
        rendered = str(sig)
        assert sig.digest in rendered
        assert "helper < main" in rendered
