"""Failure classification for guest programs.

A *failure* is the observable event ER reproduces: a memory-safety trap, a
failed assertion, an explicit abort, a division by zero, or a detected
hang.  :class:`FailureInfo` carries enough to match reoccurrences of the
same failure (the paper matches on program counter + call stack).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.module import ProgramPoint


class FailureKind(enum.Enum):
    NULL_DEREF = "null-pointer-dereference"
    OUT_OF_BOUNDS = "out-of-bounds-access"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    DIV_BY_ZERO = "division-by-zero"
    ASSERT = "assertion-failure"
    ABORT = "abort"
    STACK_OVERFLOW = "stack-overflow"
    HANG = "hang"


@dataclass(frozen=True)
class FailureInfo:
    """Identity of a failure occurrence.

    Two occurrences are 'the same failure' when kind, point, and call stack
    match — the matching rule the paper's prototype uses.
    """

    kind: FailureKind
    point: ProgramPoint
    call_stack: Tuple[str, ...] = ()
    message: str = ""
    tid: int = 0
    address: Optional[int] = None

    def matches(self, other: "FailureInfo") -> bool:
        """Same failure signature (ignores tid and faulting address)."""
        return (self.kind == other.kind
                and self.point == other.point
                and self.call_stack == other.call_stack)

    def __str__(self) -> str:
        stack = " < ".join(reversed(self.call_stack)) or "?"
        extra = f" addr=0x{self.address:x}" if self.address is not None else ""
        return (f"{self.kind.value} at {self.point} [{stack}]"
                f"{': ' + self.message if self.message else ''}{extra}")


class MemoryFault(Exception):
    """Internal signal raised by the memory model; converted to FailureInfo."""

    def __init__(self, kind: FailureKind, address: int, message: str = ""):
        self.kind = kind
        self.address = address
        self.message = message
        super().__init__(f"{kind.value} at 0x{address:x} {message}")
