"""Daikon-lite invariant inference and MIMIC localization."""

import pytest

from repro.interp.env import Environment
from repro.invariants.daikon import (Invariant, InvariantMiner, Sample,
                                     SampleCollector, check_invariants)
from repro.invariants.mimic import MimicLocalizer
from repro.ir.builder import ModuleBuilder
from repro.workloads.coreutils import (build_od, build_pr, od_env,
                                       od_failing_env, od_passing_envs,
                                       pr_failing_env, pr_passing_envs)


class TestInvariantTemplates:
    def test_const_invariant(self):
        inv = Invariant("f", "const", ("%x",), (5,))
        assert inv.holds({"%x": 5}) is True
        assert inv.holds({"%x": 6}) is False
        assert inv.holds({}) is None

    def test_range_invariant(self):
        inv = Invariant("f", "range", ("%x",), (1, 8))
        assert inv.holds({"%x": 8}) is True
        assert inv.holds({"%x": 0}) is False

    def test_signed_interpretation(self):
        inv = Invariant("f", "range", ("%x",), (-5, 5))
        assert inv.holds({"%x": (1 << 64) - 1}) is True  # -1 signed

    def test_binary_invariants(self):
        le = Invariant("f", "le", ("%a", "%b"))
        assert le.holds({"%a": 2, "%b": 3}) is True
        diff = Invariant("f", "diff", ("%a", "%b"), (4,))
        assert diff.holds({"%a": 7, "%b": 3}) is True
        assert diff.holds({"%a": 8, "%b": 3}) is False

    def test_describe_readable(self):
        inv = Invariant("layout", "nonzero", ("%cols",))
        assert "layout" in inv.describe() and "%cols" in inv.describe()


class TestMiner:
    def test_constant_detected(self):
        miner = InvariantMiner()
        miner.add_samples([Sample("f", {"%x": 3}), Sample("f", {"%x": 3})])
        invs = miner.invariants()
        assert any(i.kind == "const" and i.params == (3,) for i in invs)

    def test_range_detected(self):
        miner = InvariantMiner()
        for v in (2, 5, 9):
            miner.add_samples([Sample("f", {"%x": v})])
        invs = miner.invariants()
        rng = next(i for i in invs if i.kind == "range")
        assert rng.params == (2, 9)

    def test_nonzero_requires_all_nonzero(self):
        miner = InvariantMiner()
        miner.add_samples([Sample("f", {"%x": 1}), Sample("f", {"%x": 0})])
        assert not any(i.kind == "nonzero" for i in miner.invariants())

    def test_pairwise_eq(self):
        miner = InvariantMiner()
        miner.add_samples([Sample("f", {"%a": 4, "%b": 4}),
                           Sample("f", {"%a": 9, "%b": 9})])
        assert any(i.kind == "eq" for i in miner.invariants())

    def test_min_samples_threshold(self):
        miner = InvariantMiner()
        miner.add_samples([Sample("f", {"%x": 3})])
        assert miner.invariants(min_samples=2) == []

    def test_check_invariants_orders_by_execution(self):
        invs = [Invariant("f", "const", ("%x",), (1,))]
        samples = [Sample("f", {"%x": 1}), Sample("f", {"%x": 2}),
                   Sample("f", {"%x": 3})]
        violations = check_invariants(invs, samples)
        assert [s.values["%x"] for _, s in violations] == [2, 3]


class TestSampleCollector:
    def test_collects_entries_and_returns(self, call_module):
        collector = SampleCollector(call_module)
        collector.run(Environment({"stdin": bytes([5])}))
        funcs = {s.func for s in collector.samples}
        assert "double" in funcs and "double:exit" in funcs
        exit_sample = next(s for s in collector.samples
                           if s.func == "double:exit")
        assert exit_sample.values["return"] == 10


class TestMimic:
    def test_learn_rejects_failing_training_run(self):
        module = build_od()
        localizer = MimicLocalizer(module)
        with pytest.raises(ValueError):
            localizer.learn([od_failing_env()])

    def test_od_localizes_width_bug(self):
        module = build_od()
        localizer = MimicLocalizer(module)
        localizer.learn(od_passing_envs())
        loc = localizer.localize(od_failing_env())
        assert loc.failure is not None
        assert "format_line" in loc.candidate_functions()
        assert any("width" in v or "return" in v
                   for v in loc.violated_invariants())

    def test_pr_localizes_layout_bug(self):
        module = build_pr()
        localizer = MimicLocalizer(module)
        localizer.learn(pr_passing_envs())
        loc = localizer.localize(pr_failing_env())
        assert loc.candidate_functions()[0] == "layout"

    def test_passing_input_has_no_violations(self):
        module = build_od()
        localizer = MimicLocalizer(module)
        localizer.learn(od_passing_envs())
        loc = localizer.localize(od_env(4, seed=77))
        assert loc.failure is None
        # width 4 was in the training set: no violation expected
        assert not any("width" in v for v in loc.violated_invariants())

    def test_localize_before_learn_raises(self):
        localizer = MimicLocalizer(build_od())
        with pytest.raises(ValueError):
            localizer.localize(od_failing_env())


class TestExtendedTemplates:
    def test_oneof_detected(self):
        miner = InvariantMiner()
        for v in (1, 2, 4, 2, 1):
            miner.add_samples([Sample("f", {"%x": v})])
        invs = miner.invariants()
        oneof = next(i for i in invs if i.kind == "oneof")
        assert oneof.params == (1, 2, 4)
        assert oneof.holds({"%x": 4}) is True
        assert oneof.holds({"%x": 3}) is False

    def test_oneof_suppressed_for_many_values(self):
        miner = InvariantMiner()
        for v in range(10):
            miner.add_samples([Sample("f", {"%x": v * 3})])
        assert not any(i.kind == "oneof" for i in miner.invariants())

    def test_modulus_detected(self):
        miner = InvariantMiner()
        for v in (4, 8, 16, 12):
            miner.add_samples([Sample("f", {"%x": v})])
        invs = miner.invariants()
        mod = next(i for i in invs if i.kind == "mod")
        assert mod.params == (4, 0)
        assert mod.holds({"%x": 20}) is True
        assert mod.holds({"%x": 21}) is False

    def test_modulus_refined_by_gcd(self):
        miner = InvariantMiner()
        for v in (4, 8, 6):
            miner.add_samples([Sample("f", {"%x": v})])
        invs = miner.invariants()
        mod = next(i for i in invs if i.kind == "mod")
        assert mod.params == (2, 0)

    def test_no_modulus_for_consecutive(self):
        miner = InvariantMiner()
        for v in (5, 6, 7):
            miner.add_samples([Sample("f", {"%x": v})])
        assert not any(i.kind == "mod" for i in miner.invariants())

    def test_describe_new_kinds(self):
        assert "in {1, 2}" in Invariant("f", "oneof", ("%x",),
                                        (1, 2)).describe()
        assert "% 4 == 1" in Invariant("f", "mod", ("%x",),
                                       (4, 1)).describe()
