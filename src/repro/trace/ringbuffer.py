"""Per-application trace ring buffer.

The paper stores traces in a 64 MB ring buffer per monitored application
(§4), sized to hold the largest evaluated trace.  When the producer
outruns the buffer, the oldest bytes are lost; ER requires an unbroken
trace from program start, so a wrapped buffer makes reconstruction
impossible and the decoder reports truncation.
"""

from __future__ import annotations

DEFAULT_CAPACITY = 64 * 1024 * 1024


class RingBuffer:
    """Byte-granular circular buffer with overwrite-oldest semantics."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buf = bytearray()
        self.total_written = 0
        #: write() calls that overwrote surviving bytes
        self.wraps = 0
        #: bytes lost to overwrite across all wraps
        self.bytes_dropped = 0

    def write(self, data: bytes) -> None:
        self.total_written += len(data)
        if len(data) >= self.capacity:
            dropped = len(self._buf) + len(data) - self.capacity
            if dropped:
                self.wraps += 1
                self.bytes_dropped += dropped
            self._buf = bytearray(data[-self.capacity:])
            return
        self._buf += data
        if len(self._buf) > self.capacity:
            self.wraps += 1
            self.bytes_dropped += len(self._buf) - self.capacity
            del self._buf[: len(self._buf) - self.capacity]

    @property
    def wrapped(self) -> bool:
        """True if any bytes have been lost to overwrite."""
        return self.total_written > len(self._buf)

    def contents(self) -> bytes:
        """The surviving (most recent) bytes, oldest first."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)
