"""Shared fixtures: small programs and environments used across tests."""

from __future__ import annotations

import pytest

from repro.interp.env import Environment
from repro.ir.builder import ModuleBuilder


@pytest.fixture
def abort_module():
    """Reads one byte; aborts when it is >= 100."""
    b = ModuleBuilder("abort-demo")
    f = b.function("main", [])
    f.block("entry")
    x = f.input("stdin", 1, dest="%x")
    c = f.cmp("uge", "%x", 100, width=8)
    f.br(c, "boom", "ok")
    f.block("boom")
    f.abort("too big")
    f.block("ok")
    f.output("stdout", "%x", 1)
    f.ret(0)
    return b.build()


@pytest.fixture
def table_module():
    """The Fig. 3-style symbolic-write-chain program.

    V[x] = 1 at a symbolic index, then a dependent read decides the
    failure — the minimal chain/stall generator.
    """
    b = ModuleBuilder("table-demo")
    b.global_("V", 256)
    f = b.function("main", [])
    f.block("entry")
    x = f.input("stdin", 1, dest="%x")
    y = f.input("stdin", 1, dest="%y")
    g = f.global_addr("V", dest="%V")
    p = f.gep("%V", "%x", 1)
    f.store(p, 7, 1)
    q = f.gep("%V", "%y", 1)
    v = f.load(q, 1, dest="%v")
    c = f.cmp("eq", "%v", 7, width=8)
    f.br(c, "boom", "ok")
    f.block("boom")
    f.abort("aliased")
    f.block("ok")
    f.ret(0)
    return b.build()


@pytest.fixture
def call_module():
    """main -> double(x) -> ret x*2; exercises calls and returns."""
    b = ModuleBuilder("call-demo")
    f = b.function("double", ["x"])
    f.block("entry")
    y = f.mul("%x", 2)
    f.ret(y)
    f = b.function("main", [])
    f.block("entry")
    a = f.input("stdin", 1)
    r = f.call("double", [a], dest="%r")
    f.output("stdout", "%r", 2)
    f.ret("%r")
    return b.build()


@pytest.fixture
def spawn_module():
    """Two threads increment a shared counter (no race guard)."""
    b = ModuleBuilder("spawn-demo")
    b.global_("counter", 8)
    f = b.function("worker", [])
    f.block("entry")
    g = f.global_addr("counter", dest="%g")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", 10)
    f.br(done, "out", "body")
    f.block("body")
    v = f.load("%g", 8, dest="%v")
    f.add("%v", 1, dest="%v")
    f.store("%g", "%v", 8)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret(0)
    f = b.function("main", [])
    f.block("entry")
    t0 = f.spawn("worker", [], dest="%t0")
    t1 = f.spawn("worker", [], dest="%t1")
    f.join("%t0")
    f.join("%t1")
    g = f.global_addr("counter", dest="%g")
    v = f.load("%g", 8, dest="%v")
    f.output("stdout", "%v", 8)
    f.ret(0)
    return b.build()


@pytest.fixture
def env_factory():
    def make(data: bytes = b"", quantum: int = 50, **streams) -> Environment:
        all_streams = {"stdin": data}
        all_streams.update(streams)
        return Environment(all_streams, quantum=quantum)
    return make
