"""Metric primitives: counters, gauges, and bounded histograms.

All three are deliberately tiny — a telemetry registry may host hundreds
of them and hot paths (one update per solver query, per trace packet)
touch them directly, so updates are attribute arithmetic with no locking
and no allocation.  :class:`Histogram` keeps exact count/sum/min/max and
a *bounded* value sample: once the sample reaches its cap it is
decimated (every other kept value dropped, stride doubled), so memory
stays O(cap) while percentiles remain representative of the whole run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins numeric metric (buffer sizes, graph sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Value distribution with exact aggregates and a bounded sample.

    ``record`` is O(1) amortized; the sample never exceeds ``max_samples``
    entries.  When full, the sample is decimated: every other kept value
    is dropped and the keep-stride doubles, i.e. after k decimations only
    every 2^k-th recorded value is retained — a deterministic sketch that
    preserves the time-spread of the distribution.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "max_samples", "_sample", "_stride", "_pending")

    DEFAULT_MAX_SAMPLES = 1024

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 2:
            raise ValueError("histogram needs at least 2 sample slots")
        self.name = name
        self.count = 0
        self.total: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._sample: List[float] = []
        self._stride = 1          # keep every _stride-th recorded value
        self._pending = 0         # records since the last kept value

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self._sample.append(value)
        if len(self._sample) >= self.max_samples:
            del self._sample[::2]
            self._stride *= 2

    def absorb(self, agg: Dict) -> None:
        """Fold another histogram's ``to_dict()`` aggregate into this one.

        count/sum/min/max merge exactly; the percentile sketch can only
        inherit the aggregate's quantile points (the raw samples stayed
        in the other process), so percentiles after an absorb are
        approximate — same contract as
        :func:`repro.telemetry.stats.merge_snapshots`.
        """
        n = int(agg.get("count", 0))
        if n <= 0:
            return
        self.count += n
        self.total += agg.get("sum", 0.0)
        for bound, pick in (("min", min), ("max", max)):
            theirs = agg.get(bound)
            ours = getattr(self, bound)
            if theirs is not None:
                setattr(self, bound,
                        theirs if ours is None else pick(ours, theirs))
        for quantile in ("p50", "p90", "p99"):
            if quantile in agg:
                self._sample.append(agg[quantile])
                if len(self._sample) >= self.max_samples:
                    del self._sample[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over the retained sample."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"
