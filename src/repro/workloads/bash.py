"""Mini shell parser: Bash sr#108885 (NULL pointer dereference).

The real report: a 4-byte script (``))((`` variants) sends the parser
down a path where the word-list pointer for a command is NULL and gets
dereferenced.  The mini parser reads a script, tracks subshell depth,
and builds a tiny command structure; a close-paren with no open command
leaves the command's word pointer NULL, and the executor dereferences
it.

Like libpng, this failure reproduces from a *single* occurrence: the
path conditions are direct byte comparisons.

The script arrives on the ``sh`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..solver.budget import WORK_PER_SECOND
from .base import Workload


def build_bash() -> Module:
    b = ModuleBuilder("bash-108885")
    b.global_("cmd_words", 8)     # pointer to the current word list
    b.global_("word_store", 64)

    f = b.function("exec_command", [])
    f.block("entry")
    wp = f.global_addr("cmd_words", dest="%wp")
    words = f.load("%wp", 8, dest="%words")
    # BUG: no NULL check before walking the word list
    first = f.load("%words", 8, dest="%first")
    f.output("stdout", "%first", 8)
    f.ret(0)

    f = b.function("main", [])
    f.block("entry")
    wp = f.global_addr("cmd_words", dest="%wp")
    ws = f.global_addr("word_store", dest="%ws")
    f.const(0, dest="%depth")
    f.jmp("scan")
    f.block("scan")
    ch = f.input("sh", 1, dest="%ch")
    is_end = f.cmp("eq", "%ch", 0, width=8)
    f.br(is_end, "out", "classify")
    f.block("classify")
    is_open = f.cmp("eq", "%ch", ord("("), width=8)
    f.br(is_open, "open", "chk_close")
    f.block("open")
    f.add("%depth", 1, dest="%depth")
    f.store("%wp", "%ws", 8)        # subshell gets a word list
    f.jmp("scan")
    f.block("chk_close")
    is_close = f.cmp("eq", "%ch", ord(")"), width=8)
    f.br(is_close, "close", "word")
    f.block("close")
    has_open = f.cmp("ugt", "%depth", 0)
    f.br(has_open, "pop", "stray")
    f.block("pop")
    f.sub("%depth", 1, dest="%depth")
    f.call("exec_command", [])
    f.jmp("scan")
    f.block("stray")
    # BUG path: a stray ')' clears the word list, then executes
    f.store("%wp", 0, 8)
    f.call("exec_command", [])
    f.jmp("scan")
    f.block("word")
    f.store("%ws", "%ch", 1)
    # word expansion: per-character glob/quote scanning work
    f.const(0, dest="%x")
    f.jmp("expand")
    f.block("expand")
    xdone = f.cmp("uge", "%x", 12)
    f.br(xdone, "scan2", "xbody")
    f.block("xbody")
    sh = f.shl("%ch", 1, width=32)
    f.xor(sh, "%x", width=32, dest="%ch")
    f.add("%x", 1, dest="%x")
    f.jmp("expand")
    f.block("scan2")
    f.jmp("scan")
    f.block("out")
    f.ret(0)
    return b.build()


def _failing_bash(occurrence: int) -> Environment:
    scripts = [b"))((", b")(()", b"))()", b")a(("]
    return Environment({"sh": scripts[occurrence % len(scripts)] + b"\x00"})


def _benign_bash(seed: int) -> Environment:
    rng = random.Random(seed)
    # balanced scripts: a quicksort-ish nest of subshells and words
    out = bytearray()
    depth = 0
    for _ in range(rng.randint(600, 900)):
        r = rng.random()
        if r < 0.25:
            out += b"("
            depth += 1
        elif r < 0.5 and depth > 0:
            out += b")"
            depth -= 1
        else:
            out += bytes((rng.randint(ord("a"), ord("z")),))
    out += b")" * depth
    return Environment({"sh": bytes(out) + b"\x00"})


def bash_workloads():
    return [Workload(
        name="bash-108885", app="Bash 4.3.30", bug_id="sr#108885",
        bug_type="NULL pointer dereference", multithreaded=False,
        expected_kind=FailureKind.NULL_DEREF,
        build=build_bash,
        failing_env=_failing_bash, benign_env=_benign_bash,
        bench_name="Quicksort in Bash script",
        work_limit=2 * WORK_PER_SECOND,
        paper_occurrences=1, paper_instrs=866_668)]
