"""The concrete interpreter: ER's stand-in for a production machine.

Runs a :class:`~repro.ir.module.Module` against an
:class:`~repro.interp.env.Environment`, optionally streaming control-flow
and key-data-value events into a tracer (the Intel PT simulator).  Failures
(memory traps, asserts, aborts, hangs) terminate the run and are reported
as :class:`~repro.interp.failures.FailureInfo`.

Multi-threading uses a deterministic round-robin scheduler with an
instruction quantum taken from the environment.  Context switches happen
only at quantum boundaries or blocking operations — the *coarse
interleaving hypothesis* the paper relies on (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import InterpError
from ..ir import instructions as ins
from ..ir.module import Function, Module, ProgramPoint
from ..ir.ops import apply_binop, apply_cmp
from ..ir.types import mask, sign_extend
from .env import Environment
from .failures import FailureInfo, FailureKind, MemoryFault
from .memory import Memory, MemoryObject


class NullTracer:
    """Tracer that drops everything (tracing disabled)."""

    def begin_chunk(self, tid: int, timestamp: int) -> None:
        pass

    def on_branch(self, taken: bool) -> None:
        pass

    def on_ptwrite(self, tag: int, value: int) -> None:
        pass

    def end_chunk(self, n_instrs: int) -> None:
        pass


@dataclass
class Frame:
    func: Function
    block: str
    index: int
    regs: Dict[str, int]
    stack_objs: List[MemoryObject] = field(default_factory=list)
    ret_reg: Optional[str] = None


@dataclass
class ThreadState:
    tid: int
    frames: List[Frame]
    status: str = "runnable"  # runnable | blocked-join | blocked-lock | done
    wait_target: int = -1
    return_value: int = 0

    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    def call_stack(self) -> Tuple[str, ...]:
        return tuple(f.func.name for f in self.frames)

    def current_point(self) -> ProgramPoint:
        frame = self.frame
        index = min(frame.index, len(frame.func.blocks[frame.block].instrs) - 1)
        return ProgramPoint(frame.func.name, frame.block, index)


@dataclass
class RunResult:
    """Outcome of one interpreted execution."""

    failure: Optional[FailureInfo]
    return_value: int
    instr_count: int
    outputs: Dict[str, bytes]
    env: Environment
    chunk_count: int = 0
    ptwrite_count: int = 0
    branch_count: int = 0
    thread_count: int = 1

    @property
    def failed(self) -> bool:
        return self.failure is not None


class _Halt(Exception):
    """Internal: stop the run (failure or main returned)."""


class Interpreter:
    """Executes a module; deterministic for a fixed environment."""

    #: timestamp granularity: ts = instr_count >> TS_SHIFT (coarse MTC)
    TS_SHIFT = 4

    def __init__(self, module: Module, env: Environment, *,
                 tracer=None, max_steps: int = 20_000_000,
                 stack_limit: int = 512,
                 hang_as_failure: bool = False,
                 on_step: Optional[Callable] = None):
        self.module = module
        self.env = env
        self.tracer = tracer if tracer is not None else NullTracer()
        self.max_steps = max_steps
        self.stack_limit = stack_limit
        self.hang_as_failure = hang_as_failure
        self.on_step = on_step

        self.memory = Memory(module)
        self.threads: List[ThreadState] = []
        self.mutexes: Dict[int, Optional[int]] = {}
        self.outputs: Dict[str, bytearray] = {}
        self.steps = 0
        self.branch_count = 0
        self.ptwrite_count = 0
        self.chunk_count = 0
        self._failure: Optional[FailureInfo] = None
        self._main_returned: Optional[int] = None
        self._rr_cursor = 0

        self._dispatch = {
            ins.Const: self._exec_const,
            ins.BinOp: self._exec_binop,
            ins.Cmp: self._exec_cmp,
            ins.Select: self._exec_select,
            ins.Trunc: self._exec_trunc,
            ins.SExt: self._exec_sext,
            ins.GlobalAddr: self._exec_global,
            ins.FrameAlloc: self._exec_alloca,
            ins.HeapAlloc: self._exec_malloc,
            ins.HeapFree: self._exec_free,
            ins.Gep: self._exec_gep,
            ins.Load: self._exec_load,
            ins.Store: self._exec_store,
            ins.Jmp: self._exec_jmp,
            ins.Br: self._exec_br,
            ins.Call: self._exec_call,
            ins.Ret: self._exec_ret,
            ins.Input: self._exec_input,
            ins.Output: self._exec_output,
            ins.Assert: self._exec_assert,
            ins.Abort: self._exec_abort,
            ins.PtWrite: self._exec_ptwrite,
            ins.Spawn: self._exec_spawn,
            ins.Join: self._exec_join,
            ins.Lock: self._exec_lock,
            ins.Unlock: self._exec_unlock,
            ins.Nop: self._exec_nop,
        }

    # ------------------------------------------------------------------
    # public API

    def run(self, args: Tuple[int, ...] = ()) -> RunResult:
        main = self.module.function("main")
        if len(args) != len(main.params):
            raise InterpError(
                f"main expects {len(main.params)} args, got {len(args)}")
        regs = {p: mask(a) for p, a in zip(main.params, args)}
        frame = Frame(main, next(iter(main.blocks)), 0, regs)
        self.threads = [ThreadState(0, [frame])]
        try:
            self._schedule()
        except _Halt:
            pass
        return RunResult(
            failure=self._failure,
            return_value=self._main_returned or 0,
            instr_count=self.steps,
            outputs={k: bytes(v) for k, v in self.outputs.items()},
            env=self.env,
            chunk_count=self.chunk_count,
            ptwrite_count=self.ptwrite_count,
            branch_count=self.branch_count,
            thread_count=len(self.threads),
        )

    # ------------------------------------------------------------------
    # scheduler

    def _runnable(self) -> List[ThreadState]:
        return [t for t in self.threads if t.status == "runnable"]

    def _schedule(self) -> None:
        quantum = max(1, self.env.quantum)
        while True:
            runnable = self._runnable()
            if not runnable:
                if any(t.status.startswith("blocked") for t in self.threads):
                    self._fail_current(self.threads[0], FailureKind.HANG,
                                       "deadlock: all threads blocked")
                return
            # round-robin: rotate through runnable threads in tid order
            thread = runnable[self._rr_cursor % len(runnable)]
            self._rr_cursor += 1
            self._run_chunk(thread, quantum)

    def _run_chunk(self, thread: ThreadState, quantum: int) -> None:
        self.chunk_count += 1
        self.tracer.begin_chunk(thread.tid, self.steps >> self.TS_SHIFT)
        executed = 0
        try:
            while executed < quantum and thread.status == "runnable":
                if self.steps >= self.max_steps:
                    if self.hang_as_failure:
                        self._fail_current(thread, FailureKind.HANG,
                                           "step budget exhausted")
                    raise InterpError("max_steps exceeded (possible hang)")
                advanced = self._step(thread)
                if advanced:
                    executed += 1
                else:
                    break  # blocked without executing
        finally:
            self.tracer.end_chunk(executed)

    # ------------------------------------------------------------------
    # single step

    def _step(self, thread: ThreadState) -> bool:
        """Execute one instruction of ``thread``.

        Returns True if an instruction retired, False if the thread
        blocked before executing.
        """
        frame = thread.frame
        block = frame.func.blocks[frame.block]
        instr = block.instrs[frame.index]
        handler = self._dispatch[type(instr)]
        if self.on_step is not None:
            self.on_step(thread, ProgramPoint(frame.func.name, frame.block,
                                              frame.index), instr)
        try:
            advanced = handler(thread, frame, instr)
        except MemoryFault as fault:
            self._fail_current(thread, fault.kind, fault.message,
                               address=fault.address)
            return True  # unreachable; _fail_current raises
        if advanced:
            self.steps += 1
        return advanced

    def _advance(self, frame: Frame) -> None:
        frame.index += 1

    def _fail_current(self, thread: ThreadState, kind: FailureKind,
                      message: str = "", address: Optional[int] = None):
        self._failure = FailureInfo(
            kind=kind,
            point=thread.current_point(),
            call_stack=thread.call_stack(),
            message=message,
            tid=thread.tid,
            address=address,
        )
        raise _Halt()

    # ------------------------------------------------------------------
    # operand evaluation

    def _value(self, frame: Frame, operand) -> int:
        if isinstance(operand, str):
            try:
                return frame.regs[operand]
            except KeyError:
                raise InterpError(
                    f"read of unset register {operand} in {frame.func.name}"
                ) from None
        return mask(operand)

    # ------------------------------------------------------------------
    # instruction handlers (each returns True if the instruction retired)

    def _exec_const(self, thread, frame, instr) -> bool:
        frame.regs[instr.dest] = mask(instr.value)
        self._advance(frame)
        return True

    def _exec_binop(self, thread, frame, instr) -> bool:
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        width = instr.width
        op = instr.op
        if op in ("udiv", "sdiv", "urem", "srem") and mask(rhs, width) == 0:
            self._fail_current(thread, FailureKind.DIV_BY_ZERO,
                               f"{op} by zero")
        frame.regs[instr.dest] = apply_binop(op, lhs, rhs, width)
        self._advance(frame)
        return True

    def _exec_cmp(self, thread, frame, instr) -> bool:
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        frame.regs[instr.dest] = apply_cmp(instr.op, lhs, rhs, instr.width)
        self._advance(frame)
        return True

    def _exec_select(self, thread, frame, instr) -> bool:
        cond = self._value(frame, instr.cond)
        chosen = instr.if_true if cond != 0 else instr.if_false
        frame.regs[instr.dest] = self._value(frame, chosen)
        self._advance(frame)
        return True

    def _exec_trunc(self, thread, frame, instr) -> bool:
        frame.regs[instr.dest] = mask(self._value(frame, instr.value),
                                      instr.width)
        self._advance(frame)
        return True

    def _exec_sext(self, thread, frame, instr) -> bool:
        frame.regs[instr.dest] = sign_extend(
            self._value(frame, instr.value), instr.from_width)
        self._advance(frame)
        return True

    def _exec_global(self, thread, frame, instr) -> bool:
        frame.regs[instr.dest] = self.memory.global_addrs[instr.name]
        self._advance(frame)
        return True

    def _exec_alloca(self, thread, frame, instr) -> bool:
        obj = self.memory.alloc_stack(
            f"{frame.func.name}.{instr.name}", instr.size)
        frame.stack_objs.append(obj)
        frame.regs[instr.dest] = obj.base
        self._advance(frame)
        return True

    def _exec_malloc(self, thread, frame, instr) -> bool:
        size = self._value(frame, instr.size)
        obj = self.memory.alloc_heap(size)
        frame.regs[instr.dest] = obj.base
        self._advance(frame)
        return True

    def _exec_free(self, thread, frame, instr) -> bool:
        addr = self._value(frame, instr.addr)
        self.memory.free_heap(addr)
        self._advance(frame)
        return True

    def _exec_gep(self, thread, frame, instr) -> bool:
        base = self._value(frame, instr.base)
        index = self._value(frame, instr.index)
        frame.regs[instr.dest] = mask(base + index * instr.scale)
        self._advance(frame)
        return True

    def _exec_load(self, thread, frame, instr) -> bool:
        addr = self._value(frame, instr.addr)
        frame.regs[instr.dest] = self.memory.load(addr, instr.size)
        self._advance(frame)
        return True

    def _exec_store(self, thread, frame, instr) -> bool:
        addr = self._value(frame, instr.addr)
        value = self._value(frame, instr.value)
        self.memory.store(addr, value, instr.size)
        self._advance(frame)
        return True

    def _exec_jmp(self, thread, frame, instr) -> bool:
        frame.block = instr.label
        frame.index = 0
        return True

    def _exec_br(self, thread, frame, instr) -> bool:
        taken = self._value(frame, instr.cond) != 0
        self.branch_count += 1
        self.tracer.on_branch(taken)
        frame.block = instr.if_true if taken else instr.if_false
        frame.index = 0
        return True

    def _exec_call(self, thread, frame, instr) -> bool:
        if len(thread.frames) >= self.stack_limit:
            self._fail_current(thread, FailureKind.STACK_OVERFLOW,
                               f"call depth {len(thread.frames)}")
        callee = self.module.function(instr.func)
        regs = {p: self._value(frame, a)
                for p, a in zip(callee.params, instr.args)}
        self._advance(frame)  # return continues after the call
        thread.frames.append(Frame(callee, next(iter(callee.blocks)), 0,
                                   regs, ret_reg=instr.dest))
        return True

    def _exec_ret(self, thread, frame, instr) -> bool:
        value = 0 if instr.value is None else self._value(frame, instr.value)
        for obj in frame.stack_objs:
            self.memory.release_stack(obj)
        thread.frames.pop()
        if not thread.frames:
            thread.status = "done"
            thread.return_value = value
            self._wake_joiners(thread.tid)
            if thread.tid == 0:
                self._main_returned = value
                raise _Halt()
            return True
        caller = thread.frame
        ret_reg = frame.ret_reg
        if ret_reg is not None:
            caller.regs[ret_reg] = value
        return True

    def _exec_input(self, thread, frame, instr) -> bool:
        data = self.env.read(instr.stream, instr.size)
        frame.regs[instr.dest] = int.from_bytes(data, "little")
        self._advance(frame)
        return True

    def _exec_output(self, thread, frame, instr) -> bool:
        value = self._value(frame, instr.value)
        buf = self.outputs.setdefault(instr.stream, bytearray())
        buf += mask(value, instr.size * 8).to_bytes(instr.size, "little")
        self._advance(frame)
        return True

    def _exec_assert(self, thread, frame, instr) -> bool:
        if self._value(frame, instr.cond) == 0:
            self._fail_current(thread, FailureKind.ASSERT, instr.message)
        self._advance(frame)
        return True

    def _exec_abort(self, thread, frame, instr) -> bool:
        self._fail_current(thread, FailureKind.ABORT, instr.message)
        return True  # unreachable

    def _exec_ptwrite(self, thread, frame, instr) -> bool:
        value = self._value(frame, instr.value)
        self.ptwrite_count += 1
        self.tracer.on_ptwrite(instr.tag, value)
        self._advance(frame)
        return True

    def _exec_spawn(self, thread, frame, instr) -> bool:
        callee = self.module.function(instr.func)
        regs = {p: self._value(frame, a)
                for p, a in zip(callee.params, instr.args)}
        tid = len(self.threads)
        self.threads.append(ThreadState(
            tid, [Frame(callee, next(iter(callee.blocks)), 0, regs)]))
        frame.regs[instr.dest] = tid
        self._advance(frame)
        return True

    def _exec_join(self, thread, frame, instr) -> bool:
        tid = self._value(frame, instr.tid)
        if tid >= len(self.threads):
            raise InterpError(f"join of unknown thread {tid}")
        target = self.threads[tid]
        if target.status != "done":
            thread.status = "blocked-join"
            thread.wait_target = tid
            return False
        self._advance(frame)
        return True

    def _exec_lock(self, thread, frame, instr) -> bool:
        mutex = self._value(frame, instr.mutex)
        owner = self.mutexes.get(mutex)
        if owner is not None and owner != thread.tid:
            thread.status = "blocked-lock"
            thread.wait_target = mutex
            return False
        self.mutexes[mutex] = thread.tid
        self._advance(frame)
        return True

    def _exec_unlock(self, thread, frame, instr) -> bool:
        mutex = self._value(frame, instr.mutex)
        if self.mutexes.get(mutex) != thread.tid:
            raise InterpError(
                f"thread {thread.tid} unlocking mutex {mutex} it doesn't own")
        self.mutexes[mutex] = None
        for other in self.threads:
            if other.status == "blocked-lock" and other.wait_target == mutex:
                other.status = "runnable"
        self._advance(frame)
        return True

    def _exec_nop(self, thread, frame, instr) -> bool:
        self._advance(frame)
        return True

    def _wake_joiners(self, tid: int) -> None:
        for other in self.threads:
            if other.status == "blocked-join" and other.wait_target == tid:
                other.status = "runnable"
