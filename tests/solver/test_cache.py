"""SolverCache: memoization, model probing, warm starts, enumeration."""

import pytest

from repro import telemetry
from repro.errors import SolverTimeout
from repro.solver import (Solver, SolverCache, UnlimitedBudget,
                          ValueEnumeration)
from repro.solver import terms as T


@pytest.fixture(autouse=True)
def fresh_terms():
    with T.term_scope():
        yield


@pytest.fixture
def tel():
    registry = telemetry.Telemetry()
    with telemetry.scoped(registry):
        yield registry


def _c(name, value):
    return T.cmp("eq", T.var(name), T.const(value), 8)


class TestCacheUnit:
    def test_key_erases_order_and_duplicates(self):
        a, b = _c("a", 1), _c("b", 2)
        assert SolverCache.key([a, b]) == SolverCache.key([b, a, a])

    def test_feasible_roundtrip_counts(self):
        cache = SolverCache()
        key = SolverCache.key([_c("a", 1)])
        assert cache.lookup_feasible(key) is None
        cache.store_feasible(key, True)
        assert cache.lookup_feasible(key) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = SolverCache(max_entries=2)
        keys = [SolverCache.key([_c("a", v)]) for v in range(3)]
        for key in keys:
            cache.store_feasible(key, True)
        assert cache.lookup_feasible(keys[0]) is None  # evicted
        assert cache.lookup_feasible(keys[2]) is True

    def test_models_dedup_and_order(self):
        cache = SolverCache()
        cache.record_model({"a": 1})
        cache.record_model({"a": 1})
        cache.record_model({"a": 2})
        assert cache.recent_models() == [{"a": 2}, {"a": 1}]
        assert cache.hints() == {"a": 2}

    def test_model_window_bounded(self):
        cache = SolverCache(max_models=2)
        for v in range(5):
            cache.record_model({"a": v})
        assert len(cache.recent_models()) == 2

    def test_stats_shape(self):
        cache = SolverCache()
        stats = cache.stats()
        assert {"hits", "misses", "hit_rate"} <= set(stats)


class TestValueEnumeration:
    def test_is_still_a_list(self):
        values = ValueEnumeration([1, 2], complete=True)
        assert values == [1, 2]
        assert sorted(values) == [1, 2]

    def test_partial_flags(self):
        values = ValueEnumeration([1], truncated_reason="limit")
        assert not values.complete
        assert values.truncated_reason == "limit"
        assert "partial" in repr(values)


class TestSolverIntegration:
    def test_repeat_query_hits(self, tel):
        solver = Solver(cache=SolverCache())
        cs = [_c("a", 5)]
        assert solver.is_feasible(cs)
        assert solver.is_feasible(cs)
        assert tel.counter("solver.cache.hits").value == 1
        assert tel.counter("solver.cache.misses").value == 1

    def test_normalized_key_hits_across_orderings(self, tel):
        solver = Solver(cache=SolverCache())
        a, b = _c("a", 5), _c("b", 6)
        assert solver.is_feasible([a, b])
        assert solver.is_feasible([b, a, a])   # same normalized key
        assert tel.counter("solver.cache.hits").value == 1

    def test_infeasible_cached_too(self, tel):
        solver = Solver(cache=SolverCache())
        cs = [_c("a", 1), _c("a", 2)]
        assert not solver.is_feasible(cs)
        assert not solver.is_feasible(cs)
        assert tel.counter("solver.cache.hits").value == 1

    def test_model_probe_answers_weaker_query(self, tel):
        cache = SolverCache()
        solver = Solver(cache=cache)
        solver.solve([_c("a", 5)])             # records the model a=5
        grown = [_c("a", 5), T.cmp("ult", T.var("a"), T.const(10), 8)]
        assert solver.is_feasible(grown)       # model satisfies it
        assert cache.model_probe_hits == 1
        assert tel.counter("solver.cache.model_probe_hits").value == 1
        # and the probe result was stored: the retry is an exact hit
        assert solver.is_feasible(grown)
        assert tel.counter("solver.cache.hits").value == 1

    def test_warm_start_reuses_last_model(self):
        cache = SolverCache()
        solver = Solver(cache=cache)
        first = solver.solve([T.cmp("ugt", T.var("a"), T.const(40), 8),
                              T.cmp("ult", T.var("a"), T.const(50), 8)])
        second = solver.solve([T.cmp("ugt", T.var("a"), T.const(40), 8)])
        # the weaker query starts from the previous model, so it keeps it
        assert second["a"] == first["a"]

    def test_timeouts_never_cached(self, tel):
        arr = T.array("A", bytes(2048))
        node = arr
        for i in range(150):
            node = T.store(node, T.binop("add", T.var("x"), T.const(i)),
                           T.var("v"))
        cs = [T.cmp("eq", T.read(node, T.var("y")), T.const(1, 8), 8),
              T.cmp("ult", T.var("x"), T.const(200), 64)]
        solver = Solver(work_limit=500, cache=SolverCache())
        for _ in range(2):
            with pytest.raises(SolverTimeout):
                solver.is_feasible(cs)
        assert tel.counter("solver.cache.hits").value == 0
        assert tel.counter("solver.cache.misses").value == 2

    def test_uncached_solver_unchanged(self, tel):
        solver = Solver()
        assert solver.is_feasible([_c("a", 5)])
        assert solver.is_feasible([_c("a", 5)])
        assert tel.counter("solver.cache.hits").value == 0
        assert tel.counter("solver.cache.misses").value == 0


class TestFeasibleValuesEnumeration:
    def test_unconstrained_byte_enumerates_many(self):
        # regression: a term over an unconstrained byte must enumerate
        # more than one value, not silently stop at the default model
        a = T.var("a")
        values = Solver().feasible_values(a, [], limit=5)
        assert len(values) == 5 and len(set(values)) == 5
        assert not values.complete
        assert values.truncated_reason == "limit"

    def test_exhausted_set_is_complete(self):
        a = T.var("a")
        cs = [T.cmp("ult", a, T.const(3), 8)]
        values = Solver().feasible_values(a, cs, limit=10)
        assert sorted(values) == [0, 1, 2]
        assert values.complete and values.truncated_reason is None

    def test_values_cached(self, tel):
        solver = Solver(cache=SolverCache())
        a = T.var("a")
        cs = [T.cmp("ult", a, T.const(3), 8)]
        first = solver.feasible_values(a, cs, limit=10)
        second = solver.feasible_values(a, cs, limit=10)
        assert first == second and second.complete
        assert tel.counter("solver.cache.hits").value == 1

    def test_partial_counter_emitted(self, tel):
        # an out-of-bounds read leaves the term unevaluable under the
        # first model: the enumeration is cut short and says so
        arr = T.array("A", bytes(4))
        term = T.read(arr, T.var("i"))
        values = Solver().feasible_values(
            term, [T.cmp("ugt", T.var("i"), T.const(100), 8)], limit=8)
        assert not values.complete
        assert values.truncated_reason == "unevaluable"
        assert tel.counter("solver.values.partial").value == 1


class TestUnlimitedBudgetWindow:
    """Regression: UnlimitedBudget must expose a real remaining() window.

    An earlier version inherited ``limit=0`` arithmetic, so every
    probe/verification window sized from ``remaining()`` collapsed to
    zero and model probing silently never fired when stalls were
    disabled.
    """

    def test_remaining_stays_huge_after_charges(self):
        budget = UnlimitedBudget()
        budget.charge(10**9)
        assert budget.remaining() >= 10**12
        assert not budget.exhausted

    def test_model_probe_fires_under_unlimited_budget(self, tel):
        cache = SolverCache()
        solver = Solver(cache=cache)
        solver.solve([_c("a", 5)])             # records the model a=5
        grown = [_c("a", 5), T.cmp("ult", T.var("a"), T.const(10), 8)]
        assert solver.is_feasible(grown, UnlimitedBudget())
        assert cache.model_probe_hits == 1
        assert tel.counter("solver.cache.model_probe_hits").value == 1
