"""Parallel batch reconstruction: many workloads, one merged report.

Reconstructions of distinct failures are embarrassingly parallel — each
one owns its module clone, production site, term space, and solver
cache — so the batch runner fans workloads out over a persistent
:class:`WorkerPool`.  Process (not thread) workers sidestep the GIL:
shepherded symbolic execution is pure Python and CPU-bound.

The pool is fork-server-style and process-wide: spawned lazily on the
first job, then *reused* across shard searches, batch runs, and the
pipelined loop's speculation tasks instead of paying a fresh
spin-up per call.  Jobs are generation-tagged — each
:meth:`WorkerPool.begin_job` broadcasts a new generation payload (the
shared module/trace/config that used to ride a pool initializer)
through per-worker control queues, so redeploying a job is a message,
not a respawn.  Workers batch their telemetry: one stats message per
job per worker instead of a snapshot per task.  Idle pools reap their
workers after :data:`POOL_IDLE_REAP_SECONDS`; :func:`close_pool` (also
registered atexit) tears the shared pool down explicitly.

Every worker runs under its own telemetry registry and ships back a
picklable :class:`BatchItem` — outcome summary, metric snapshot, and
(optionally) the structured event stream.  The parent merges the
snapshots with :func:`repro.telemetry.merge_snapshots` and can write a
single combined JSONL log (each event tagged with its workload) that
``repro stats`` renders like any single-run log.

``parallel=1`` degrades to a plain in-process loop — same code path,
same reports, no executor — which is also the serial baseline that
``repro bench`` compares against to measure the speedup.

Beside the batch runner lives :func:`shard_gap_search`: intra-
reconstruction parallelism.  One gap-recovery search (the serial DFS in
``repro.symex.gaps``) is split into decision-vector *prefix subspaces*,
each explored by a worker process confined to its prefix; the winner is
the first non-diverged outcome in serial DFS order, so the sharded
search returns the same result the serial search would.  Workers share
solver work through the persistent disk cache (``cache_dir``) and ship
back reduced, picklable outcomes — the parent replays the winning
decision vector once, in-process, to materialize the full
:class:`~repro.symex.result.SymexResult` (terms never cross process
boundaries).

Two schedulers drive the shard tasks.  The static one (``steal=False``)
fans out 2^k fixed prefixes and scans their futures in DFS order.  The
default work-stealing one keeps workers pulling subspaces from a shared
work queue; an idle worker posts a steal token, and the next busy
worker to hit a gap-decision checkpoint donates the unexplored half of
its subspace (its current decision prefix extended by one bit — the
victim keeps the half it is searching, the thief takes the sibling).
The parent consumes outcomes as they complete but commits the winner by
serial DFS order, only cancelling in-flight shards (via a shared
``multiprocessing.Event`` polled at every checkpoint) once no earlier
subspace is still outstanding — so both schedulers return byte-
identical results to the serial search.

Everything that crosses a process boundary here carries *trace
context*: the parent captures :meth:`Telemetry.trace_context` inside
its fan-out span and hands it to every worker, whose registry joins the
parent's trace (same ``trace_id``, root spans parented on the handoff
span) and rebases its clock onto the parent timeline — so a merged
event stream renders as one causally-linked tree in the Perfetto
exporter.  The schedulers also meter their own coordination overhead:
``parallel.queue_wait_seconds`` (task enqueue → dequeue, shared wall
clock), ``parallel.worker_idle_seconds`` (stealing workers blocked on
an empty work queue), ``parallel.steal_latency_seconds`` (steal token
posted → serviced), and ``parallel.pool_spinup`` / ``pool_teardown``
spans — surfaced by ``repro stats`` as the overhead-attribution table.
"""

from __future__ import annotations

import atexit
import json
import logging
import multiprocessing
import os
import pathlib
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import product
from queue import Empty
from typing import Any, Callable, Dict, Iterator, List, Optional, \
    Sequence, Tuple, Union

from . import telemetry
from .core import ExecutionReconstructor, ProductionSite
from .errors import SearchCancelled
from .solver import terms as T
from .solver.cache import SolverCache
from .solver.diskcache import DiskSolverCache
from .solver.incremental import AssumptionStack
from .symex.engine import ShepherdedSymex
from .symex.gaps import _search_gap_decisions
from .trace.degrade import gap_count
from .workloads import get_workload, workload_names

__all__ = ["BatchItem", "BatchResult", "GapShardOutcome", "WorkerPool",
           "close_pool", "get_pool", "in_pool_worker",
           "measure_incremental_ab", "private_pool", "run_batch",
           "shard_gap_search", "write_merged_jsonl"]

logger = logging.getLogger(__name__)

#: ceiling on the prefix depth (2^depth shard tasks)
MAX_SHARD_DEPTH = 6


@dataclass
class BatchItem:
    """One workload's reconstruction outcome, picklable across processes."""

    workload: str
    success: bool = False
    verified: bool = False
    occurrences: int = 0
    unrelated_occurrences: int = 0
    wall_seconds: float = 0.0
    symex_modelled_seconds: float = 0.0
    recorded_bytes: int = 0
    solver_cache: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    #: pid of the pool process that ran this workload (load balance)
    worker: int = 0
    #: this worker's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (only when events were requested)
    events: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "success": self.success,
            "verified": self.verified,
            "occurrences": self.occurrences,
            "unrelated_occurrences": self.unrelated_occurrences,
            "wall_seconds": round(self.wall_seconds, 4),
            "symex_modelled_seconds":
                round(self.symex_modelled_seconds, 4),
            "recorded_bytes": self.recorded_bytes,
            "solver_cache": self.solver_cache,
            "error": self.error,
            "worker": self.worker,
        }


@dataclass
class BatchResult:
    """The merged outcome of one batch run."""

    items: List[BatchItem]
    parallelism: int
    wall_seconds: float
    #: all workers' metric snapshots folded into one
    telemetry: Dict = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        return sum(1 for i in self.items if i.success)

    @property
    def solver_cache_stats(self) -> Dict[str, float]:
        return _solver_cache_stats(self.telemetry.get("counters", {}))

    @property
    def worker_load(self) -> Dict[str, Dict[str, float]]:
        """Per-worker load balance: tasks run and wall-time, keyed by pid."""
        load: Dict[str, Dict[str, float]] = {}
        for item in self.items:
            entry = load.setdefault(str(item.worker),
                                    {"tasks": 0, "wall_seconds": 0.0})
            entry["tasks"] += 1
            entry["wall_seconds"] = round(
                entry["wall_seconds"] + item.wall_seconds, 4)
        return load

    @property
    def overhead(self) -> Dict[str, Dict]:
        """Coordination-overhead attribution over the merged snapshot."""
        return telemetry.overhead_attribution(self.telemetry)

    def to_dict(self) -> Dict:
        return {
            "parallelism": self.parallelism,
            "wall_seconds": round(self.wall_seconds, 4),
            "succeeded": self.succeeded,
            "total": len(self.items),
            "solver_cache": self.solver_cache_stats,
            "worker_load": self.worker_load,
            "overhead": self.overhead,
            "items": [item.to_dict() for item in self.items],
        }


def _solver_cache_stats(counters: Dict) -> Dict[str, float]:
    """Fold every cache-hit tier into one effectiveness summary.

    ``hits`` already includes exact, subsumption, and disk answers (the
    top-level solver paths bump it alongside the tier counter), but a
    successful *model probe* is recorded as a miss plus
    ``model_probe_hits`` — so queries answered without a solver search
    are ``hits + model_probe_hits`` out of ``hits + misses``.  Each
    tier is reported alongside the folded rate.
    """
    hits = counters.get("solver.cache.hits", 0)
    misses = counters.get("solver.cache.misses", 0)
    probes = counters.get("solver.cache.model_probe_hits", 0)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "model_probe_hits": probes,
        "subsumption_hits":
            counters.get("solver.cache.subsumption_hits", 0),
        "disk_hits": counters.get("solver.cache.disk_hits", 0),
        "disk_hits_exact":
            counters.get("solver.cache.disk_hits_exact", 0),
        "disk_hits_subsume":
            counters.get("solver.cache.disk_hits_subsume", 0),
        "disk_hits_values":
            counters.get("solver.cache.disk_hits_values", 0),
        "hit_rate": round((hits + probes) / total, 4) if total else 0.0,
    }


def _reconstruct_one(name: str, capture_events: bool,
                     cache_dir: Optional[str] = None,
                     context: Optional[telemetry.TraceContext] = None,
                     enqueued: Optional[float] = None,
                     portfolio: int = 1,
                     pipeline: bool = False,
                     reoccurrence_delay: float = 0.0) -> BatchItem:
    """Worker body: one workload under a private telemetry registry.

    Runs in a pool process (or inline for ``parallel=1``); must only
    return picklable data, so the report's module/test-case objects are
    reduced to scalars here rather than shipped back.  ``context`` links
    the registry into the parent's trace; ``enqueued`` (the parent's
    submit wall-time) meters queue wait — which for the pool's first
    tasks honestly includes the worker-process spawn cost.
    """
    sink = telemetry.MemorySink() if capture_events else None
    registry = telemetry.Telemetry(sink, context=context)
    if enqueued is not None:
        registry.histogram("parallel.queue_wait_seconds").record(
            max(time.time() - enqueued, 0.0))
    item = BatchItem(workload=name, worker=os.getpid())
    started = time.perf_counter()
    with telemetry.scoped(registry):
        try:
            workload = get_workload(name)
            reconstructor = ExecutionReconstructor(
                workload.fresh_module(),
                work_limit=workload.work_limit,
                max_occurrences=workload.max_occurrences,
                cache_dir=cache_dir,
                portfolio=portfolio,
                pipeline=pipeline)
            report = reconstructor.reconstruct(
                ProductionSite(workload.failing_env,
                               reoccurrence_delay=reoccurrence_delay))
            item.success = report.success
            item.verified = report.verified
            item.occurrences = report.occurrences
            item.unrelated_occurrences = report.unrelated_occurrences
            item.symex_modelled_seconds = \
                report.total_symex_modelled_seconds
            item.recorded_bytes = report.total_recorded_bytes
        except Exception as exc:  # noqa: BLE001 — report, don't kill batch
            item.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
        if capture_events:
            registry.emit_snapshot()
    item.wall_seconds = time.perf_counter() - started
    item.telemetry = registry.snapshot()
    item.solver_cache = _solver_cache_stats(
        item.telemetry.get("counters", {}))
    if sink is not None:
        item.events = sink.events
    return item


def run_batch(names: Optional[Sequence[str]] = None, *,
              parallel: int = 1,
              capture_events: bool = False,
              cache_dir: Optional[str] = None,
              portfolio: int = 1,
              pipeline: bool = False,
              reoccurrence_delay: float = 0.0,
              pool: Optional[WorkerPool] = None) -> BatchResult:
    """Reconstruct ``names`` (default: every workload), ``parallel``-wide.

    Results come back in input order regardless of completion order.  A
    workload that raises contributes a :class:`BatchItem` with ``error``
    set instead of aborting the batch.  ``cache_dir`` points every
    worker at one shared persistent solver cache; ``portfolio`` is the
    per-worker solver-strategy race width (answers are unchanged, so
    batch results stay comparable across widths).  ``pool`` overrides
    the process-wide shared :class:`WorkerPool`; by default the batch
    reuses (and, first time, lazily spawns) the shared one, so repeated
    batches pay at most one spin-up.  ``pipeline`` turns on each item's
    pipelined reconstruction loop and ``reoccurrence_delay`` simulates
    the production wait it overlaps (outcomes are unaffected by both).
    """
    names = list(names) if names is not None else workload_names()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    tel = telemetry.get()
    # pool lifecycle costs live on a scratch registry so they can join
    # the *merged* snapshot (the parent's own registry is not part of
    # the per-item merge); a reused pool records nothing here — that is
    # the amortization the A/B benchmark measures
    overhead = telemetry.Telemetry()
    started = time.perf_counter()
    with tel.span("parallel.batch", workloads=len(names),
                  parallel=parallel):
        context = tel.trace_context()
        if parallel == 1 or len(names) <= 1:
            items = [_reconstruct_one(name, capture_events, cache_dir,
                                      context, None, portfolio,
                                      pipeline, reoccurrence_delay)
                     for name in names]
        else:
            workers = min(parallel, len(names))
            target = pool if pool is not None else get_pool(workers)
            # the job-level registry carries queue-wait/idle metering;
            # item event streams ride the BatchItem itself
            job = target.begin_job({}, capture_events=False,
                                   context=context)
            if job.spinup_seconds:
                overhead.histogram("span.parallel.pool_spinup").record(
                    job.spinup_seconds)
            results: Dict[int, BatchItem] = {}
            errors: List[BaseException] = []
            try:
                for name in names:
                    job.submit(_reconstruct_one, name, capture_events,
                               cache_dir, context, None, portfolio,
                               pipeline, reoccurrence_delay)
                remaining = len(names)
                while remaining:
                    kind, task_id, body = job.next_message()
                    if kind == "split":
                        continue
                    remaining -= 1
                    if kind == "err":
                        errors.append(RuntimeError(
                            f"batch task for workload "
                            f"{names[task_id]!r} failed: {body}"))
                        continue
                    results[task_id] = body
            finally:
                snapshots, _ = job.finish()
                for snapshot in snapshots:
                    overhead.absorb(snapshot)
                if pool is None:
                    target.maybe_reap()
            if errors:
                raise errors[0]
            items = [results[index] for index in range(len(names))]
    wall = time.perf_counter() - started
    merged = telemetry.merge_snapshots(
        [item.telemetry for item in items] + [overhead.snapshot()])
    telemetry.count("parallel.batches")
    telemetry.count("parallel.workloads", len(items))
    return BatchResult(items=items, parallelism=parallel,
                       wall_seconds=wall, telemetry=merged)


def write_merged_jsonl(result: BatchResult,
                       path: Union[str, pathlib.Path]) -> int:
    """Write all workers' event streams as one combined JSONL log.

    Events keep their per-worker ``seq``/``ts`` and gain a ``workload``
    field; a final ``snapshot`` event carries the *merged* metrics so
    ``repro stats`` renders whole-batch counters.  The snapshot's
    ``seq`` is strictly past every merged event's (the per-worker
    sequences overlap, so a line count would collide with them) and its
    ``ts`` is the latest merged timestamp (a registry-relative instant,
    like every other event — not the batch duration).  Returns the
    number of lines written.
    """
    lines = 0
    max_seq = 0
    max_ts = 0.0
    with open(path, "w", encoding="utf-8") as fh:
        for item in result.items:
            for event in item.events:
                if event.get("type") == "snapshot":
                    continue      # superseded by the merged snapshot
                seq = event.get("seq")
                if isinstance(seq, int):
                    max_seq = max(max_seq, seq)
                ts = event.get("ts")
                if isinstance(ts, (int, float)):
                    max_ts = max(max_ts, float(ts))
                fh.write(json.dumps({**event, "workload": item.workload},
                                    default=str) + "\n")
                lines += 1
        fh.write(json.dumps({
            "type": "snapshot", "name": "telemetry.snapshot",
            "seq": max_seq + 1, "ts": round(max_ts, 6),
            "metrics": result.telemetry,
        }) + "\n")
    return lines + 1


# ----------------------------------------------------------------------
# sharded gap recovery (intra-reconstruction parallelism)

@dataclass
class GapShardOutcome:
    """One shard's reduced search outcome, picklable across processes.

    Deliberately term-free: only the decision bits travel back; the
    parent replays them in-process to rebuild the full result.
    ``status`` extends the engine statuses with ``"cancelled"`` (the
    shard stopped at a checkpoint after the winner was committed; its
    ``gap_attempts`` count the replays finished before stopping) and
    ``"error"`` (the search raised; ``error`` carries the message).
    """

    prefix: List[bool]
    status: str = "diverged"
    gap_bits: List[bool] = field(default_factory=list)
    gap_attempts: int = 0
    divergence_reason: Optional[str] = None
    diverged_chunk: Optional[int] = None
    worker: int = 0
    wall_seconds: float = 0.0
    #: subspaces this shard donated to thieves while searching
    steals_donated: int = 0
    #: worker-side failure description (``status == "error"`` only)
    error: Optional[str] = None
    #: this shard's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (captured when the parent's sink is live)
    events: List[Dict] = field(default_factory=list)


#: per-process shard state, refreshed by each job's generation payload
#: so the module/trace are not re-pickled for every prefix task
_SHARD_STATE: Dict = {}

#: how long an idle worker waits on the task queue before (re)posting a
#: steal token, and how long the parent waits on the results queue
#: before health-checking its workers
_WORKER_POLL = 0.05
_PARENT_POLL = 0.1

#: a pool whose last job ended this long ago reaps its workers on the
#: next :meth:`WorkerPool.maybe_reap` touch (``None`` disables)
POOL_IDLE_REAP_SECONDS = 300.0

#: how long :meth:`_PoolJob.finish` waits for per-worker stats replies
_STATS_DEADLINE = 30.0


def _pool_worker_main(slot: int, control_q, task_q, results_q, steal_q,
                      cancel) -> None:
    """Persistent worker main loop: generations of tasks, one process.

    The worker alternates between its private control queue (generation
    payloads, end-of-job markers, stop) and the shared task queue.  A
    ``("gen", id, payload)`` message replaces :data:`_SHARD_STATE` and
    opens a fresh per-job telemetry registry joined to the parent's
    trace; every task of that generation runs scoped to it.  A task
    tagged with a *newer* generation than the worker has seen makes the
    worker block on its control queue — the parent always broadcasts
    the payload before enqueueing the generation's tasks, so the
    message is already in flight.  ``("end", id)`` ships the job's
    telemetry back as a single batched ``("stats", ...)`` message (one
    per job per worker, not one per task).

    Idle workers under a stealing job post steal tokens exactly as the
    old per-call loop did; idle stretches and task queue-wait land in
    the job registry.  Task exceptions are shipped as ``("err", ...)``
    messages — the worker itself never dies on a task failure.
    """
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    gen = 0
    job: Optional[Dict] = None
    idle_since: Optional[float] = None

    def apply(message) -> bool:
        nonlocal gen, job, idle_since
        kind = message[0]
        if kind == "gen":
            _, new_gen, payload = message
            gen = new_gen
            idle_since = None
            sink = (telemetry.MemorySink()
                    if payload["capture_events"] else None)
            registry = telemetry.Telemetry(sink,
                                           context=payload["context"])
            _SHARD_STATE.clear()
            _SHARD_STATE.update(payload["state"])
            _SHARD_STATE.update(
                cancel=cancel,
                steal_q=steal_q if payload["steal"] else None,
                results_q=results_q)
            job = {"registry": registry, "sink": sink,
                   "steal": payload["steal"],
                   "meter": payload["meter_queue_wait"]}
            return True
        if kind == "end":
            _, end_gen = message
            if job is not None:
                events = job["sink"].events if job["sink"] else []
                results_q.put(("stats", end_gen, slot,
                               job["registry"].snapshot(), events))
            job = None
            _SHARD_STATE.clear()
            return True
        return False  # "stop"

    while True:
        try:
            message = control_q.get_nowait()
        except Empty:
            message = None
        if message is not None:
            if not apply(message):
                return
            continue
        try:
            task = task_q.get(timeout=_WORKER_POLL)
        except Empty:
            if job is not None:
                if idle_since is None:
                    idle_since = time.perf_counter()
                if job["steal"] and not cancel.is_set() \
                        and steal_q.empty():
                    steal_q.put((slot, time.time()))
            continue
        task_id, task_gen, func, args, enqueued = task
        while task_gen > gen:
            # the payload for this task's generation precedes it in the
            # parent's send order; block on the control queue for it
            if not apply(control_q.get()):
                return
        if task_gen < gen or job is None:
            continue  # stale task from an ended generation
        registry = job["registry"]
        if idle_since is not None:
            registry.histogram("parallel.worker_idle_seconds").record(
                time.perf_counter() - idle_since)
            idle_since = None
        if job["meter"] and enqueued is not None:
            registry.histogram("parallel.queue_wait_seconds").record(
                max(time.time() - enqueued, 0.0))
        try:
            with telemetry.scoped(registry):
                result = func(*args)
            results_q.put(("done", task_id, task_gen, result))
        except Exception as exc:  # noqa: BLE001 — ship back, stay alive
            results_q.put(("err", task_id, task_gen, "".join(
                traceback.format_exception_only(type(exc), exc)).strip()))


#: set in pool worker processes: they must not spawn nested pools
_IN_POOL_WORKER = False


def in_pool_worker() -> bool:
    """True inside a pool worker (or any daemonic child) — callers use
    this to fall back to serial/inline paths instead of nesting pools."""
    return _IN_POOL_WORKER or multiprocessing.current_process().daemon


class _PoolJob:
    """One generation of tasks on a :class:`WorkerPool`.

    Created by :meth:`WorkerPool.begin_job`; the caller submits tasks,
    consumes exactly one message per task via :meth:`next_message`
    (plus any ``("split", prefix)`` donations), then calls
    :meth:`finish` to collect the per-worker telemetry batch.
    """

    def __init__(self, pool: "WorkerPool", gen: int,
                 spinup_seconds: float):
        self.pool = pool
        self.gen = gen
        #: wall cost of the worker spawn this job triggered (0.0 when
        #: the job reused live workers — the whole point of the pool)
        self.spinup_seconds = spinup_seconds
        self.submitted = 0
        self._finished = False
        self._snapshots: List[Dict] = []
        self._events: List[Dict] = []

    def submit(self, func: Callable, *args) -> int:
        task_id = self.submitted
        self.submitted += 1
        telemetry.count("parallel.pool.tasks")
        self.pool._task_q.put((task_id, self.gen, func, args,
                               time.time()))
        return task_id

    def next_message(self) -> Tuple[str, Any, Any]:
        """Next ``("done", task_id, result)``, ``("err", task_id, msg)``
        or ``("split", prefix, None)`` message; health-checks worker
        processes while the results queue is quiet."""
        pool = self.pool
        while True:
            try:
                message = pool._results_q.get(timeout=_PARENT_POLL)
            except Empty:
                for proc in pool._procs:
                    if not proc.is_alive():
                        raise RuntimeError(
                            f"pool worker pid {proc.pid} died (exit "
                            f"code {proc.exitcode}) mid-job")
                continue
            kind = message[0]
            if kind == "split":
                return ("split", message[1], None)
            if kind in ("done", "err"):
                _, task_id, gen, body = message
                if gen != self.gen:
                    continue  # leftover from an abandoned generation
                return (kind, task_id, body)
            # stray "stats" from a prior job's late worker: drop

    def finish(self) -> Tuple[List[Dict], List[Dict]]:
        """End the generation; collect each worker's batched stats.

        The caller must have consumed all its task outcomes first (the
        workers only see the ``end`` marker once they drain back to the
        control queue).  Returns ``(snapshots, events)`` — one metric
        snapshot per worker plus their buffered event streams.
        """
        if self._finished:
            return self._snapshots, self._events
        pool = self.pool
        for control in pool._controls:
            control.put(("end", self.gen))
        remaining = set(range(len(pool._procs)))
        deadline = time.monotonic() + _STATS_DEADLINE
        while remaining and time.monotonic() < deadline:
            try:
                message = pool._results_q.get(timeout=_PARENT_POLL)
            except Empty:
                for slot in list(remaining):
                    if not pool._procs[slot].is_alive():
                        remaining.discard(slot)  # crashed: no stats
                continue
            if message[0] == "stats":
                _, gen, slot, snapshot, events = message
                if gen != self.gen:
                    continue
                remaining.discard(slot)
                self._snapshots.append(snapshot)
                self._events.extend(events)
            # cancelled-task leftovers are dropped here by design
        pool._drain(pool._steal_q)
        pool._active_job = None
        pool._last_used = time.monotonic()
        self._finished = True
        return self._snapshots, self._events


class WorkerPool:
    """A persistent, generation-tagged pool of fork-server workers.

    Spawned lazily on the first job and reused across shard searches,
    batch items, and speculation tasks — redeploying work is a
    generation message on each worker's control queue, not a process
    respawn.  All queues and the shared cancel event are created before
    the workers so multiprocessing's inheritance path (not task
    pickling) carries them.  One job runs at a time; concurrency comes
    from the workers, not from overlapping jobs.
    """

    def __init__(self, workers: int, *,
                 idle_reap_seconds: Optional[float] =
                 POOL_IDLE_REAP_SECONDS):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.idle_reap_seconds = idle_reap_seconds
        self.closed = False
        #: lifetime counters (also mirrored into telemetry)
        self.spinups = 0
        self.jobs = 0
        self._ctx = multiprocessing.get_context()
        self._task_q = self._ctx.Queue()
        self._results_q = self._ctx.Queue()
        self._steal_q = self._ctx.Queue()
        self._cancel = self._ctx.Event()
        self._procs: List = []
        self._controls: List = []
        self._gen = 0
        self._active_job: Optional[_PoolJob] = None
        self._last_used = time.monotonic()

    @property
    def cancel(self):
        """The shared cooperative-cancellation event (cleared per job)."""
        return self._cancel

    @property
    def alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive()
                                         for p in self._procs)

    def pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    def grow(self, workers: int) -> None:
        """Raise the pool width (never shrinks); live pools spawn the
        extra workers immediately so the next job sees them."""
        if workers > self.workers:
            self.workers = workers
            if self._procs:
                self._spawn_missing()

    def ensure_workers(self) -> float:
        """Spawn (or respawn after a crash/reap) the worker processes.

        Returns the spin-up wall cost, 0.0 when live workers were
        reused.  The spin-up span lands on the ambient registry, so
        ``span.parallel.pool_spinup`` feeds the overhead-attribution
        table exactly as the per-call executor's did — but at most once
        per pool lifetime instead of once per search.
        """
        if self.closed:
            raise RuntimeError("worker pool is closed")
        if self.alive and len(self._procs) >= self.workers:
            return 0.0
        if self._procs and not self.alive:
            self._stop_workers()  # a crashed worker poisons the pool
        tel = telemetry.get()
        with tel.span("parallel.pool_spinup",
                      workers=self.workers) as span:
            self._spawn_missing()
        self.spinups += 1
        telemetry.count("parallel.pool.spinups")
        return span.seconds

    def begin_job(self, state: Dict, *, steal: bool = False,
                  capture_events: bool = False, context=None,
                  meter_queue_wait: bool = True) -> _PoolJob:
        """Start a new generation: broadcast ``state`` to every worker.

        ``state`` replaces the workers' :data:`_SHARD_STATE` (the old
        pool-initializer payload); ``steal`` arms idle-worker steal
        tokens; ``capture_events`` buffers worker event streams for the
        job's stats batch.  Counts a pool *reuse* when no spawn was
        needed — the telemetry the benchmark asserts amortization on.
        """
        if self._active_job is not None:
            raise RuntimeError("pool already has an active job")
        spinup = self.ensure_workers()
        self._cancel.clear()
        self._drain(self._steal_q)
        self._gen += 1
        self.jobs += 1
        telemetry.count("parallel.pool.generations")
        if spinup == 0.0:
            telemetry.count("parallel.pool.reuses")
        payload = {"state": state, "steal": steal,
                   "capture_events": capture_events, "context": context,
                   "meter_queue_wait": meter_queue_wait}
        for control in self._controls:
            control.put(("gen", self._gen, payload))
        job = _PoolJob(self, self._gen, spinup)
        self._active_job = job
        self._last_used = time.monotonic()
        return job

    def maybe_reap(self, now: Optional[float] = None) -> bool:
        """Reap live workers if the pool has idled past the threshold.

        Called opportunistically (end of a batch, pipeline wait loop);
        the pool stays open — the next job just pays a fresh spin-up.
        """
        if self.closed or not self._procs or self._active_job is not None:
            return False
        if self.idle_reap_seconds is None:
            return False
        now = time.monotonic() if now is None else now
        if now - self._last_used < self.idle_reap_seconds:
            return False
        self._stop_workers()
        telemetry.count("parallel.pool.reaps")
        return True

    def close(self) -> None:
        """Tear the pool down for good (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._procs:
            tel = telemetry.get()
            with tel.span("parallel.pool_teardown",
                          workers=len(self._procs)):
                self._stop_workers()

    # -- internals -----------------------------------------------------

    def _spawn_missing(self) -> None:
        while len(self._procs) < self.workers:
            slot = len(self._procs)
            control = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_pool_worker_main,
                name=f"repro-pool-{slot}",
                args=(slot, control, self._task_q, self._results_q,
                      self._steal_q, self._cancel),
                daemon=True)
            proc.start()
            self._controls.append(control)
            self._procs.append(proc)

    def _stop_workers(self, join_timeout: float = 5.0) -> None:
        for control in self._controls:
            try:
                control.put(("stop",))
            except Exception:  # noqa: BLE001 — teardown best-effort
                pass
        for proc in self._procs:
            proc.join(timeout=join_timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        self._controls = []
        self._gen += 1  # invalidate any stale queued tasks
        for q in (self._task_q, self._results_q, self._steal_q):
            self._drain(q)

    @staticmethod
    def _drain(q) -> None:
        while True:
            try:
                q.get_nowait()
            except Empty:
                return


#: the process-wide shared pool (lazily created, grown on demand)
_POOL: Optional[WorkerPool] = None


def get_pool(workers: int) -> WorkerPool:
    """The process-wide shared :class:`WorkerPool`, grown to at least
    ``workers`` wide.  All pool consumers (shard searches, batches,
    speculation) share it, which is what amortizes the spin-up."""
    global _POOL
    if in_pool_worker():
        raise RuntimeError("nested worker pools are not supported")
    if _POOL is None or _POOL.closed:
        _POOL = WorkerPool(workers)
    elif _POOL.workers < workers:
        _POOL.grow(workers)
    return _POOL


def close_pool() -> None:
    """Tear down the shared pool (atexit hook; also callable directly)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(close_pool)


@contextmanager
def private_pool(workers: int) -> Iterator[WorkerPool]:
    """A throwaway pool with per-call lifetime — the A/B baseline the
    benchmark compares the shared pool against."""
    pool = WorkerPool(workers, idle_reap_seconds=None)
    try:
        yield pool
    finally:
        pool.close()


class _StealControl:
    """Worker-side checkpoint hook: cancellation + subspace donation.

    ``checkpoint`` runs before every replay in
    :func:`~repro.symex.gaps._search_gap_decisions`.  It aborts the
    shard once the parent committed a winner (``cancel`` event), and —
    under the stealing scheduler — serves at most one pending steal
    token by donating the unexplored half of this shard's remaining
    subspace: the shallowest liberated decision still set to True marks
    a False-sibling subtree the DFS has not entered (the search never
    returns a bit from False to True), so extending the current prefix
    there is a sound split.  The donated prefix travels to the parent
    (a ``("split", prefix)`` result message), which accounts for the
    new subspace *before* requeueing it — a thief can therefore never
    report an outcome the parent has not yet learned to expect.
    """

    def __init__(self, prefix, cancel, steal_q=None, results_q=None):
        self.prefix = list(prefix)
        self.cancel = cancel
        self.steal_q = steal_q
        self.results_q = results_q
        self.donated = 0

    def checkpoint(self, decisions: List[bool], locked_prefix: int,
                   attempts: int) -> int:
        if self.cancel is not None and self.cancel.is_set():
            raise SearchCancelled(attempts)
        if self.steal_q is None:
            return locked_prefix
        try:
            thief, posted = self.steal_q.get_nowait()
        except Empty:
            return locked_prefix
        # token post → service latency, on the shared wall clock; the
        # instant events land on the *victim's* track (this process)
        latency = max(time.time() - posted, 0.0)
        telemetry.histogram("parallel.steal_latency_seconds").record(
            latency)
        telemetry.event("parallel.steal_token", thief=thief,
                        latency_s=round(latency, 6))
        for i in range(locked_prefix, len(decisions)):
            if decisions[i]:
                stolen = list(decisions[:i]) + [False]
                self.results_q.put(("split", stolen))
                self.donated += 1
                telemetry.event("parallel.split", thief=thief,
                                prefix_len=len(stolen))
                return i + 1
        # nothing left to halve (all remaining bits already False):
        # drop the token; idle workers re-post while the queue is dry
        return locked_prefix


def _gap_shard_run(prefix: List[bool]) -> GapShardOutcome:
    """Pool-task body: search one prefix subspace under the job state.

    Fresh term scope and in-memory solver cache per shard; the
    persistent tier (when ``cache_dir`` is set) is the only shared
    state, so shards warm-start each other's common-prefix queries
    through the disk file.  Telemetry goes to the ambient registry —
    the per-job registry the pool worker scoped this task to — and
    ships back batched in the job's stats message, so the returned
    outcome carries only the reduced search result.
    """
    state = _SHARD_STATE
    tel = telemetry.get()
    outcome = GapShardOutcome(prefix=list(prefix), worker=os.getpid())
    started = time.perf_counter()
    cache_dir = state["cache_dir"]
    cache = SolverCache(
        persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    engine_kwargs = dict(state["engine_kwargs"])
    if engine_kwargs.pop("incremental", False):
        # per-shard assumption stack: each worker's DFS walks its own
        # sibling prefixes, so retained state never crosses processes
        cache.assumptions = AssumptionStack()
    control = _StealControl(prefix, state.get("cancel"),
                            steal_q=state.get("steal_q"),
                            results_q=state.get("results_q"))
    try:
        with T.term_scope(), tel.span("parallel.shard_search",
                                      prefix_len=len(prefix)):
            result = _search_gap_decisions(
                state["module"], state["trace"], state["failure"],
                state["max_attempts"], cache, engine_kwargs,
                initial_decisions=list(prefix), locked_prefix=len(prefix),
                control=control)
    except SearchCancelled as stop:
        outcome.status = "cancelled"
        outcome.gap_attempts = stop.attempts
        outcome.divergence_reason = "cancelled: winner committed elsewhere"
        tel.event("parallel.shard_cancelled", attempts=stop.attempts)
    else:
        outcome.status = result.status
        outcome.gap_bits = list(result.gap_bits)
        outcome.gap_attempts = result.gap_attempts
        outcome.divergence_reason = result.divergence_reason
        outcome.diverged_chunk = result.diverged_chunk
    outcome.steals_donated = control.donated
    outcome.wall_seconds = time.perf_counter() - started
    return outcome


def _shard_prefixes(trace, shards: int) -> List[List[bool]]:
    """Decision-vector prefixes partitioning the gap space, in serial
    DFS order (True before False at every position), so scanning shard
    outcomes in task order finds the same first solution the serial
    search would."""
    gaps = gap_count(trace)
    depth = min(gaps, max(1, (shards - 1).bit_length() + 2),
                MAX_SHARD_DEPTH)
    if depth <= 0:
        return []
    return [list(bits) for bits in product((True, False), repeat=depth)]


def _steal_prefixes(trace, shards: int) -> List[List[bool]]:
    """Seed prefixes for the stealing scheduler: one per worker.

    Unlike the static fan-out there is no need to over-partition —
    idle workers rebalance by stealing — so the depth only covers the
    pool width and the initial tasks stay as large as possible."""
    gaps = gap_count(trace)
    depth = min(gaps, max(1, (shards - 1).bit_length()), MAX_SHARD_DEPTH)
    if depth <= 0:
        return []
    return [list(bits) for bits in product((True, False), repeat=depth)]


def _dfs_key(bits: Sequence[bool]) -> Tuple[int, ...]:
    """Serial-DFS visit order as a sortable key (True before False)."""
    return tuple(0 if bit else 1 for bit in bits)


def _choose_outcome(outcomes: Sequence[GapShardOutcome]
                    ) -> GapShardOutcome:
    """Commit the winner exactly as the serial DFS would.

    The first non-diverged leaf in serial DFS order wins; with none, the
    DFS-last subspace's final divergence stands in for the serial
    search's last attempt.  Cancelled shards never compete — they are
    all DFS-after a finalized winner by construction.
    """
    candidates = [o for o in outcomes
                  if o.status not in ("cancelled", "error")]
    if not candidates:
        raise RuntimeError("sharded gap search produced no outcomes")
    solutions = [o for o in candidates if o.status != "diverged"]
    if solutions:
        return min(solutions, key=lambda o: (_dfs_key(o.gap_bits),
                                             _dfs_key(o.prefix)))
    return max(candidates, key=lambda o: _dfs_key(o.prefix))


def _static_shard_outcomes(pool, state, prefixes,
                           context=None, capture_events=False):
    """Static scheduler: 2^k fixed prefix tasks, scanned in DFS order.

    Returns ``(outcomes, errors, snapshots, events)``.  Task ids equal
    submission (= serial DFS) order, so the winner scan walks a results
    dict by index exactly as the old future loop did: the cancel event
    is raised only once the scan *frontier* reaches a non-diverged
    outcome — tasks DFS-after a slow earlier shard keep running until
    that shard lands, the same conservative timing as before.  Every
    submitted task is still drained so attempt totals stay complete and
    worker exceptions surface instead of vanishing.
    """
    job = pool.begin_job(state, steal=False,
                         capture_events=capture_events, context=context)
    outcomes: List[GapShardOutcome] = []
    errors: List[BaseException] = []
    try:
        for prefix in prefixes:
            job.submit(_gap_shard_run, prefix)
        results: Dict[int, GapShardOutcome] = {}
        scan = 0
        decided = False
        remaining = len(prefixes)
        while remaining:
            kind, task_id, body = job.next_message()
            if kind == "split":
                continue  # static jobs withhold the steal queue
            remaining -= 1
            if kind == "err":
                errors.append(RuntimeError(
                    f"gap shard task {task_id} failed: {body}"))
                pool.cancel.set()
                continue
            results[task_id] = body
            outcomes.append(body)
            while not decided and scan in results:
                outcome = results[scan]
                scan += 1
                if outcome.status not in ("diverged", "cancelled"):
                    decided = True
                    pool.cancel.set()
    finally:
        snapshots, events = job.finish()
    return outcomes, errors, snapshots, events


def _steal_shard_outcomes(pool, state, prefixes,
                          context=None, capture_events=False):
    """Work-stealing scheduler: a shared queue of splittable subspaces.

    The parent is the only consumer of the results queue and the only
    producer of shard tasks, which keeps the accounting exact:
    ``pending`` counts subspaces handed to the pool minus outcomes
    received, and a ``("split", prefix)`` message always reaches the
    parent *before* any outcome for that prefix can exist (the donated
    subspace is resubmitted by the parent itself).  The winner is
    finalized — and the cancel event raised — only once no outstanding
    subspace precedes its leaf in serial DFS order, so cancellation can
    never starve the leaf the serial search would have returned.

    Returns ``(outcomes, errors, steals, snapshots, events)`` — the
    per-worker stats batch carries the idle-time and queue-wait
    histograms the old dedicated worker loops recorded.
    """
    job = pool.begin_job(state, steal=True,
                         capture_events=capture_events, context=context)
    pending = 0
    outstanding = set()
    outcomes: List[GapShardOutcome] = []
    errors: List[BaseException] = []
    steals = 0
    winner: Optional[GapShardOutcome] = None
    final = False
    try:
        for prefix in prefixes:
            job.submit(_gap_shard_run, prefix)
            pending += 1
            outstanding.add(tuple(prefix))
        while pending:
            kind, task_id, body = job.next_message()
            if kind == "split":
                stolen = task_id  # ("split", prefix, None) message
                pending += 1
                steals += 1
                outstanding.add(tuple(stolen))
                job.submit(_gap_shard_run, stolen)
                continue
            pending -= 1
            if kind == "err":
                # the donated-prefix set no longer matches the task, so
                # leave ``outstanding`` alone: ``final`` then stays
                # False and the error is raised by the caller anyway
                errors.append(RuntimeError(
                    f"gap shard task {task_id} failed: {body}"))
                pool.cancel.set()  # drain the rest fast, raise after
                continue
            outcome = body
            outstanding.discard(tuple(outcome.prefix))
            outcomes.append(outcome)
            if outcome.status not in ("diverged", "cancelled", "error"):
                if winner is None or \
                        (_dfs_key(outcome.gap_bits),
                         _dfs_key(outcome.prefix)) < \
                        (_dfs_key(winner.gap_bits),
                         _dfs_key(winner.prefix)):
                    winner = outcome
            if winner is not None and not final:
                # final iff no outstanding subspace can still hold a
                # DFS-earlier leaf; a prefix that orders equal-or-
                # before the winner leaf blocks (tuple comparison
                # treats a prefix of the leaf as earlier, which is
                # conservative and therefore sound)
                wkey = _dfs_key(winner.gap_bits)
                if all(_dfs_key(p) > wkey for p in outstanding):
                    final = True
                    pool.cancel.set()
    finally:
        snapshots, events = job.finish()
    return outcomes, errors, steals, snapshots, events


def shard_gap_search(module, trace, failure, *, shards: int,
                     max_attempts: int, solver_cache=None,
                     cache_dir: Optional[str] = None,
                     steal: bool = True,
                     incremental: bool = True,
                     preshard: Optional[List[List[bool]]] = None,
                     pool: Optional[WorkerPool] = None,
                     **engine_kwargs):
    """Gap-recovery search fanned out over ``shards`` worker processes.

    The serial DFS's leaf space is partitioned by decision prefixes;
    each worker explores a subspace with the same backtracking search,
    confined by a locked prefix.  ``steal`` (the default) enables the
    work-stealing scheduler — idle workers split busy siblings'
    subspaces instead of waiting out a static partition — while
    ``steal=False`` keeps the static 2^k fan-out.  Either way the
    winning outcome is the first non-diverged one in serial DFS order —
    identical to what the serial search returns — and the parent
    replays its decision vector once, in-process and against
    ``solver_cache``, to materialize the full
    :class:`~repro.symex.result.SymexResult`.

    Worker telemetry snapshots are merged via
    :func:`repro.telemetry.merge_snapshots` and absorbed into the
    calling registry — counters sum, histogram aggregates fold in with
    approximate percentiles — so worker metrics (including the
    coordination-overhead histograms) stay visible in the parent's own
    final snapshot.  When the parent's sink is live, shard event
    streams are shipped back and re-emitted verbatim, forming one
    causally-linked trace across the process boundary.  The parent
    additionally records steal/cancellation counters and a per-shard
    attempt histogram (``parallel.shard_subspace_attempts``).

    ``preshard`` is the pipelined loop's pre-computed prefix partition
    (warmed while waiting on production): when it matches the partition
    this trace actually needs it is counted as a ``preshard_hit`` —
    the partition is pure bookkeeping either way, so correctness never
    depends on the prediction.  ``pool`` overrides the process-wide
    shared :class:`WorkerPool` (used by the A/B benchmark to price a
    throwaway per-call pool against the persistent one).
    """
    from .symex.gaps import replay_with_gap_recovery

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if solver_cache is None:
        solver_cache = SolverCache(
            persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    prefixes = (_steal_prefixes if steal else _shard_prefixes)(trace,
                                                               shards)
    if preshard is not None and prefixes:
        telemetry.count("pipeline.preshard_hits" if preshard == prefixes
                        else "pipeline.preshard_misses")
    if shards == 1 or not prefixes or in_pool_worker():
        # no gaps to split on, nothing to parallelize, or already inside
        # a (daemonic) pool worker that cannot spawn children: serial
        return replay_with_gap_recovery(module, trace, failure,
                                        max_attempts=max_attempts,
                                        solver_cache=solver_cache,
                                        incremental=incremental,
                                        **engine_kwargs)
    tel = telemetry.get()
    steals = 0
    capture_events = tel.enabled
    # per-worker config rides inside the job's generation payload; the
    # shard body pops what ShepherdedSymex must not see
    state = dict(module=module, trace=trace, failure=failure,
                 max_attempts=max_attempts,
                 engine_kwargs=dict(engine_kwargs,
                                    incremental=incremental),
                 cache_dir=cache_dir)
    with tel.span("symex.gap_shard_search", shards=shards,
                  tasks=len(prefixes), steal=steal):
        # captured inside the span: worker root spans parent on it
        context = tel.trace_context()
        target = pool if pool is not None else get_pool(shards)
        if steal:
            outcomes, errors, steals, snapshots, events = \
                _steal_shard_outcomes(target, state, prefixes,
                                      context, capture_events)
        else:
            outcomes, errors, snapshots, events = _static_shard_outcomes(
                target, state, prefixes, context, capture_events)
    tel.absorb(telemetry.merge_snapshots(snapshots))
    tel.forward(events)
    tel.count("parallel.gap_shards", len(outcomes))
    if steals:
        tel.count("parallel.steals", steals)
    cancelled = sum(1 for o in outcomes if o.status == "cancelled")
    if cancelled:
        tel.count("parallel.cancelled_shards", cancelled)
    subspace_hist = tel.histogram("parallel.shard_subspace_attempts")
    for outcome in outcomes:
        subspace_hist.record(outcome.gap_attempts)
    if errors:
        raise errors[0]
    failed = [o for o in outcomes if o.status == "error"]
    if failed:
        raise RuntimeError(
            f"gap shard worker failed on prefix {failed[0].prefix}: "
            f"{failed[0].error}")
    total_attempts = sum(o.gap_attempts for o in outcomes)
    chosen = _choose_outcome(outcomes)
    # replay the chosen decision vector in-process: full result (terms,
    # constraints, model) without shipping terms across processes
    with T.term_scope(reuse_active=True):
        engine = ShepherdedSymex(module, trace, failure,
                                 gap_decisions=list(chosen.gap_bits),
                                 solver_cache=solver_cache,
                                 **engine_kwargs)
        result = engine.run()
    result.gap_attempts = total_attempts
    if result.status != "diverged":
        telemetry.count("symex.gap_recoveries")
        tel.histogram("symex.gap_attempts").record(total_attempts)
        logger.debug("sharded gap recovery converged after %d replays "
                     "across %d shard tasks (%d stolen)", total_attempts,
                     len(outcomes), steals)
    else:
        telemetry.count("symex.gap_replays")
        result.divergence_reason += \
            f" (after {total_attempts} gap assignments)"
    return result


def measure_incremental_ab(workload_name: str = "sqlite-7be932d", *,
                           mapping_loss: float = 0.085,
                           shards: int = 4,
                           work_scale: int = 20,
                           steal: bool = False) -> Dict:
    """A/B the assumption-stack reuse on the sharded gap-recovery bench.

    Runs the same degraded trace through :func:`shard_gap_search` twice
    — ``incremental=False`` (every sibling attempt re-solved from
    scratch) then ``incremental=True`` (per-shard
    :class:`~repro.solver.incremental.AssumptionStack`) — each under a
    fresh telemetry registry, and totals the solver work actually
    charged (the ``solver.work_per_query`` histogram, workers' snapshots
    folded in).  Returns a JSON-ready dict with both legs and the
    relative ``solver_work_reduction``; correctness is part of the
    record (``verdicts_equal``/``models_equal`` — the two legs must
    agree bit for bit, incrementality is an optimization only).

    ``steal`` defaults *off* here (unlike the production scheduler):
    work stealing re-splits shard subspaces at timing-dependent points,
    which perturbs each shard's assumption-stack reuse run to run.  The
    static prefix fan-out makes both legs fully deterministic, so the
    measured reduction is reproducible.
    """
    from .symex.gaps import replay_with_gap_recovery

    workload = get_workload(workload_name)
    module = workload.fresh_module()
    occurrence = ProductionSite(workload.failing_env,
                                mapping_loss=mapping_loss,
                                per_cpu_buffers=True).run_once(module)
    kwargs = dict(work_limit=workload.work_limit * work_scale,
                  shards=shards, steal=steal)
    legs: Dict[str, Dict] = {}
    models: Dict[str, Optional[Dict]] = {}
    statuses: Dict[str, str] = {}
    for label, incremental in (("scratch", False), ("incremental", True)):
        registry = telemetry.Telemetry()
        started = time.perf_counter()
        with telemetry.scoped(registry):
            result = replay_with_gap_recovery(
                module, occurrence.trace, occurrence.failure,
                incremental=incremental, **kwargs)
        wall = time.perf_counter() - started
        snapshot = registry.snapshot()
        work = snapshot.get("histograms", {}).get(
            "solver.work_per_query", {})
        counters = snapshot.get("counters", {})
        legs[label] = {
            "status": result.status,
            "gap_attempts": result.gap_attempts,
            "wall_seconds": round(wall, 4),
            "solver_work": int(work.get("sum", 0)),
            "solver_queries": int(work.get("count", 0)),
            "reused_terms": int(counters.get(
                "solver.incremental.reused_terms", 0)),
        }
        models[label] = (result.model.assignment
                         if result.model is not None else None)
        statuses[label] = result.status
    scratch_work = legs["scratch"]["solver_work"]
    incremental_work = legs["incremental"]["solver_work"]
    reduction = (1.0 - incremental_work / scratch_work
                 if scratch_work else 0.0)
    return {
        "workload": workload_name,
        "mapping_loss": mapping_loss,
        "shards": shards,
        "gap_count": gap_count(occurrence.trace),
        "scratch": legs["scratch"],
        "incremental": legs["incremental"],
        "solver_work_reduction": round(reduction, 4),
        "verdicts_equal": statuses["scratch"] == statuses["incremental"],
        "models_equal": models["scratch"] == models["incremental"],
    }
