"""Modules, functions, basic blocks, and program points."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import IRError
from .instructions import Instr


@dataclass(frozen=True, order=True)
class ProgramPoint:
    """A static location: (function, block label, instruction index).

    Program points identify where a value is defined; ER's recording sets
    are sets of program points, and the instrumentation pass inserts
    ``ptwrite`` immediately after a point.
    """

    func: str
    block: str
    index: int

    def __str__(self) -> str:
        return f"{self.func}:{self.block}:{self.index}"


@dataclass
class BasicBlock:
    """A labelled straight-line sequence ending in a terminator."""

    label: str
    instrs: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None


@dataclass
class Function:
    """A function: parameter names plus an ordered dict of blocks."""

    name: str
    params: List[str] = field(default_factory=list)
    blocks: Dict[str, BasicBlock] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block {label!r} in function {self.name}") from None

    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise IRError(f"duplicate block {label!r} in function {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        return block

    def points(self) -> Iterator[Tuple[ProgramPoint, Instr]]:
        """Iterate over every (point, instruction) pair in block order."""
        for label, block in self.blocks.items():
            for index, instr in enumerate(block.instrs):
                yield ProgramPoint(self.name, label, index), instr

    def instr_at(self, point: ProgramPoint) -> Instr:
        return self.block(point.block).instrs[point.index]


@dataclass
class GlobalObject:
    """A module-level memory object.

    ``init`` seeds the first bytes; the remainder is zero-filled.
    """

    name: str
    size: int
    init: bytes = b""

    def initial_bytes(self) -> bytearray:
        data = bytearray(self.size)
        data[: len(self.init)] = self.init[: self.size]
        return data


@dataclass
class Module:
    """A whole program: globals plus functions; entry point is ``main``."""

    name: str = "module"
    globals: Dict[str, GlobalObject] = field(default_factory=dict)
    functions: Dict[str, Function] = field(default_factory=dict)

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name!r}") from None

    def add_global(self, name: str, size: int, init: bytes = b"") -> GlobalObject:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        obj = GlobalObject(name, size, init)
        self.globals[name] = obj
        return obj

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def instr_at(self, point: ProgramPoint) -> Instr:
        return self.function(point.func).instr_at(point)

    def points(self) -> Iterator[Tuple[ProgramPoint, Instr]]:
        for func in self.functions.values():
            yield from func.points()

    def instruction_count(self) -> int:
        """Static instruction count (the 'LoC' of a workload)."""
        return sum(1 for _ in self.points())

    def clone(self) -> "Module":
        """Deep copy, used by the instrumentation pass ('redeploying')."""
        return copy.deepcopy(self)
