"""Mini-PHP runtime pieces: the two PHP bugs of Table 1.

* **php-2012-2386** — ``unserialize`` integer overflow: the element
  count from the serialized header is multiplied by the element size in
  32 bits; a huge count overflows to a tiny allocation, and writing the
  array header runs off the end of the heap object.  The class-name
  interning that precedes it (property-table hash inserts) supplies the
  symbolic write chains.

* **php-74194** — heap buffer overflow while serializing an
  ArrayObject: bytes are translated through a runtime-configured escape
  map and written at a data-dependent output cursor (high-bit bytes take
  two slots); a payload dense in high-bit bytes outruns the buffer.
  This is the paper's Fig. 5 workload: the escape-map chain and the
  output-cursor chain stall symbolic execution in two distinct
  iterations.

Input arrives on the ``php`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..solver.budget import WORK_PER_SECOND
from .base import Workload

PROP_SLOTS = 32


def build_php_2012_2386() -> Module:
    b = ModuleBuilder("php-2012-2386")
    b.global_("prop_table", PROP_SLOTS * 8)

    # intern(name_len): hash `name_len` class-name bytes into prop_table
    f = b.function("intern_class", ["len"])
    f.block("entry")
    f.const(0, dest="%h")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "ins", "body")
    f.block("body")
    ch = f.input("php", 1, dest="%ch")
    f.add("%h", "%ch", width=32, dest="%h")
    sh = f.shl("%h", 1, width=32)
    f.add("%h", sh, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("ins")
    slot = f.urem("%h", PROP_SLOTS, dest="%slot")
    tbl = f.global_addr("prop_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")

    f = b.function("main", [])
    f.block("entry")
    f.jmp("request")
    f.block("request")
    # 'O:<len>:<name>...' — class name interning (chain fuel)
    tag = f.input("php", 1, dest="%tag")
    is_obj = f.cmp("eq", "%tag", ord("O"), width=8)
    f.br(is_obj, "name", "reject")
    f.block("name")
    nlen = f.input("php", 1, dest="%nlen")
    ok_len = f.cmp("ule", "%nlen", 16, width=8)
    f.br(ok_len, "intern", "reject")
    f.block("intern")
    f.call("intern_class", ["%nlen"])
    # element count: 32-bit size arithmetic overflows for huge counts
    count = f.input("php", 4, dest="%count")
    body = f.mul("%count", 12, width=32)
    total = f.add(body, 12, width=32, dest="%total")  # header + elements
    nonzero = f.cmp("ne", "%total", 0, width=32)
    f.br(nonzero, "szchk", "reject")
    f.block("szchk")
    fits = f.cmp("ule", "%total", 4096, width=32)
    f.br(fits, "alloc", "reject")
    f.block("alloc")
    buf = f.malloc("%total", dest="%buf")
    # array header: refcount (offset 0) + element count (offset 4, 8B)
    f.store("%buf", 1, 4)
    hdr = f.gep("%buf", 4, 1)
    f.store(hdr, "%count", 8)       # 12-byte header: overflows tiny allocs
    # write up to 4 elements (benign path)
    f.const(0, dest="%i2")
    f.jmp("eloop")
    f.block("eloop")
    done4 = f.cmp("uge", "%i2", 4)
    f.br(done4, "out", "echk")
    f.block("echk")
    more = f.cmp("ult", "%i2", "%count", width=32)
    f.br(more, "ebody", "out")
    f.block("ebody")
    ev = f.input("php", 4, dest="%ev")
    off = f.mul("%i2", 12)
    off12 = f.add(off, 12)
    ep = f.gep("%buf", off12, 1)
    f.store(ep, "%ev", 4)
    # zval refcount/gc bookkeeping per element
    f.const(0, dest="%g")
    f.jmp("gc")
    f.block("gc")
    gdone = f.cmp("uge", "%g", 20)
    f.br(gdone, "gout", "gbody")
    f.block("gbody")
    sh = f.lshr("%ev", 1, width=32)
    f.add(sh, "%g", width=32, dest="%ev")
    f.add("%g", 1, dest="%g")
    f.jmp("gc")
    f.block("gout")
    f.add("%i2", 1, dest="%i2")
    f.jmp("eloop")
    f.block("reject")
    f.ret(1)
    f.block("out")
    f.free("%buf")
    f.jmp("request")
    return b.build()


def _php2386_payload(name: str, count: int, elems=()) -> bytes:
    data = bytearray()
    data += b"O"
    data.append(len(name))
    data += name.encode()
    data += (count & 0xFFFFFFFF).to_bytes(4, "little")
    for e in elems:
        data += (e & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(data)


def _failing_2386(occurrence: int) -> Environment:
    names = ["Order", "Cache", "User", "Blob"]
    # 12 + count*12 == 4 (mod 2^32): a 4-byte allocation, 12-byte header
    count = 0x2AAAAAAA
    return Environment(
        {"php": _php2386_payload(names[occurrence % len(names)], count)})


def _benign_2386(seed: int) -> Environment:
    rng = random.Random(seed)
    chunks = []
    for _ in range(rng.randint(60, 80)):
        count = rng.randint(1, 300)
        elems = [rng.randint(0, 1 << 30) for _ in range(min(count, 4))]
        chunks.append(_php2386_payload(
            rng.choice(["Foo", "BarBaz", "Session", "Request"]),
            count, elems))
    return Environment({"php": b"".join(chunks)})


# ----------------------------------------------------------------------

ESC_MAP_SIZE = 256


def build_php_74194() -> Module:
    b = ModuleBuilder("php-74194")
    b.global_("esc_map", ESC_MAP_SIZE, bytes(range(256)))

    f = b.function("main", [])
    f.block("entry")
    emap = f.global_addr("esc_map", dest="%map")
    f.jmp("request")
    f.block("request")
    # serializer configuration: 3 custom escape-map entries (chain #1)
    f.const(0, dest="%k")
    f.jmp("cfg")
    f.block("cfg")
    cfg_done = f.cmp("uge", "%k", 3)
    f.br(cfg_done, "hdr", "cfg_body")
    f.block("cfg_body")
    key = f.input("php", 1, dest="%key")
    val = f.input("php", 1, dest="%val")
    kp = f.gep("%map", "%key", 1)
    f.store(kp, "%val", 1)
    f.add("%k", 1, dest="%k")
    f.jmp("cfg")

    f.block("hdr")
    n = f.input("php", 1, dest="%n")
    big_enough = f.cmp("uge", "%n", 16, width=8)
    f.br(big_enough, "hdr2", "reject")
    f.block("hdr2")
    small_enough = f.cmp("ule", "%n", 40, width=8)
    f.br(small_enough, "alloc", "reject")
    f.block("alloc")
    size = f.add("%n", 16, dest="%size")
    buf = f.malloc("%size", dest="%buf")
    f.const(0, dest="%i")
    f.const(0, dest="%j")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%n", width=8)
    f.br(done, "fin", "body")
    f.block("body")
    ch = f.input("php", 1, dest="%ch")
    tp = f.gep("%map", "%ch", 1)
    tv = f.load(tp, 1, dest="%tv")      # translate (reads over chain #1)
    op = f.gep("%buf", "%j", 1)
    f.store(op, "%tv", 1)               # write at data-dependent cursor
    hi = f.lshr("%ch", 7, width=8, dest="%hi")
    step = f.add("%hi", 1, dest="%step")
    f.add("%j", "%step", dest="%j")     # BUG: high-bit bytes take 2 slots
    # string-append bookkeeping (smart_str growth accounting)
    f.const(0, dest="%a")
    f.jmp("acct")
    f.block("acct")
    adone = f.cmp("uge", "%a", 10)
    f.br(adone, "anext", "abody")
    f.block("abody")
    sh2 = f.shl("%tv", 1, width=32)
    f.xor(sh2, "%a", width=32, dest="%tv")
    f.add("%a", 1, dest="%a")
    f.jmp("acct")
    f.block("anext")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("fin")
    f.output("stdout", "%j", 4)
    f.free("%buf")
    f.jmp("request")
    f.block("reject")
    f.ret(1)
    return b.build()


def _php74194_payload(cfg, payload: bytes) -> bytes:
    data = bytearray()
    for key, val in cfg:
        data.append(key & 0xFF)
        data.append(val & 0xFF)
    data.append(len(payload) & 0xFF)
    data += payload
    return bytes(data)


def _failing_74194(occurrence: int) -> Environment:
    rng = random.Random(1000 + occurrence)
    # 24 payload bytes, mostly high-bit: cursor outruns the 40-byte buffer
    payload = bytes(rng.choice(range(0x80, 0x100)) for _ in range(24))
    cfg = [(rng.randint(0, 255), rng.randint(1, 255)) for _ in range(3)]
    return Environment({"php": _php74194_payload(cfg, payload)})


def _benign_74194(seed: int) -> Environment:
    rng = random.Random(seed)
    chunks = []
    for _ in range(rng.randint(40, 60)):
        n = rng.randint(16, 40)
        # low-bit payloads never overflow: j stays == i
        payload = bytes(rng.randint(0, 0x7F) for _ in range(n))
        cfg = [(rng.randint(0, 255), rng.randint(1, 255)) for _ in range(3)]
        chunks.append(_php74194_payload(cfg, payload))
    return Environment({"php": b"".join(chunks)})


def php_workloads():
    return [
        Workload(
            name="php-2012-2386", app="PHP 5.3.6", bug_id="CVE-2012-2386",
            bug_type="Integer overflow", multithreaded=False,
            expected_kind=FailureKind.OUT_OF_BOUNDS,
            build=build_php_2012_2386,
            failing_env=_failing_2386, benign_env=_benign_2386,
            bench_name="Benchmark Script",
            work_limit=150_000,
            paper_occurrences=6, paper_instrs=5_460_436),
        Workload(
            name="php-74194", app="PHP 7.1.6", bug_id="Bug #74194",
            bug_type="Heap buffer overflow", multithreaded=False,
            expected_kind=FailureKind.OUT_OF_BOUNDS,
            build=build_php_74194,
            failing_env=_failing_74194, benign_env=_benign_74194,
            bench_name="Benchmark Script",
            work_limit=60_000,
            paper_occurrences=10, paper_instrs=5_791_278),
    ]
