"""Execution Reconstruction (ER) — PLDI 2021 reproduction.

ER reproduces production failures by combining always-on hardware
control-flow tracing with iteratively-selected key data values and
shepherded symbolic execution.  See DESIGN.md for the system inventory and
README.md for a quickstart.

Top-level convenience re-exports cover the end-to-end workflow::

    from repro import ModuleBuilder, Environment, ExecutionReconstructor

    module = ...                 # build a program
    production = ...             # a ProductionSite that reproduces a failure
    er = ExecutionReconstructor(module)
    report = er.reconstruct(production)
    print(report.test_case)
"""

__version__ = "1.1.0"

from . import telemetry
from .errors import (
    GuestFailure,
    IRError,
    ReconstructionError,
    ReproError,
    SolverTimeout,
    TraceDivergence,
    UnsatError,
)
from .interp import Environment, FailureInfo, FailureKind, Interpreter, RunResult
from .ir import Module, ModuleBuilder, format_module, parse_module

__all__ = [
    "__version__",
    "telemetry",
    "GuestFailure",
    "IRError",
    "ReconstructionError",
    "ReproError",
    "SolverTimeout",
    "TraceDivergence",
    "UnsatError",
    "Environment",
    "FailureInfo",
    "FailureKind",
    "Interpreter",
    "RunResult",
    "ModuleBuilder",
    "Module",
    "parse_module",
    "format_module",
]
