#!/usr/bin/env python3
"""Directed fuzzing and forensics on top of ER's output (§2.4).

Two of the paper's motivating use cases, end to end:

1. **Security forensics** — the reconstructed execution's path
   constraints attribute the failure to specific input bytes (which
   bytes an attacker must control; which are irrelevant noise).
2. **Fuzz seeding** — the generated test case drops a fuzzer straight
   into the buggy neighbourhood; from-scratch fuzzing can't even get
   past the format's magic bytes in the same budget.

Run:  python examples/fuzzing_from_failures.py
"""

from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.interpreter import Interpreter
from repro.symex.engine import ShepherdedSymex
from repro.trace import PTEncoder, RingBuffer, decode
from repro.usecases import CoverageFuzzer, attribute_failure
from repro.workloads import get_workload


def main():
    workload = get_workload("libpng-2004-0597")
    module = workload.fresh_module()

    # --- reconstruct the production failure
    er = ExecutionReconstructor(module, work_limit=workload.work_limit)
    report = er.reconstruct(ProductionSite(workload.failing_env))
    print(f"reconstructed in {report.occurrences} occurrence(s); "
          f"generated image: {len(report.test_case.streams['png'])} bytes\n")

    # --- forensics: which bytes does the exploit actually control?
    encoder = PTEncoder(RingBuffer())
    run = Interpreter(module, workload.failing_env(1),
                      tracer=encoder).run()
    symex = ShepherdedSymex(module, decode(encoder.buffer), run.failure,
                            work_limit=workload.work_limit * 20).run()
    print(attribute_failure(symex).render())
    print()

    # --- fuzzing: ER seed vs from-scratch
    budget = 200
    seeded = CoverageFuzzer(workload.fresh_module(), "png", seed=7)
    seeded.add_seed(report.test_case.streams["png"])
    seeded_report = seeded.run(budget=budget)

    blind = CoverageFuzzer(workload.fresh_module(), "png", seed=7)
    blind_report = blind.run(budget=budget)

    print(f"fuzzing budget: {budget} executions")
    print(f"  seeded with ER test case: {seeded_report.coverage_points} "
          f"coverage points, {seeded_report.crash_count} distinct "
          f"crash(es), first at execution {seeded_report.first_crash_at}")
    print(f"  from scratch:            {blind_report.coverage_points} "
          f"coverage points, {blind_report.crash_count} crash(es), "
          f"first at {blind_report.first_crash_at}")
    assert seeded_report.crash_count >= 1
    print("\nproduction failures become fuzzing campaigns — the §2.4 "
          "pipeline")


if __name__ == "__main__":
    main()
