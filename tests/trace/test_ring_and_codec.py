"""Ring buffer semantics and encoder/decoder round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError, TraceTruncatedError
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.packets import PtwEvent, TntEvent
from repro.trace.ringbuffer import RingBuffer


class TestRingBuffer:
    def test_stores_bytes(self):
        rb = RingBuffer(16)
        rb.write(b"abc")
        assert rb.contents() == b"abc" and not rb.wrapped

    def test_overwrites_oldest(self):
        rb = RingBuffer(4)
        rb.write(b"abcdef")
        assert rb.contents() == b"cdef" and rb.wrapped

    def test_write_larger_than_capacity(self):
        rb = RingBuffer(4)
        rb.write(b"0123456789")
        assert rb.contents() == b"6789"

    def test_total_written_tracks_everything(self):
        rb = RingBuffer(4)
        rb.write(b"abcdef")
        assert rb.total_written == 6

    def test_wrap_counter_counts_overwriting_writes(self):
        rb = RingBuffer(4)
        rb.write(b"abc")
        assert rb.wraps == 0 and rb.bytes_dropped == 0
        rb.write(b"de")              # drops 'a'
        assert rb.wraps == 1 and rb.bytes_dropped == 1
        rb.write(b"fg")              # drops 'bc'... buffer now 'defg'->+2
        assert rb.wraps == 2 and rb.bytes_dropped == 3

    def test_wrap_counter_oversized_single_write(self):
        rb = RingBuffer(4)
        rb.write(b"0123456789")      # 6 bytes can never fit
        assert rb.wraps == 1 and rb.bytes_dropped == 6
        assert rb.wrapped

    def test_exact_capacity_write_is_not_a_wrap(self):
        rb = RingBuffer(4)
        rb.write(b"abcd")
        assert rb.wraps == 0 and rb.bytes_dropped == 0
        assert not rb.wrapped

    def test_dropped_plus_surviving_equals_written(self):
        rb = RingBuffer(8)
        for chunk in (b"aaaa", b"bbbb", b"cc", b"ddddd"):
            rb.write(chunk)
        assert rb.bytes_dropped + len(rb) == rb.total_written

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


def _encode(chunks):
    """chunks: list of (tid, ts, events, n_instrs)."""
    enc = PTEncoder(RingBuffer())
    for tid, ts, events, n in chunks:
        enc.begin_chunk(tid, ts)
        for event in events:
            if isinstance(event, bool):
                enc.on_branch(event)
            else:
                enc.on_ptwrite(*event)
        enc.end_chunk(n)
    return enc


class TestEncoderDecoder:
    def test_empty_chunk(self):
        enc = _encode([(0, 5, [], 3)])
        trace = decode(enc.buffer)
        assert len(trace.chunks) == 1
        chunk = trace.chunks[0]
        assert (chunk.tid, chunk.timestamp, chunk.n_instrs) == (0, 5, 3)

    def test_branch_bits_in_order(self):
        bits = [True, False, False, True, True, False, True, False]
        enc = _encode([(0, 0, bits, 20)])
        trace = decode(enc.buffer)
        assert trace.chunks[0].branch_bits() == bits

    def test_ptw_interleaving_preserved(self):
        events = [True, (3, 0xDEAD), False, (4, 0xBEEF), True]
        enc = _encode([(1, 2, events, 9)])
        decoded = decode(enc.buffer).chunks[0].events
        kinds = [(e.taken if isinstance(e, TntEvent) else (e.tag, e.value))
                 for e in decoded]
        assert kinds == [True, (3, 0xDEAD), False, (4, 0xBEEF), True]

    def test_multi_chunk_order_and_tids(self):
        enc = _encode([(0, 0, [True], 4), (1, 1, [False], 7),
                       (0, 2, [], 2)])
        trace = decode(enc.buffer)
        assert [c.tid for c in trace.chunks] == [0, 1, 0]
        assert trace.instr_count == 13
        assert trace.tids() == [0, 1]

    def test_event_outside_chunk_rejected(self):
        enc = PTEncoder(RingBuffer())
        with pytest.raises(TraceError):
            enc.on_branch(True)

    def test_nested_chunk_rejected(self):
        enc = PTEncoder(RingBuffer())
        enc.begin_chunk(0, 0)
        with pytest.raises(TraceError):
            enc.begin_chunk(0, 1)

    def test_wrapped_buffer_raises_by_default(self):
        enc = PTEncoder(RingBuffer(32))
        for i in range(50):
            enc.begin_chunk(0, i)
            for _ in range(6):
                enc.on_branch(True)
            enc.end_chunk(12)
        with pytest.raises(TraceTruncatedError):
            decode(enc.buffer)

    def test_wrapped_buffer_partial_decode(self):
        enc = PTEncoder(RingBuffer(64))
        for i in range(40):
            enc.begin_chunk(0, i)
            enc.on_branch(i % 2 == 0)
            enc.end_chunk(1)
        trace = decode(enc.buffer, allow_truncated=True)
        assert trace.truncated
        assert 0 < len(trace.chunks) < 40

    def test_ptwrites_accessor(self):
        enc = _encode([(0, 0, [(1, 10), (2, 20)], 2)])
        ptws = decode(enc.buffer).ptwrites()
        assert [(p.tag, p.value) for p in ptws] == [(1, 10), (2, 20)]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(0, 3),                      # tid
            st.lists(st.one_of(
                st.booleans(),
                st.tuples(st.integers(0, 100),
                          st.integers(0, (1 << 64) - 1))),
                max_size=20),
            st.integers(0, 1000)),                   # n_instrs
        max_size=8))
    def test_roundtrip_property(self, chunks):
        enc = _encode([(tid, i, events, n)
                       for i, (tid, events, n) in enumerate(chunks)])
        trace = decode(enc.buffer)
        assert len(trace.chunks) == len(chunks)
        for chunk, (tid, events, n) in zip(trace.chunks, chunks):
            assert chunk.tid == tid and chunk.n_instrs == n
            expected = [e if isinstance(e, bool) else tuple(e)
                        for e in events]
            actual = [e.taken if isinstance(e, TntEvent)
                      else (e.tag, e.value) for e in chunk.events]
            assert actual == expected
