"""The Table-1 workload suite: failure/benign behaviour and metadata."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.verifier import verify_module
from repro.workloads import all_workloads, get_workload, workload_names

WORKLOADS = all_workloads()
IDS = [w.name for w in WORKLOADS]


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(WORKLOADS) == 13

    def test_names_match_table1_order(self):
        assert workload_names()[0] == "php-2012-2386"
        assert workload_names()[-1] == "pbzip2-uaf"

    def test_get_workload(self):
        assert get_workload("bash-108885").app.startswith("Bash")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_three_multithreaded(self):
        assert sum(w.multithreaded for w in WORKLOADS) == 3

    def test_paper_metadata_present(self):
        for w in WORKLOADS:
            assert w.paper_occurrences >= 1
            assert w.paper_instrs > 0
            assert w.bug_type and w.app and w.bench_name


@pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
class TestPerWorkload:
    def test_module_verifies(self, workload):
        verify_module(workload.module())

    def test_failing_env_fails_with_expected_kind(self, workload):
        result = Interpreter(workload.fresh_module(),
                             workload.failing_env(1)).run()
        assert result.failure is not None
        assert result.failure.kind == workload.expected_kind

    def test_failure_reoccurs_across_occurrences(self, workload):
        signatures = []
        for occ in range(1, 5):
            result = Interpreter(workload.fresh_module(),
                                 workload.failing_env(occ)).run()
            assert result.failure is not None
            signatures.append(result.failure)
        assert all(signatures[0].matches(s) for s in signatures[1:])

    def test_benign_envs_never_fail(self, workload):
        for seed in range(6):
            result = Interpreter(workload.fresh_module(),
                                 workload.benign_env(seed)).run()
            assert result.failure is None, (seed, result.failure)

    def test_benign_runs_do_real_work(self, workload):
        result = Interpreter(workload.fresh_module(),
                             workload.benign_env(0)).run()
        assert result.instr_count > 1000

    def test_deterministic_failing_run(self, workload):
        a = Interpreter(workload.fresh_module(), workload.failing_env(1)).run()
        b = Interpreter(workload.fresh_module(), workload.failing_env(1)).run()
        assert a.instr_count == b.instr_count
        assert a.failure.point == b.failure.point

    def test_module_cached_and_cloned(self, workload):
        assert workload.module() is workload.module()
        assert workload.fresh_module() is not workload.module()
