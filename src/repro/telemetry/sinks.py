"""Event sinks: where the structured telemetry stream goes.

The registry forwards every structured event (spans closing, point
events, final metric snapshots) to exactly one sink.  The default
:class:`NullSink` advertises ``enabled = False`` so instrumented code —
and the registry itself — can skip event *construction* entirely,
keeping the disabled-telemetry overhead near zero.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Dict, List, Union

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "NULL_SINK"]


class Sink:
    """Base sink interface; subclasses override :meth:`emit`."""

    #: registries skip building event dicts when the sink is disabled
    enabled = True

    def emit(self, event: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emit() must not be called after."""


class NullSink(Sink):
    """Drops everything; the zero-overhead default."""

    enabled = False

    def emit(self, event: Dict) -> None:
        pass


#: shared default instance — stateless, safe to reuse everywhere
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Buffers events in a list; the test/debugging sink."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, event: Dict) -> None:
        self.events.append(event)

    def named(self, name: str) -> List[Dict]:
        return [e for e in self.events if e.get("name") == name]

    def spans(self, name: str = "") -> List[Dict]:
        return [e for e in self.events if e.get("type") == "span"
                and (not name or e.get("name") == name)]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (or file-like object).

    The format is the interchange surface of the telemetry subsystem:
    ``repro reproduce --telemetry out.jsonl`` writes it and ``repro
    stats out.jsonl`` renders it, but any ``jq``-style tool works too.
    """

    def __init__(self, target: Union[str, pathlib.Path, io.TextIOBase]):
        if isinstance(target, (str, pathlib.Path)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._closed = False

    def emit(self, event: Dict) -> None:
        if self._closed:
            raise ValueError("emit() on a closed JsonlSink")
        self._fh.write(json.dumps(event, default=str) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Dict]:
    """Load a JSONL event log back into a list of event dicts."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
