"""Symbolic memory: concrete bytes + overlays + symbolic write chains.

Each object starts fully concrete.  A store of a *symbolic value* at a
concrete offset goes into a per-byte overlay.  The first store at a
*symbolic offset* freezes the object into an ``array`` term and starts a
write chain; from then on every store (symbolic or not) appends a
``store`` node, so chains grow exactly the way the paper's §3.3.1
describes — and walking them is what costs solver work.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from ..interp.failures import FailureKind, MemoryFault
from ..interp.memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE
from ..ir.module import Module
from ..solver import terms as T
from ..solver.terms import Term

_ALIGN = 16
#: guard gap between objects: small overruns hit unmapped bytes
_GUARD = 48


def _align(value: int) -> int:
    return ((value + _GUARD + _ALIGN - 1) & ~(_ALIGN - 1))


class SymObject:
    """One allocation with hybrid concrete/symbolic content."""

    def __init__(self, base: int, size: int, kind: str, name: str,
                 init: bytes = b""):
        self.base = base
        self.size = size
        self.kind = kind
        self.name = name
        self.live = True
        self.data = bytearray(size)
        self.data[: len(init)] = init[: size]
        #: symbolic byte overlay at concrete offsets (pre-chain)
        self.overlay: Dict[int, Term] = {}
        #: write chain once a symbolic-offset store happened
        self.chain: Optional[Term] = None
        self._snapshot: Optional[Term] = None
        self._version = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    # -- byte-level access ------------------------------------------------

    def read_byte(self, offset: int) -> Term:
        if self.chain is not None:
            return T.read(self.chain, T.const(offset))
        term = self.overlay.get(offset)
        if term is not None:
            return term
        return T.const(self.data[offset], 8)

    def write_byte(self, offset: int, value: Term) -> None:
        if self.chain is not None:
            self.chain = T.store(self.chain, T.const(offset), value)
            return
        self._version += 1
        if value.is_const:
            self.data[offset] = value.value & 0xFF
            self.overlay.pop(offset, None)
        else:
            self.overlay[offset] = value

    def read_sym(self, index: Term) -> Term:
        """Read one byte at a symbolic offset."""
        return T.read(self.array_term(), index)

    def write_sym(self, index: Term, value: Term) -> None:
        """Store one byte at a symbolic offset: starts/extends the chain."""
        self.chain = T.store(self.array_term(), index, value)

    def array_term(self) -> Term:
        """The term describing this object's current content."""
        if self.chain is not None:
            return self.chain
        if self._snapshot is None or self._snapshot_version != self._version:
            base = T.array(f"{self.name}@{self._version}", bytes(self.data))
            for offset in sorted(self.overlay):
                base = T.store(base, T.const(offset), self.overlay[offset])
            self._snapshot = base
            self._snapshot_version = self._version
        return self._snapshot

    _snapshot_version = -1

    def chain_length(self) -> int:
        return 0 if self.chain is None else T.chain_length(self.chain)


class SymMemory:
    """Address-space bookkeeping identical to the concrete interpreter.

    Allocation addresses are deterministic and mirror
    :class:`repro.interp.memory.Memory` exactly, so symbolic replay sees
    the same pointer values production did.
    """

    def __init__(self, module: Optional[Module] = None):
        self._objects: Dict[int, SymObject] = {}
        self._bases: List[int] = []
        self._next_stack = STACK_BASE
        self._next_heap = HEAP_BASE
        self._next_global = GLOBAL_BASE
        self.global_addrs: Dict[str, int] = {}
        if module is not None:
            for obj in module.globals.values():
                base = self._next_global
                self._insert(SymObject(base, obj.size, "global", obj.name,
                                       bytes(obj.init)))
                self.global_addrs[obj.name] = base
                self._next_global = _align(base + max(obj.size, 1))

    def _insert(self, obj: SymObject) -> None:
        self._objects[obj.base] = obj
        bisect.insort(self._bases, obj.base)

    def alloc_stack(self, name: str, size: int) -> SymObject:
        obj = SymObject(self._next_stack, size, "stack", name)
        self._insert(obj)
        self._next_stack = _align(self._next_stack + max(size, 1))
        return obj

    def alloc_heap(self, size: int) -> SymObject:
        base = self._next_heap
        obj = SymObject(base, size, "heap", f"heap@{base:#x}")
        self._insert(obj)
        self._next_heap = _align(base + max(size, 1))
        return obj

    def free_heap(self, addr: int) -> SymObject:
        obj = self.find_object(addr)
        if obj is None or obj.base != addr or obj.kind != "heap":
            raise MemoryFault(FailureKind.OUT_OF_BOUNDS, addr,
                              "free of non-heap pointer")
        if not obj.live:
            raise MemoryFault(FailureKind.DOUBLE_FREE, addr)
        obj.live = False
        return obj

    def find_object(self, addr: int) -> Optional[SymObject]:
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        obj = self._objects[self._bases[idx]]
        return obj if obj.contains(addr) else None

    def objects_with_chains(self) -> List[SymObject]:
        return [self._objects[b] for b in self._bases
                if self._objects[b].chain is not None]

    def objects(self) -> List[SymObject]:
        return [self._objects[b] for b in self._bases]
