"""Mini-SQL engine: substrate for the three SQLite bugs of Table 1.

The engine is a structural port of the code paths the real bugs live in:

* a case-insensitive tokenizer driven by a 256-byte folding table (which
  is why ER-recovered queries can differ in keyword case, §5.2),
* a keyword table matched byte-by-byte against folded input,
* a dynamic *symbol table* where identifiers are registered via an
  additive hash — the symbolic-index stores that build the write chains
  stalling the solver,
* a tiny execution loop ('VM') that walks the symbol table, and
* a CLI layer with dot-commands (.stats / .eqp) and a WHERE clause
  planner, hosting the three bug-specific code paths:

========================== ==============================================
sqlite-7be932d              '.stats' + '.eqp' interaction leaves the
                            explain-statement pointer NULL; the stats
                            printer dereferences it (NULL deref)
sqlite-787fa71              co-routine subquery bookkeeping: nested
                            subselects desynchronize two counters; an
                            internal assert fires (inconsistent
                            data structure)
sqlite-4e8e485              OR-term in WHERE: only the first OR branch
                            gets an index cursor; executing the second
                            dereferences a NULL cursor pointer
========================== ==============================================

Queries arrive on the ``sql`` stream as NUL-terminated command lines.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..solver.budget import WORK_PER_SECOND
from .base import Workload
from .lib import CASE_TABLE, add_case_table

#: symbol table: 32 slots x 8 bytes (hash -> token value)
SYM_SLOTS = 32

KW_SELECT = 1
KW_FROM = 2
KW_WHERE = 3
KW_OR = 4


def _add_keyword_table(b: ModuleBuilder) -> None:
    """Static keyword strings, matched after case folding."""
    b.string("kw_select", "select")
    b.string("kw_from", "from")
    b.string("kw_where", "where")
    b.string("kw_or", "or")


def _build_engine(bug: str) -> Module:
    """Build the engine with the code path for ``bug`` enabled."""
    b = ModuleBuilder(f"sqlite-{bug}")
    add_case_table(b)
    _add_keyword_table(b)
    b.global_("line_buf", 64)
    b.global_("token_buf", 24)
    b.global_("sym_table", SYM_SLOTS * 8)
    b.global_("stats_flag", 8)
    b.global_("eqp_flag", 8)
    b.global_("eqp_stmt", 8)        # explain-statement pointer
    b.global_("subq_depth", 8)      # 787fa71 bookkeeping
    b.global_("coro_count", 8)
    b.global_("or_cursors", 16)     # 4e8e485: cursor ptr per OR branch

    _add_read_line(b)
    _add_fold(b)
    _add_keyword_match(b)
    _add_sym_insert(b)
    _add_exec_symbols(b)
    _add_parse_select(b, bug)
    _add_dot_command(b, bug)
    _add_finish_query(b, bug)
    _add_main(b)
    return b.build()


def _add_read_line(b: ModuleBuilder) -> None:
    """``read_line()``: read bytes into line_buf until NUL/newline.

    Returns the line length (0 = end of input).
    """
    f = b.function("read_line", [])
    f.block("entry")
    f.global_addr("line_buf", dest="%buf")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    full = f.cmp("uge", "%i", 63)
    f.br(full, "out", "rd")
    f.block("rd")
    ch = f.input("sql", 1, dest="%ch")
    isnl = f.cmp("eq", "%ch", 10, width=8)
    f.br(isnl, "out", "chk0")
    f.block("chk0")
    is0 = f.cmp("eq", "%ch", 0, width=8)
    f.br(is0, "out", "put")
    f.block("put")
    p = f.gep("%buf", "%i", 1)
    f.store(p, "%ch", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    endp = f.gep("%buf", "%i", 1)
    f.store(endp, 0, 1)
    f.ret("%i")


def _add_fold(b: ModuleBuilder) -> None:
    """``fold(ch)``: lowercase one byte via the folding table."""
    f = b.function("fold", ["ch"])
    f.block("entry")
    tbl = f.global_addr(CASE_TABLE)
    p = f.gep(tbl, "%ch", 1)
    low = f.load(p, 1)
    f.ret(low)


def _add_keyword_match(b: ModuleBuilder) -> None:
    """``kw_match(tok, kw)``: case-folded string compare, 1 if equal."""
    f = b.function("kw_match", ["tok", "kw"])
    f.block("entry")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    tp = f.gep("%tok", "%i", 1)
    tc = f.load(tp, 1, dest="%tc")
    folded = f.call("fold", ["%tc"], dest="%fc")
    kp = f.gep("%kw", "%i", 1)
    kc = f.load(kp, 1, dest="%kc")
    same = f.cmp("eq", "%fc", "%kc", width=8)
    f.br(same, "chk_end", "no")
    f.block("chk_end")
    end = f.cmp("eq", "%kc", 0, width=8)
    f.br(end, "yes", "next")
    f.block("next")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("yes")
    f.ret(1)
    f.block("no")
    f.ret(0)


def _add_sym_insert(b: ModuleBuilder) -> None:
    """``sym_insert(tok, len)``: hash an identifier into the symbol table.

    The additive hash of the folded bytes indexes a store — the symbolic
    write chain generator.  Returns the slot index.
    """
    f = b.function("sym_insert", ["tok", "len"])
    f.block("entry")
    f.const(0, dest="%h")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "ins", "body")
    f.block("body")
    p = f.gep("%tok", "%i", 1)
    ch = f.load(p, 1, dest="%ch")
    folded = f.call("fold", ["%ch"], dest="%fc")
    f.add("%h", "%fc", width=32, dest="%h")
    shifted = f.shl("%h", 1, width=32)
    f.add("%h", shifted, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("ins")
    slot = f.urem("%h", SYM_SLOTS, dest="%slot")
    tbl = f.global_addr("sym_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")


def _add_exec_symbols(b: ModuleBuilder) -> None:
    """``exec_symbols()``: the 'VM' — fold every occupied slot."""
    f = b.function("exec_symbols", [])
    f.block("entry")
    tbl = f.global_addr("sym_table", dest="%tbl")
    f.const(0, dest="%i")
    f.const(0, dest="%acc")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", SYM_SLOTS)
    f.br(done, "out", "body")
    f.block("body")
    p = f.gep("%tbl", "%i", 8)
    v = f.load(p, 8, dest="%v")
    empty = f.cmp("eq", "%v", 0)
    f.br(empty, "next", "use")
    f.block("use")
    f.add("%acc", "%v", dest="%acc")
    f.jmp("next")
    f.block("next")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    f.ret("%acc")


def _add_parse_select(b: ModuleBuilder, bug: str) -> None:
    """``parse_select(line, len)``: walk the query, register identifiers.

    Handles the bug-specific clauses:
    * 787fa71: '(' opens a co-routine subquery, ')' closes it; the buggy
      path increments ``coro_count`` twice for nested opens.
    * 4e8e485: 'or' in the WHERE clause allocates a cursor only for the
      first branch.
    """
    f = b.function("parse_select", ["line", "len"])
    f.block("entry")
    f.const(0, dest="%pos")
    f.const(0, dest="%in_where")
    f.const(0, dest="%or_seen")
    f.jmp("scan")

    f.block("scan")
    at_end = f.cmp("uge", "%pos", "%len")
    f.br(at_end, "done", "look")
    f.block("look")
    p = f.gep("%line", "%pos", 1)
    ch = f.load(p, 1, dest="%ch")
    is_space = f.cmp("eq", "%ch", 32, width=8)
    f.br(is_space, "skip", "classify")
    f.block("skip")
    f.add("%pos", 1, dest="%pos")
    f.jmp("scan")

    f.block("classify")
    is_open = f.cmp("eq", "%ch", 40, width=8)   # '('
    f.br(is_open, "open_sub", "classify2")
    f.block("classify2")
    is_close = f.cmp("eq", "%ch", 41, width=8)  # ')'
    f.br(is_close, "close_sub", "word")

    f.block("open_sub")
    if bug == "787fa71":
        d = f.global_addr("subq_depth", dest="%dp")
        dv = f.load("%dp", 8, dest="%dv")
        f.add("%dv", 1, dest="%dv")
        f.store("%dp", "%dv", 8)
        c = f.global_addr("coro_count", dest="%cp")
        cv = f.load("%cp", 8, dest="%cv")
        # BUG: nested subqueries double-count the co-routine
        nested = f.cmp("ugt", "%dv", 1)
        bump = f.select(nested, 2, 1)
        f.add("%cv", bump, dest="%cv")
        f.store("%cp", "%cv", 8)
    else:
        d = f.global_addr("subq_depth", dest="%dp")
        dv = f.load("%dp", 8, dest="%dv")
        f.add("%dv", 1, dest="%dv")
        f.store("%dp", "%dv", 8)
    f.add("%pos", 1, dest="%pos")
    f.jmp("scan")

    f.block("close_sub")
    d2 = f.global_addr("subq_depth", dest="%dp2")
    dv2 = f.load("%dp2", 8, dest="%dv2")
    pos_d = f.cmp("ugt", "%dv2", 0)
    f.br(pos_d, "dec_sub", "after_close")
    f.block("dec_sub")
    f.sub("%dv2", 1, dest="%dv2")
    f.store("%dp2", "%dv2", 8)
    if bug == "787fa71":
        c2 = f.global_addr("coro_count", dest="%cp2")
        cv2 = f.load("%cp2", 8, dest="%cv2")
        f.sub("%cv2", 1, dest="%cv2")
        f.store("%cp2", "%cv2", 8)
    f.jmp("after_close")
    f.block("after_close")
    f.add("%pos", 1, dest="%pos")
    f.jmp("scan")

    # a word: copy into token_buf, measure, classify keyword vs identifier
    f.block("word")
    tb = f.global_addr("token_buf", dest="%tb")
    f.const(0, dest="%tl")
    f.jmp("wloop")
    f.block("wloop")
    at_end2 = f.cmp("uge", "%pos", "%len")
    f.br(at_end2, "wdone", "wchk")
    f.block("wchk")
    wp = f.gep("%line", "%pos", 1)
    wc = f.load(wp, 1, dest="%wc")
    sp = f.cmp("eq", "%wc", 32, width=8)
    f.br(sp, "wdone", "wchk2")
    f.block("wchk2")
    op = f.cmp("eq", "%wc", 40, width=8)
    f.br(op, "wdone", "wchk3")
    f.block("wchk3")
    cl = f.cmp("eq", "%wc", 41, width=8)
    f.br(cl, "wdone", "wput")
    f.block("wput")
    toolong = f.cmp("uge", "%tl", 23)
    f.br(toolong, "wdone", "wstore")
    f.block("wstore")
    tp = f.gep("%tb", "%tl", 1)
    f.store(tp, "%wc", 1)
    f.add("%tl", 1, dest="%tl")
    f.add("%pos", 1, dest="%pos")
    f.jmp("wloop")
    f.block("wdone")
    tend = f.gep("%tb", "%tl", 1)
    f.store(tend, 0, 1)

    kw_where = f.global_addr("kw_where")
    m_where = f.call("kw_match", ["%tb", kw_where], dest="%mw")
    f.br("%mw", "set_where", "chk_or")
    f.block("set_where")
    f.const(1, dest="%in_where")
    f.jmp("scan")
    f.block("chk_or")
    kw_or = f.global_addr("kw_or")
    m_or = f.call("kw_match", ["%tb", kw_or], dest="%mo")
    f.br("%mo", "handle_or", "chk_from")
    f.block("handle_or")
    if bug == "4e8e485":
        # BUG: cursor is allocated only for the first OR branch
        first = f.cmp("eq", "%or_seen", 0)
        f.br(first, "alloc_cursor", "skip_cursor")
        f.block("alloc_cursor")
        cur = f.malloc(32, dest="%cur")
        cur_tbl = f.global_addr("or_cursors", dest="%ct")
        f.store("%ct", "%cur", 8)
        f.const(1, dest="%or_seen")
        f.jmp("scan")
        f.block("skip_cursor")
        f.const(2, dest="%or_seen")
        f.jmp("scan")
    else:
        f.const(1, dest="%or_seen")
        f.jmp("scan")
    f.block("chk_from")
    kw_from = f.global_addr("kw_from")
    m_from = f.call("kw_match", ["%tb", kw_from], dest="%mf")
    f.br("%mf", "scan_more", "identifier")
    f.block("scan_more")
    f.jmp("scan")
    f.block("identifier")
    has_len = f.cmp("ugt", "%tl", 0)
    f.br(has_len, "register", "scan2")
    f.block("register")
    f.call("sym_insert", ["%tb", "%tl"])
    f.jmp("scan2")
    f.block("scan2")
    f.jmp("scan")

    f.block("done")
    f.ret("%or_seen")


def _add_dot_command(b: ModuleBuilder, bug: str) -> None:
    """``dot_command(line, len)``: '.stats' and '.eqp' handling."""
    f = b.function("dot_command", ["line", "len"])
    f.block("entry")
    p1 = f.gep("%line", 1, 1)
    c1 = f.load(p1, 1, dest="%c1")
    f1 = f.call("fold", ["%c1"], dest="%f1")
    is_s = f.cmp("eq", "%f1", ord("s"), width=8)
    f.br(is_s, "stats", "chk_e")
    f.block("stats")
    g = f.global_addr("stats_flag", dest="%sf")
    f.store("%sf", 1, 8)
    f.ret(1)
    f.block("chk_e")
    is_e = f.cmp("eq", "%f1", ord("e"), width=8)
    f.br(is_e, "eqp", "unknown")
    f.block("eqp")
    g2 = f.global_addr("eqp_flag", dest="%ef")
    f.store("%ef", 1, 8)
    if bug == "7be932d":
        # BUG: enabling .eqp resets the explain statement pointer and
        # the re-prepare that should follow is skipped
        g3 = f.global_addr("eqp_stmt", dest="%es")
        f.store("%es", 0, 8)
    f.ret(1)
    f.block("unknown")
    f.ret(0)


def _add_finish_query(b: ModuleBuilder, bug: str) -> None:
    """``finish_query(or_seen)``: post-execution bug sites."""
    f = b.function("finish_query", ["or_seen"])
    f.block("entry")
    if bug == "7be932d":
        sf = f.global_addr("stats_flag", dest="%sf")
        sv = f.load("%sf", 8, dest="%sv")
        f.br("%sv", "stats_on", "out")
        f.block("stats_on")
        ef = f.global_addr("eqp_flag", dest="%ef")
        ev = f.load("%ef", 8, dest="%ev")
        f.br("%ev", "print_eqp", "out")
        f.block("print_eqp")
        es = f.global_addr("eqp_stmt", dest="%es")
        stmt = f.load("%es", 8, dest="%stmt")
        # NULL deref: stmt was cleared by the .eqp handler
        counters = f.load("%stmt", 8, dest="%ctr")
        f.output("stdout", "%ctr", 8)
        f.jmp("out")
    elif bug == "787fa71":
        dp = f.global_addr("subq_depth", dest="%dp")
        dv = f.load("%dp", 8, dest="%dv")
        closed = f.cmp("eq", "%dv", 0)
        f.br(closed, "chk_coro", "out")
        f.block("chk_coro")
        cp = f.global_addr("coro_count", dest="%cp")
        cv = f.load("%cp", 8, dest="%cv")
        ok = f.cmp("eq", "%cv", 0)
        f.assert_(ok, "coroutine bookkeeping inconsistent")
        f.jmp("out")
    elif bug == "4e8e485":
        two = f.cmp("uge", "%or_seen", 2)
        f.br(two, "second_or", "out")
        f.block("second_or")
        # NULL deref: second OR branch's cursor was never allocated
        ct = f.global_addr("or_cursors", dest="%ct")
        second = f.gep("%ct", 1, 8)
        cur = f.load(second, 8, dest="%cur")
        field = f.load("%cur", 8, dest="%fv")
        f.output("stdout", "%fv", 8)
        f.jmp("out")
    else:
        f.nop()
        f.jmp("out")
        f.block("out")
        f.ret(0)
        return
    f.block("out")
    f.ret(0)


def _add_main(b: ModuleBuilder) -> None:
    f = b.function("main", [])
    f.block("entry")
    f.jmp("repl")
    f.block("repl")
    n = f.call("read_line", [], dest="%n")
    empty = f.cmp("eq", "%n", 0)
    f.br(empty, "out", "dispatch")
    f.block("dispatch")
    buf = f.global_addr("line_buf", dest="%buf")
    c0 = f.load("%buf", 1, dest="%c0")
    is_dot = f.cmp("eq", "%c0", ord("."), width=8)
    f.br(is_dot, "dot", "query")
    f.block("dot")
    f.call("dot_command", ["%buf", "%n"])
    f.jmp("repl")
    f.block("query")
    kw_sel = f.global_addr("kw_select")
    # match only the first word: rely on kw_match stopping at NUL in kw
    tokp = f.global_addr("token_buf", dest="%tb0")
    f.const(0, dest="%k")
    f.jmp("copy1")
    f.block("copy1")
    done1 = f.cmp("uge", "%k", 6)
    f.br(done1, "fin1", "cp1")
    f.block("cp1")
    sp1 = f.gep("%buf", "%k", 1)
    ch1 = f.load(sp1, 1, dest="%ch1")
    dp1 = f.gep("%tb0", "%k", 1)
    f.store(dp1, "%ch1", 1)
    f.add("%k", 1, dest="%k")
    f.jmp("copy1")
    f.block("fin1")
    endp1 = f.gep("%tb0", 6, 1)
    f.store(endp1, 0, 1)
    m = f.call("kw_match", ["%tb0", kw_sel], dest="%m")
    f.br("%m", "do_select", "repl")
    f.block("do_select")
    ors = f.call("parse_select", ["%buf", "%n"], dest="%ors")
    f.call("exec_symbols", [])
    f.call("finish_query", ["%ors"])
    f.jmp("repl")
    f.block("out")
    f.ret(0)


# ----------------------------------------------------------------------
# environments

def _sql_bytes(*lines: str) -> bytes:
    return ("\n".join(lines) + "\n").encode() + b"\x00"


def _failing_7be932d(occurrence: int) -> Environment:
    tables = ["orders", "people", "events", "items"]
    t = tables[occurrence % len(tables)]
    return Environment({"sql": _sql_bytes(
        f"select a b from {t}",
        ".eqp",
        ".stats",
        f"select x y {t}",
    )})


def _failing_787fa71(occurrence: int) -> Environment:
    names = ["aa", "bb", "cc", "dd"]
    n = names[occurrence % len(names)]
    return Environment({"sql": _sql_bytes(
        f"select {n} ( ( inner ) )",
    )})


def _failing_4e8e485(occurrence: int) -> Environment:
    cols = ["price", "qty", "name", "age"]
    c = cols[occurrence % len(cols)]
    return Environment({"sql": _sql_bytes(
        f"select {c} from t where a or b or c",
    )})


_BENIGN_QUERIES = [
    "select col1 col2 from tab",
    "select name from people where age",
    ".stats",
    "select a from b",
    "select x ( sub ) from t",
    "select q from r where s or t",
]


def _benign_env(seed: int) -> Environment:
    rng = random.Random(seed)
    lines = [rng.choice(_BENIGN_QUERIES) for _ in range(rng.randint(40, 60))]
    # never both .stats and .eqp, never unbalanced parens with assert path
    return Environment({"sql": _sql_bytes(*lines)})


def sqlite_workloads():
    """The three SQLite rows of Table 1."""
    second = 2 * WORK_PER_SECOND
    return [
        Workload(
            name="sqlite-7be932d", app="SQLite 3.27.0", bug_id="7be932d",
            bug_type="NULL pointer dereference", multithreaded=False,
            expected_kind=FailureKind.NULL_DEREF,
            build=lambda: _build_engine("7be932d"),
            failing_env=_failing_7be932d, benign_env=_benign_env,
            bench_name="Official fuzz test", work_limit=60_000,
            paper_occurrences=3, paper_instrs=1_408_411),
        Workload(
            name="sqlite-787fa71", app="SQLite 3.8.11", bug_id="787fa71",
            bug_type="Inconsistent data-structure", multithreaded=False,
            expected_kind=FailureKind.ASSERT,
            build=lambda: _build_engine("787fa71"),
            failing_env=_failing_787fa71, benign_env=_benign_env,
            bench_name="Official fuzz test", work_limit=15_000,
            paper_occurrences=4, paper_instrs=1_115_003),
        Workload(
            name="sqlite-4e8e485", app="SQLite 3.25.0", bug_id="4e8e485",
            bug_type="NULL pointer dereference", multithreaded=False,
            expected_kind=FailureKind.NULL_DEREF,
            build=lambda: _build_engine("4e8e485"),
            failing_env=_failing_4e8e485, benign_env=_benign_env,
            bench_name="Official fuzz test", work_limit=40_000,
            paper_occurrences=3, paper_instrs=1_349_129),
    ]
