"""Module structure, program points, and the builder API."""

import pytest

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder
from repro.ir.module import Function, Module, ProgramPoint


class TestProgramPoint:
    def test_ordering_and_equality(self):
        a = ProgramPoint("f", "entry", 0)
        b = ProgramPoint("f", "entry", 1)
        assert a < b
        assert a == ProgramPoint("f", "entry", 0)

    def test_str(self):
        assert str(ProgramPoint("f", "b", 3)) == "f:b:3"

    def test_usable_as_dict_key(self):
        counts = {ProgramPoint("f", "b", 0): 2}
        assert counts[ProgramPoint("f", "b", 0)] == 2


class TestModule:
    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global("g", 8)
        with pytest.raises(IRError):
            m.add_global("g", 8)

    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function(Function("f"))
        with pytest.raises(IRError):
            m.add_function(Function("f"))

    def test_unknown_function_raises(self):
        with pytest.raises(IRError):
            Module().function("nope")

    def test_global_initial_bytes_zero_fill(self):
        m = Module()
        g = m.add_global("g", 8, b"\x01\x02")
        assert g.initial_bytes() == bytearray(b"\x01\x02" + b"\x00" * 6)

    def test_init_truncated_to_size(self):
        m = Module()
        g = m.add_global("g", 2, b"\x01\x02\x03")
        assert g.initial_bytes() == bytearray(b"\x01\x02")

    def test_points_enumerates_in_order(self, abort_module):
        points = [p for p, _ in abort_module.points()]
        assert points == sorted(points, key=lambda p: (p.func == "main",))\
            or len(points) == abort_module.instruction_count()

    def test_instr_at_roundtrip(self, abort_module):
        for point, instr in abort_module.points():
            assert abort_module.instr_at(point) is instr

    def test_clone_is_deep(self, abort_module):
        clone = abort_module.clone()
        clone.function("main").block("entry").instrs.append(ins.Nop())
        assert (clone.instruction_count()
                == abort_module.instruction_count() + 1)


class TestBuilder:
    def test_registers_get_percent_prefix(self):
        b = ModuleBuilder()
        f = b.function("main", ["x"])
        assert f.func.params == ["%x"]

    def test_fresh_names_unique(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        assert f.fresh() != f.fresh()

    def test_emit_requires_block(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        with pytest.raises(IRError):
            f.const(1)

    def test_no_emission_after_terminator(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        f.block("entry")
        f.ret(0)
        with pytest.raises(IRError):
            f.const(1)

    def test_at_switches_back_to_block(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        f.block("one")
        f.jmp("two")
        f.block("two")
        f.ret(0)
        with pytest.raises(IRError):
            f.at("one").nop()  # already terminated

    def test_build_verifies(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        f.block("entry")
        f.jmp("nowhere")
        with pytest.raises(IRError):
            b.build()

    def test_string_global_nul_terminated(self):
        b = ModuleBuilder()
        b.string("s", "hi")
        f = b.function("main", [])
        f.block("entry")
        f.ret(0)
        m = b.build()
        assert m.globals["s"].init == b"hi\x00"

    def test_operands_accept_ints_and_registers(self):
        b = ModuleBuilder()
        f = b.function("main", [])
        f.block("entry")
        x = f.add(1, 2)
        y = f.add(x, "x" if False else x)
        f.ret(y)
        m = b.build()
        assert m.instruction_count() == 3
