"""Concrete memory model: allocation, bounds, liveness, fault kinds."""

import pytest

from repro.interp.failures import FailureKind, MemoryFault
from repro.interp.memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, Memory
from repro.ir.module import Module


def _memory_with_global(size=16, init=b""):
    m = Module()
    m.add_global("g", size, init)
    return Memory(m)


class TestAllocation:
    def test_global_layout(self):
        mem = _memory_with_global(init=b"\x42")
        addr = mem.global_addrs["g"]
        assert addr >= GLOBAL_BASE
        assert mem.load(addr, 1) == 0x42

    def test_stack_and_heap_segments(self):
        mem = Memory()
        stack = mem.alloc_stack("s", 8)
        heap = mem.alloc_heap(8)
        assert STACK_BASE <= stack.base < HEAP_BASE <= heap.base

    def test_objects_do_not_overlap(self):
        mem = Memory()
        objs = [mem.alloc_heap(24) for _ in range(10)]
        for a, b in zip(objs, objs[1:]):
            assert a.end <= b.base

    def test_guard_gap_between_objects(self):
        mem = Memory()
        a = mem.alloc_heap(16)
        b = mem.alloc_heap(16)
        assert b.base - a.end >= 16  # overruns land in the gap


class TestAccess:
    def test_load_store_roundtrip(self):
        mem = Memory()
        obj = mem.alloc_heap(16)
        mem.store(obj.base + 4, 0xDEADBEEF, 4)
        assert mem.load(obj.base + 4, 4) == 0xDEADBEEF

    def test_little_endian(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        mem.store(obj.base, 0x0102, 2)
        assert mem.load(obj.base, 1) == 0x02

    def test_store_masks_value(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        mem.store(obj.base, 0x1FF, 1)
        assert mem.load(obj.base, 1) == 0xFF

    def test_read_write_bytes(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        mem.write_bytes(obj.base, b"abc")
        assert mem.read_bytes(obj.base, 3) == b"abc"


class TestFaults:
    def test_null_deref(self):
        mem = Memory()
        with pytest.raises(MemoryFault) as exc:
            mem.load(0, 1)
        assert exc.value.kind == FailureKind.NULL_DEREF

    def test_null_page_extends(self):
        mem = Memory()
        with pytest.raises(MemoryFault) as exc:
            mem.load(0xFFF, 1)
        assert exc.value.kind == FailureKind.NULL_DEREF

    def test_wild_pointer(self):
        mem = Memory()
        with pytest.raises(MemoryFault) as exc:
            mem.load(0x12345, 1)
        assert exc.value.kind == FailureKind.OUT_OF_BOUNDS

    def test_overrun_past_end(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        with pytest.raises(MemoryFault) as exc:
            mem.load(obj.base + 6, 4)
        assert exc.value.kind == FailureKind.OUT_OF_BOUNDS

    def test_use_after_free(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        mem.free_heap(obj.base)
        with pytest.raises(MemoryFault) as exc:
            mem.load(obj.base, 1)
        assert exc.value.kind == FailureKind.USE_AFTER_FREE

    def test_double_free(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        mem.free_heap(obj.base)
        with pytest.raises(MemoryFault) as exc:
            mem.free_heap(obj.base)
        assert exc.value.kind == FailureKind.DOUBLE_FREE

    def test_free_of_interior_pointer(self):
        mem = Memory()
        obj = mem.alloc_heap(8)
        with pytest.raises(MemoryFault) as exc:
            mem.free_heap(obj.base + 4)
        assert exc.value.kind == FailureKind.OUT_OF_BOUNDS

    def test_free_of_stack_object(self):
        mem = Memory()
        obj = mem.alloc_stack("s", 8)
        with pytest.raises(MemoryFault):
            mem.free_heap(obj.base)

    def test_dead_stack_object_faults(self):
        mem = Memory()
        obj = mem.alloc_stack("s", 8)
        mem.release_stack(obj)
        with pytest.raises(MemoryFault) as exc:
            mem.store(obj.base, 1, 1)
        assert exc.value.kind == FailureKind.USE_AFTER_FREE


class TestSnapshot:
    def test_snapshot_excludes_dead(self):
        mem = Memory()
        live = mem.alloc_heap(4)
        dead = mem.alloc_heap(4)
        mem.free_heap(dead.base)
        snap = mem.snapshot()
        assert live.base in snap and dead.base not in snap

    def test_snapshot_copies(self):
        mem = Memory()
        obj = mem.alloc_heap(4)
        snap = mem.snapshot()
        mem.store(obj.base, 9, 1)
        assert snap[obj.base][0] == 0
