"""Evaluation harnesses: each regenerates its table/figure with the
paper's qualitative shape (on fast subsets where full runs are slow)."""

import pytest

from repro.evaluation.accuracy import run_accuracy
from repro.evaluation.casestudy import run_casestudy
from repro.evaluation.figure1 import BOUNDARY, run_figure1
from repro.evaluation.figure5 import run_figure5
from repro.evaluation.figure6 import measure_workload, run_figure6
from repro.evaluation.formatting import percent, render_series, render_table
from repro.evaluation.random_cmp import run_random_comparison
from repro.evaluation.table1 import run_table1, run_workload
from repro.workloads import get_workload

FAST = ["bash-108885", "libpng-2004-0597", "python-2018-1000030"]


class TestFormatting:
    def test_render_table_aligned(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_render_series(self):
        text = render_series("s", [(1, 2.0)], "x", "y")
        assert "x -> y" in text

    def test_percent(self):
        assert percent(0.0031) == "0.31%"


class TestFigure1:
    def test_only_er_clears_all(self):
        result = run_figure1()
        assert result.clears_all() == ["ER"]

    def test_rr_usable_on_effectiveness_and_accuracy(self):
        result = run_figure1()
        assert "Full RR" in result.usable("effectiveness")
        assert "Full RR" in result.usable("accuracy")
        assert "Full RR" not in result.usable("efficiency")

    def test_rept_not_accurate(self):
        result = run_figure1()
        assert "REPT" not in result.usable("accuracy")
        assert "REPT" in result.usable("efficiency")

    def test_render_contains_boundary_marker(self):
        assert "|" in run_figure1().render()


class TestTable1:
    def test_subset_rows(self):
        result = run_table1(names=FAST)
        assert len(result.rows) == 3
        assert result.all_reproduced

    def test_row_fields(self):
        row = run_workload(get_workload("bash-108885"))
        assert row.verified
        assert row.occurrences == 1
        assert row.failing_instrs > 0
        assert row.symbex_wall_seconds >= 0

    def test_render(self):
        result = run_table1(names=["bash-108885"])
        text = result.render()
        assert "bash-108885" in text and "Table 1" in text

    def test_parallel_rows_match_serial(self):
        names = ["objdump-2018-6323", "matrixssl-2014-1569"]
        serial = run_table1(names=names)
        pooled = run_table1(names=names, parallel=2)
        key = lambda r: (r.name, r.verified, r.occurrences,
                         r.recorded_bytes, r.max_graph_nodes)
        assert [key(r) for r in pooled.rows] == \
            [key(r) for r in serial.rows]
        # pooled rows shed the unpicklable report payload
        assert all(r.report is None for r in pooled.rows)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5()

    def test_three_series(self, result):
        assert len(result.series) == 3

    def test_times_strictly_improve(self, result):
        assert result.strictly_improving

    def test_substantial_speedup(self, result):
        assert result.speedup() > 2.0  # paper: 6.4x

    def test_all_replay_to_completion(self, result):
        assert all(s.status == "completed" for s in result.series)

    def test_progress_samples_monotonic(self, result):
        for series in result.series:
            xs = [x for x, _ in series.progress]
            ys = [y for _, y in series.progress]
            assert xs == sorted(xs) and ys == sorted(ys)


class TestFigure6:
    def test_er_far_below_rr(self):
        row = measure_workload(get_workload("bash-108885"), runs=4,
                               measure_last_iteration=False)
        assert row.er_mean < 0.02 < row.rr_mean

    def test_subset_summary_shape(self):
        result = run_figure6(names=FAST, runs=4,
                             measure_last_iteration=False)
        assert result.er_average < 0.01
        assert result.rr_average > 0.10

    def test_last_iteration_column(self):
        row = measure_workload(get_workload("python-2018-1000030"),
                               runs=3, measure_last_iteration=True)
        assert row.er_last_mean >= 0.0

    def test_render(self):
        result = run_figure6(names=["bash-108885"], runs=3,
                             measure_last_iteration=False)
        assert "Figure 6" in result.render()


class TestAccuracy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_accuracy(names=["bash-108885", "libpng-2004-0597",
                                   "nasm-2004-1287"])

    def test_er_always_exact(self, result):
        assert result.er_always_exact

    def test_rept_loses_values_on_nontrivial_traces(self, result):
        nontrivial = [r for r in result.rows if r.trace_length > 100]
        assert all(r.rept_error_rate > 0.05 for r in nontrivial)

    def test_render(self, result):
        assert "REPT" in result.render()


class TestRandomComparison:
    def test_er_beats_random_overall(self):
        result = run_random_comparison(
            names=["python-2018-1000030", "bash-108885"], seeds=2)
        for row in result.rows:
            assert row.er_success
        python_row = next(r for r in result.rows
                          if r.name == "python-2018-1000030")
        assert python_row.needs_data


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_casestudy()

    def test_same_root_causes(self, result):
        assert result.all_match  # the paper's headline claim

    def test_both_programs_covered(self, result):
        assert {r.program for r in result.rows} == {"od", "pr"}

    def test_invariants_learned(self, result):
        assert all(r.invariants_learned > 5 for r in result.rows)

    def test_render(self, result):
        assert "MIMIC" in result.render() or "Case study" in result.render()
