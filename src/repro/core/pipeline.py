"""Speculative pre-solving for the pipelined reconstruction loop.

The sequential loop (§3, Fig. 2) alternates *wait for a reoccurrence*
and *analyze the trace* — the production wait is dead time.  The
pipelined loop overlaps it: after a stall selects key data values and
redeploys, the next occurrence is awaited on a background thread
(:meth:`~repro.core.production.ProductionSite.start`) while the
analysis side speculatively pre-solves the queries the *next* symbolic
execution run is about to issue.

What can be predicted?  The next run re-executes the same path up to
the old stall point, with one difference: each *dynamic execution* of
an instrumented ``ptwrite`` concretizes its register to the recorded
value ``v`` and appends ``eq(t, v)`` to the path constraints, where
``t`` is the term that execution instance built.  Because the
``ptwrite`` sits immediately after the defining instruction, no other
use of ``t`` can intervene, so the next run's constraint set at the
old stall point is exactly the current one with every instance term
substituted by its recorded constant, plus one ``eq`` per instance —
computable *now* for any candidate assignment of values to instances.

A recording point inside a loop executes many times, building several
distinct terms that share one provenance; the speculator treats each
such instance as a *slot*, ordered by first appearance in the
constraint list (appended chronologically, so this approximates
execution order — and a wrong guess only yields a key the engine
never queries, see the commit rule).  It enumerates candidate values
per slot, builds each joint assignment's transformed key through the
public term constructors (so constant folding fires exactly as during
execution and the keys match structurally), and solves them — on the
persistent :class:`~repro.parallel.WorkerPool` when available, inline
otherwise.

**Strict commit rule.**  Nothing is visible to the engine until the
real occurrence arrives: a speculation commits only when the arrived
occurrence's recorded value *sequence* for every tag exactly matches
the assumed per-slot assignment, position by position; every other
assignment is discarded.  Even a committed verdict is semantically
sound regardless of whether the slot ordering guessed the true
execution order — the verdict was produced by actually solving the
committed key's terms, so at worst a wrong guess stores an entry the
next run never looks up.  A committed verdict flows only through
:meth:`~repro.solver.cache.SolverCache.commit_speculation` — the
exact-key feasibility tier plus disk write-through — never through the
model/hint paths that could perturb the sequential search's candidate
order.  Verdicts that consumed more than ``work_limit /
commit_margin`` are discarded too: a hinted sequential search might
exceed the budget (and stall) on a query the fresh speculative search
squeaked through, and a committed verdict must never turn a
sequential-stall into a pipelined-pass.  Under this rule the pipelined
loop's outcomes are byte-identical to the sequential loop's on every
workload; speculation only moves solver work off the critical path.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import SolverError, SolverTimeout, UnsatError
from ..solver.budget import Budget
from ..solver.cache import SolverCache
from ..solver.diskcache import DiskSolverCache
from ..solver.solver import Solver
from ..solver import terms as T
from ..solver.terms import (Term, deserialize_term, serialize_term,
                            substitute)
from ..symex.result import StallInfo
from .instrument import InstrumentationResult
from .selection import RecordingItem, RecordingPlan

logger = logging.getLogger(__name__)

#: joint assignments actually pre-solved (model-enumeration order)
MAX_ASSIGNMENTS = 8
#: enumeration budget multiplier over the engine's per-query limit —
#: enumeration runs off the critical path, so it may dig deeper than a
#: live query would; committed verdicts still answer to COMMIT_MARGIN
ENUM_BUDGET_FACTOR = 4
#: give up on stalls with more dynamic instances than this — the
#: enumeration cost grows linearly in slots and the joint-match
#: probability shrinks, so very wide loops are poor speculation targets
MAX_SLOTS = 24
#: a speculative verdict commits only when it cost at most
#: ``work_limit / COMMIT_MARGIN`` — see the module docstring
COMMIT_MARGIN = 2


def _speculate_solve(index: int, serialized: List[str],
                     work_limit: int,
                     cache_dir: Optional[str]) -> Tuple[int,
                                                        Optional[bool],
                                                        int]:
    """Solve one speculative key (pool task or inline).

    Runs a *fresh* solver over a private in-memory cache (plus the
    shared disk tier when configured) so speculation never touches the
    reconstruction's live cache directly.  Returns ``(index, verdict,
    work_spent)`` with ``verdict=None`` on timeout.
    """
    with T.term_scope():
        terms = [deserialize_term(text) for text in serialized]
        cache = SolverCache(
            persistent=DiskSolverCache(cache_dir) if cache_dir else None)
        solver = Solver(work_limit=work_limit, cache=cache)
        budget = Budget(work_limit, context="speculation")
        try:
            verdict = solver.is_feasible(terms, budget)
        except SolverTimeout:
            return (index, None, budget.spent)
        return (index, verdict, budget.spent)


def _walk_subterms(roots: Sequence[Term]):
    """Iterative pre-order subterm traversal, left-to-right and
    id-deduplicated — the deterministic order the slot list is built
    in, so first appearance tracks the order constraints (and the
    subterms within each) were constructed."""
    seen: set = set()
    stack = [root for root in reversed(roots) if isinstance(root, Term)]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        for arg in reversed(node.args):
            if isinstance(arg, Term):
                stack.append(arg)


def predict_preshard(trace, shards: int,
                     steal: bool) -> Optional[List[List[bool]]]:
    """Pre-compute the prefix partition the next gap search will use.

    The partition depends only on the trace's gap count and the shard
    width, so it can be derived from the *current* occurrence while
    waiting for the next one.  The next trace may carry a different
    gap count (degradation is seeded per occurrence); the prediction is
    then simply wrong and counted as a ``preshard_miss`` — it is pure
    bookkeeping, never a correctness input.
    """
    if shards <= 1:
        return None
    from ..parallel import _shard_prefixes, _steal_prefixes

    return (_steal_prefixes if steal else _shard_prefixes)(trace, shards)


class Speculator:
    """Pre-solves the next run's stall-point queries during the wait.

    Driven by the pipelined loop: :meth:`step` performs one bounded
    unit of work between :meth:`DeferredOccurrence.poll` calls and
    returns False once the speculation space is exhausted;
    :meth:`commit` applies the strict commit rule against the arrived
    occurrence.  All speculative solving happens on private solver
    state; the only externally visible effect is the committed
    exact-key cache entry (and its disk write-through).
    """

    def __init__(self, stall: StallInfo, plan: RecordingPlan,
                 instrumented: InstrumentationResult,
                 solver_cache: SolverCache, *,
                 work_limit: int,
                 cache_dir: Optional[str] = None,
                 max_assignments: int = MAX_ASSIGNMENTS,
                 commit_margin: int = COMMIT_MARGIN,
                 pool=None):
        self.stall = stall
        self.items: List[RecordingItem] = list(plan.items)
        #: recording item -> the ptwrite tag that will report its value
        self.item_tags: Dict[RecordingItem, int] = {
            item: tag for tag, item in instrumented.tag_map.items()}
        self.solver_cache = solver_cache
        self.work_limit = work_limit
        self.cache_dir = cache_dir
        self.max_assignments = max_assignments
        self.commit_margin = commit_margin
        self.pool = pool
        #: wall-clock seconds of analysis work overlapped with the wait
        self.overlap_seconds = 0.0
        #: (values-tuple, live key) per assignment, parent-side terms
        self._assignments: List[Tuple[Tuple[int, ...],
                                      FrozenSet[Term]]] = []
        #: assignment index -> (verdict, work_spent)
        self._verdicts: Dict[int, Tuple[Optional[bool], int]] = {}
        #: model-enumeration state: value tuples seen, ban constraints
        self._enumerated: List[Tuple[int, ...]] = []
        self._bans: List[Term] = []
        self._enum_solver: Optional[Solver] = None
        self._solve_cursor = 0
        self._job = None
        self._job_remaining = 0
        self._phase = "enum"
        #: (item index, instance term) per slot, first-appearance order
        self._slots = self._collect_slots()
        if self._slots is None:
            self._phase = "done"
            telemetry.count("pipeline.unspeculable_stalls")

    # -- preparation ---------------------------------------------------

    def _collect_slots(self) -> Optional[List[Tuple[int, Term]]]:
        """One slot per dynamic instance of each recording item — every
        distinct term in the stall constraints carrying the item's
        provenance, in first-appearance order — or None when a selected
        item never appears in the constraints (its ``eq``s next run
        cannot be predicted) or the instance count exceeds
        :data:`MAX_SLOTS`."""
        if not self.items or not self.item_tags:
            return None
        prov_to_item = {}
        for index, item in enumerate(self.items):
            if item not in self.item_tags:
                return None
            prov_to_item[(item.point, item.register, item.size)] = index
        slots: List[Tuple[int, Term]] = []
        matched = set()
        for node in _walk_subterms(self.stall.constraints):
            if node.prov is None:
                continue
            index = prov_to_item.get(tuple(node.prov))
            if index is None:
                continue
            slots.append((index, node))
            matched.add(index)
            if len(slots) > MAX_SLOTS:
                return None
        if len(matched) != len(self.items):
            return None
        return slots

    def _begin_solving(self) -> None:
        self._enum_solver = None
        self._phase = "solve" if self._assignments else "done"
        if self._phase == "solve" and self.pool is not None:
            self._submit_all()

    def _key_for(self, chosen: Tuple[int, ...]
                 ) -> Optional[FrozenSet[Term]]:
        """Mirror the engine's ptwrite transformation for one joint
        assignment; None when the assignment is self-inconsistent
        (a substituted constraint folds to constant-false).  Slots are
        processed in order, so a later instance whose term *contains*
        an earlier instance folds through the accumulated mapping —
        exactly as the next run builds it from the already-concretized
        register."""
        assert self._slots is not None
        mapping: Dict[Term, Term] = {}
        eqs: List[Term] = []
        for (_, term), value in zip(self._slots, chosen):
            live = substitute(term, mapping)
            if live.is_const:
                if live.value != value:
                    return None  # earlier folding contradicts this value
            else:
                eq = T.bool_term(T.cmp("eq", live, T.const(value), 64))
                if eq.is_const:
                    if eq.value == 0:
                        return None
                else:
                    eqs.append(eq)
                mapping[live] = T.const(value)
            if term not in mapping:
                mapping[term] = T.const(value)
        out: List[Term] = list(eqs)
        for constraint in self.stall.constraints:
            folded = T.bool_term(substitute(constraint, mapping))
            if folded.is_const:
                if folded.value == 0:
                    return None  # next run would diverge, never query
                continue  # trivially true constraints are dropped
            out.append(folded)
        return SolverCache.key(out)

    # -- the drive loop ------------------------------------------------

    def step(self) -> bool:
        """One bounded unit of speculation; False once exhausted."""
        if self._phase == "done":
            return False
        started = time.perf_counter()
        try:
            if self._phase == "enum":
                self._step_enum()
            elif self._phase == "solve":
                if self.pool is not None:
                    self._step_pool()
                else:
                    self._step_inline()
            return self._phase != "done"
        finally:
            self.overlap_seconds += time.perf_counter() - started

    def _step_enum(self) -> None:
        """Enumerate one joint assignment by solving for a model of the
        stall constraints (private solver: the live cache must never
        observe speculative queries).

        Model enumeration — read every slot's value off one model, ban
        that tuple, re-solve — beats independent per-slot value lists:
        values the constraints *force* (comparison outcomes, derived
        counts) appear in every model with their true value, and every
        enumerated tuple is jointly feasible by construction.  Values
        the constraints leave free (raw input bytes) are unpredictable
        under any scheme; those assignments simply fail the commit
        match."""
        assert self._slots is not None
        if len(self._enumerated) >= self.max_assignments:
            self._begin_solving()
            return
        enum_limit = self.work_limit * ENUM_BUDGET_FACTOR
        if self._enum_solver is None:
            self._enum_solver = Solver(work_limit=enum_limit,
                                       cache=SolverCache())
        try:
            model = self._enum_solver.solve(
                list(self.stall.constraints) + self._bans,
                Budget(enum_limit, context="speculation"))
            chosen = tuple(model.eval_term(term)
                           for _, term in self._slots)
        except UnsatError:
            self._begin_solving()  # value space exhausted
            return
        except SolverTimeout:
            if not self._assignments:
                telemetry.count("pipeline.enum_timeouts")
            self._begin_solving()  # keep whatever was enumerated
            return
        except SolverError:
            self._begin_solving()  # model does not determine a slot
            return
        if chosen in self._enumerated:
            self._begin_solving()  # ban was vacuous (all-const slots)
            return
        self._enumerated.append(chosen)
        key = self._key_for(chosen)
        if key is not None:
            self._assignments.append((chosen, key))
        ban = None
        for (_, term), value in zip(self._slots, chosen):
            if term.is_const:
                continue
            ne = T.cmp("ne", term, T.const(value), 64)
            ban = ne if ban is None else T.binop("or", ban, ne, 1)
        if ban is None:
            self._begin_solving()  # nothing bannable: one tuple only
            return
        self._bans.append(ban)

    def _submit_all(self) -> None:
        self._job = self.pool.begin_job({}, meter_queue_wait=False)
        for index, (_, key) in enumerate(self._assignments):
            serialized = [serialize_term(term) for term in key]
            self._job.submit(_speculate_solve, index, serialized,
                             self.work_limit, self.cache_dir)
        self._job_remaining = len(self._assignments)

    def _step_pool(self) -> None:
        if self._job_remaining == 0:
            self._finish_job()
            return
        kind, task_id, body = self._job.next_message()
        if kind == "split":
            return
        self._job_remaining -= 1
        if kind == "err":
            logger.debug("speculation task %d failed: %s", task_id, body)
            return
        index, verdict, spent = body
        self._verdicts[index] = (verdict, spent)
        telemetry.count("pipeline.speculations")

    def _step_inline(self) -> None:
        index = self._solve_cursor
        if index >= len(self._assignments):
            self._phase = "done"
            return
        self._solve_cursor += 1
        _, key = self._assignments[index]
        serialized = [serialize_term(term) for term in key]
        _, verdict, spent = _speculate_solve(index, serialized,
                                             self.work_limit,
                                             self.cache_dir)
        self._verdicts[index] = (verdict, spent)
        telemetry.count("pipeline.speculations")

    def _finish_job(self) -> None:
        if self._job is not None:
            snapshots, events = self._job.finish()
            tel = telemetry.get()
            tel.absorb(telemetry.merge_snapshots(snapshots))
            tel.forward(events)
            self._job = None
        self._phase = "done"

    def drain(self) -> None:
        """Collect any in-flight pool results (the occurrence arrived;
        the pool must be free before the next shard search)."""
        while self._phase == "solve" and self.pool is not None:
            self._step_pool()
        if self._job is not None:
            self._finish_job()
        self._phase = "done"

    # -- the strict commit rule ----------------------------------------

    def commit(self, occurrence) -> int:
        """Apply the strict commit rule against the arrived occurrence.

        Returns the number of committed verdicts (0 or 1: at most one
        assignment can match the recorded values).  Everything else —
        mismatched assignments, timeouts, over-budget verdicts — is
        discarded; discarding is always safe because nothing was
        visible before this point.
        """
        self.drain()
        committed = 0
        discarded = 0
        recorded: Dict[int, List[int]] = {}
        for event in occurrence.trace.ptwrites():
            recorded.setdefault(event.tag, []).append(event.value)
        for index, (chosen, key) in enumerate(self._assignments):
            verdict_spent = self._verdicts.get(index)
            matches = self._matches_recorded(chosen, recorded)
            if not matches or verdict_spent is None:
                discarded += 1
                continue
            verdict, spent = verdict_spent
            if verdict is None or \
                    spent * self.commit_margin > self.work_limit:
                discarded += 1  # timeout or margin: too close to call
                continue
            self.solver_cache.commit_speculation(key, verdict)
            committed += 1
        telemetry.count("pipeline.commits", committed)
        telemetry.count("pipeline.discards", discarded)
        telemetry.histogram("pipeline.overlap_seconds").record(
            self.overlap_seconds)
        logger.debug("speculation: %d committed, %d discarded, "
                     "%.3fs overlapped", committed, discarded,
                     self.overlap_seconds)
        return committed

    def _matches_recorded(self, chosen: Tuple[int, ...],
                          recorded: Dict[int, List[int]]) -> bool:
        """Does this assignment match the recorded value sequences?

        For each item, the values assumed for its slots (in slot order)
        must equal the recorded sequence for its tag position by
        position.  One relaxation: interning collapses structurally
        identical instances into one slot while the trace still records
        one value per execution — a recorded sequence that repeats a
        single value matches an assumption of that same value (the
        collapsed key is exact: the engine's duplicate ``eq``s dedup in
        the frozenset key too)."""
        assert self._slots is not None
        for item_index, item in enumerate(self.items):
            assumed = [value for (slot_item, _), value
                       in zip(self._slots, chosen)
                       if slot_item == item_index]
            seq = recorded.get(self.item_tags[item], [])
            if seq == assumed:
                continue
            if assumed and seq and set(seq) == set(assumed) \
                    and len(set(seq)) == 1:
                continue
            return False
        return True
