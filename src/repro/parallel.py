"""Parallel batch reconstruction: many workloads, one merged report.

Reconstructions of distinct failures are embarrassingly parallel — each
one owns its module clone, production site, term space, and solver
cache — so the batch runner fans workloads out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Process (not thread)
workers sidestep the GIL: shepherded symbolic execution is pure Python
and CPU-bound.

Every worker runs under its own telemetry registry and ships back a
picklable :class:`BatchItem` — outcome summary, metric snapshot, and
(optionally) the structured event stream.  The parent merges the
snapshots with :func:`repro.telemetry.merge_snapshots` and can write a
single combined JSONL log (each event tagged with its workload) that
``repro stats`` renders like any single-run log.

``parallel=1`` degrades to a plain in-process loop — same code path,
same reports, no executor — which is also the serial baseline that
``repro bench`` compares against to measure the speedup.

Beside the batch runner lives :func:`shard_gap_search`: intra-
reconstruction parallelism.  One gap-recovery search (the serial DFS in
``repro.symex.gaps``) is split into decision-vector *prefix subspaces*,
each explored by a worker process confined to its prefix; the winner is
the first non-diverged outcome in serial DFS order, so the sharded
search returns the same result the serial search would.  Workers share
solver work through the persistent disk cache (``cache_dir``) and ship
back reduced, picklable outcomes — the parent replays the winning
decision vector once, in-process, to materialize the full
:class:`~repro.symex.result.SymexResult` (terms never cross process
boundaries).
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Union

from . import telemetry
from .core import ExecutionReconstructor, ProductionSite
from .solver import terms as T
from .solver.cache import SolverCache
from .solver.diskcache import DiskSolverCache
from .symex.engine import ShepherdedSymex
from .symex.gaps import _search_gap_decisions
from .trace.degrade import gap_count
from .workloads import get_workload, workload_names

__all__ = ["BatchItem", "BatchResult", "GapShardOutcome", "run_batch",
           "shard_gap_search", "write_merged_jsonl"]

logger = logging.getLogger(__name__)

#: ceiling on the prefix depth (2^depth shard tasks)
MAX_SHARD_DEPTH = 6


@dataclass
class BatchItem:
    """One workload's reconstruction outcome, picklable across processes."""

    workload: str
    success: bool = False
    verified: bool = False
    occurrences: int = 0
    unrelated_occurrences: int = 0
    wall_seconds: float = 0.0
    symex_modelled_seconds: float = 0.0
    recorded_bytes: int = 0
    solver_cache: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    #: pid of the pool process that ran this workload (load balance)
    worker: int = 0
    #: this worker's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (only when events were requested)
    events: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "success": self.success,
            "verified": self.verified,
            "occurrences": self.occurrences,
            "unrelated_occurrences": self.unrelated_occurrences,
            "wall_seconds": round(self.wall_seconds, 4),
            "symex_modelled_seconds":
                round(self.symex_modelled_seconds, 4),
            "recorded_bytes": self.recorded_bytes,
            "solver_cache": self.solver_cache,
            "error": self.error,
            "worker": self.worker,
        }


@dataclass
class BatchResult:
    """The merged outcome of one batch run."""

    items: List[BatchItem]
    parallelism: int
    wall_seconds: float
    #: all workers' metric snapshots folded into one
    telemetry: Dict = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        return sum(1 for i in self.items if i.success)

    @property
    def solver_cache_stats(self) -> Dict[str, float]:
        counters = self.telemetry.get("counters", {})
        hits = counters.get("solver.cache.hits", 0)
        misses = counters.get("solver.cache.misses", 0)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "model_probe_hits":
                counters.get("solver.cache.model_probe_hits", 0),
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

    @property
    def worker_load(self) -> Dict[str, Dict[str, float]]:
        """Per-worker load balance: tasks run and wall-time, keyed by pid."""
        load: Dict[str, Dict[str, float]] = {}
        for item in self.items:
            entry = load.setdefault(str(item.worker),
                                    {"tasks": 0, "wall_seconds": 0.0})
            entry["tasks"] += 1
            entry["wall_seconds"] = round(
                entry["wall_seconds"] + item.wall_seconds, 4)
        return load

    def to_dict(self) -> Dict:
        return {
            "parallelism": self.parallelism,
            "wall_seconds": round(self.wall_seconds, 4),
            "succeeded": self.succeeded,
            "total": len(self.items),
            "solver_cache": self.solver_cache_stats,
            "worker_load": self.worker_load,
            "items": [item.to_dict() for item in self.items],
        }


def _reconstruct_one(name: str, capture_events: bool,
                     cache_dir: Optional[str] = None) -> BatchItem:
    """Worker body: one workload under a private telemetry registry.

    Runs in a pool process (or inline for ``parallel=1``); must only
    return picklable data, so the report's module/test-case objects are
    reduced to scalars here rather than shipped back.
    """
    sink = telemetry.MemorySink() if capture_events else None
    registry = telemetry.Telemetry(sink)
    item = BatchItem(workload=name, worker=os.getpid())
    started = time.perf_counter()
    with telemetry.scoped(registry):
        try:
            workload = get_workload(name)
            reconstructor = ExecutionReconstructor(
                workload.fresh_module(),
                work_limit=workload.work_limit,
                max_occurrences=workload.max_occurrences,
                cache_dir=cache_dir)
            report = reconstructor.reconstruct(
                ProductionSite(workload.failing_env))
            item.success = report.success
            item.verified = report.verified
            item.occurrences = report.occurrences
            item.unrelated_occurrences = report.unrelated_occurrences
            item.symex_modelled_seconds = \
                report.total_symex_modelled_seconds
            item.recorded_bytes = report.total_recorded_bytes
        except Exception as exc:  # noqa: BLE001 — report, don't kill batch
            item.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
        if capture_events:
            registry.emit_snapshot()
    item.wall_seconds = time.perf_counter() - started
    item.telemetry = registry.snapshot()
    counters = item.telemetry.get("counters", {})
    hits = counters.get("solver.cache.hits", 0)
    misses = counters.get("solver.cache.misses", 0)
    item.solver_cache = {
        "hits": hits, "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
    }
    if sink is not None:
        item.events = sink.events
    return item


def run_batch(names: Optional[Sequence[str]] = None, *,
              parallel: int = 1,
              capture_events: bool = False,
              cache_dir: Optional[str] = None) -> BatchResult:
    """Reconstruct ``names`` (default: every workload), ``parallel``-wide.

    Results come back in input order regardless of completion order.  A
    workload that raises contributes a :class:`BatchItem` with ``error``
    set instead of aborting the batch.  ``cache_dir`` points every
    worker at one shared persistent solver cache.
    """
    names = list(names) if names is not None else workload_names()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    started = time.perf_counter()
    if parallel == 1 or len(names) <= 1:
        items = [_reconstruct_one(name, capture_events, cache_dir)
                 for name in names]
    else:
        workers = min(parallel, len(names))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            items = list(pool.map(_reconstruct_one, names,
                                  [capture_events] * len(names),
                                  [cache_dir] * len(names)))
    wall = time.perf_counter() - started
    merged = telemetry.merge_snapshots([item.telemetry for item in items])
    telemetry.count("parallel.batches")
    telemetry.count("parallel.workloads", len(items))
    return BatchResult(items=items, parallelism=parallel,
                       wall_seconds=wall, telemetry=merged)


def write_merged_jsonl(result: BatchResult,
                       path: Union[str, pathlib.Path]) -> int:
    """Write all workers' event streams as one combined JSONL log.

    Events keep their per-worker ``seq``/``ts`` and gain a ``workload``
    field; a final ``snapshot`` event carries the *merged* metrics so
    ``repro stats`` renders whole-batch counters.  Returns the number of
    lines written.
    """
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for item in result.items:
            for event in item.events:
                if event.get("type") == "snapshot":
                    continue      # superseded by the merged snapshot
                fh.write(json.dumps({**event, "workload": item.workload},
                                    default=str) + "\n")
                lines += 1
        fh.write(json.dumps({
            "type": "snapshot", "name": "telemetry.snapshot",
            "seq": lines + 1, "ts": round(result.wall_seconds, 6),
            "metrics": result.telemetry,
        }) + "\n")
    return lines + 1


# ----------------------------------------------------------------------
# sharded gap recovery (intra-reconstruction parallelism)

@dataclass
class GapShardOutcome:
    """One shard's reduced search outcome, picklable across processes.

    Deliberately term-free: only the decision bits travel back; the
    parent replays them in-process to rebuild the full result.
    """

    prefix: List[bool]
    status: str = "diverged"
    gap_bits: List[bool] = field(default_factory=list)
    gap_attempts: int = 0
    divergence_reason: Optional[str] = None
    diverged_chunk: Optional[int] = None
    worker: int = 0
    wall_seconds: float = 0.0
    #: this shard's full metric snapshot
    telemetry: Dict = field(default_factory=dict)


#: per-process shard state, shipped once via the pool initializer so the
#: module/trace are not re-pickled for every prefix task
_SHARD_STATE: Dict = {}


def _gap_shard_init(module, trace, failure, max_attempts,
                    engine_kwargs, cache_dir) -> None:
    _SHARD_STATE.update(module=module, trace=trace, failure=failure,
                        max_attempts=max_attempts,
                        engine_kwargs=engine_kwargs, cache_dir=cache_dir)


def _gap_shard_run(prefix: List[bool]) -> GapShardOutcome:
    """Worker body: search one prefix subspace under private state.

    Fresh term scope, telemetry registry, and in-memory solver cache per
    shard; the persistent tier (when ``cache_dir`` is set) is the only
    shared state, so shards warm-start each other's common-prefix
    queries through the disk file.
    """
    state = _SHARD_STATE
    registry = telemetry.Telemetry()
    outcome = GapShardOutcome(prefix=list(prefix), worker=os.getpid())
    started = time.perf_counter()
    cache_dir = state["cache_dir"]
    cache = SolverCache(
        persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    with telemetry.scoped(registry), T.term_scope():
        result = _search_gap_decisions(
            state["module"], state["trace"], state["failure"],
            state["max_attempts"], cache, dict(state["engine_kwargs"]),
            initial_decisions=list(prefix), locked_prefix=len(prefix))
    outcome.status = result.status
    outcome.gap_bits = list(result.gap_bits)
    outcome.gap_attempts = result.gap_attempts
    outcome.divergence_reason = result.divergence_reason
    outcome.diverged_chunk = result.diverged_chunk
    outcome.wall_seconds = time.perf_counter() - started
    outcome.telemetry = registry.snapshot()
    return outcome


def _shard_prefixes(trace, shards: int) -> List[List[bool]]:
    """Decision-vector prefixes partitioning the gap space, in serial
    DFS order (True before False at every position), so scanning shard
    outcomes in task order finds the same first solution the serial
    search would."""
    gaps = gap_count(trace)
    depth = min(gaps, max(1, (shards - 1).bit_length() + 2),
                MAX_SHARD_DEPTH)
    if depth <= 0:
        return []
    return [list(bits) for bits in product((True, False), repeat=depth)]


def shard_gap_search(module, trace, failure, *, shards: int,
                     max_attempts: int, solver_cache=None,
                     cache_dir: Optional[str] = None,
                     **engine_kwargs):
    """Gap-recovery search fanned out over ``shards`` worker processes.

    The serial DFS's leaf space is partitioned by depth-k decision
    prefixes (2^k tasks, k chosen from ``shards`` and the trace's gap
    count); each worker explores its subspace with the same backtracking
    search, confined by a locked prefix.  The winning outcome is the
    first non-diverged one in serial DFS order — identical to what the
    serial search returns — and the parent replays its decision vector
    once, in-process and against ``solver_cache``, to materialize the
    full :class:`~repro.symex.result.SymexResult`.

    Worker telemetry snapshots are merged via
    :func:`repro.telemetry.merge_snapshots` and their counters folded
    into the calling registry (histogram aggregates stay per-shard).
    """
    from .symex.gaps import replay_with_gap_recovery

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if solver_cache is None:
        solver_cache = SolverCache(
            persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    prefixes = _shard_prefixes(trace, shards)
    if shards == 1 or not prefixes:
        # no gaps to split on (or nothing to parallelize): serial path
        return replay_with_gap_recovery(module, trace, failure,
                                        max_attempts=max_attempts,
                                        solver_cache=solver_cache,
                                        **engine_kwargs)
    tel = telemetry.get()
    outcomes: List[GapShardOutcome] = []
    winner: Optional[GapShardOutcome] = None
    with tel.span("symex.gap_shard_search", shards=shards,
                  tasks=len(prefixes)):
        with ProcessPoolExecutor(
                max_workers=min(shards, len(prefixes)),
                initializer=_gap_shard_init,
                initargs=(module, trace, failure, max_attempts,
                          engine_kwargs, cache_dir)) as pool:
            futures = [pool.submit(_gap_shard_run, prefix)
                       for prefix in prefixes]
            for future in futures:  # serial DFS order
                if winner is not None:
                    future.cancel()  # queued tasks only; running finish
                    continue
                outcomes.append(future.result())
                if outcomes[-1].status != "diverged":
                    winner = outcomes[-1]
    merged = telemetry.merge_snapshots([o.telemetry for o in outcomes])
    for name, value in merged.get("counters", {}).items():
        if value:
            tel.count(name, value)
    tel.count("parallel.gap_shards", len(outcomes))
    total_attempts = sum(o.gap_attempts for o in outcomes)
    chosen = winner if winner is not None else outcomes[-1]
    # replay the chosen decision vector in-process: full result (terms,
    # constraints, model) without shipping terms across processes
    with T.term_scope(reuse_active=True):
        engine = ShepherdedSymex(module, trace, failure,
                                 gap_decisions=list(chosen.gap_bits),
                                 solver_cache=solver_cache,
                                 **engine_kwargs)
        result = engine.run()
    result.gap_attempts = total_attempts
    if result.status != "diverged":
        telemetry.count("symex.gap_recoveries")
        tel.histogram("symex.gap_attempts").record(total_attempts)
        logger.debug("sharded gap recovery converged after %d replays "
                     "across %d shard tasks", total_attempts,
                     len(outcomes))
    else:
        telemetry.count("symex.gap_replays")
        result.divergence_reason += \
            f" (after {total_attempts} gap assignments)"
    return result
