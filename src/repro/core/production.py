"""The simulated production deployment where a failure keeps reoccurring.

ER's iterative algorithm (§3.3.4) assumes the failure reoccurs in a
large-scale deployment; each occurrence runs whatever program version ER
last shipped (possibly instrumented with more ``ptwrite``s) and produces
a fresh trace.  :class:`ProductionSite` packages that: an environment
factory (occurrences may differ subtly — different identifiers, clock
values, noise), the PT ring-buffer configuration, and the run loop.

Crucially, the analysis side of ER never sees the environment's secret
inputs — only the shipped trace and failure signature, like a real
deployment.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .. import telemetry
from ..errors import ReconstructionError, TraceTruncatedError
from ..interp.env import Environment
from ..interp.failures import FailureInfo
from ..interp.interpreter import Interpreter, RunResult
from ..ir.module import Module
from ..trace.decoder import DecodedTrace, decode
from ..trace.encoder import PTEncoder
from ..trace.ringbuffer import DEFAULT_CAPACITY, RingBuffer

EnvFactory = Callable[[int], Environment]

logger = logging.getLogger(__name__)


@dataclass
class Occurrence:
    """One production failure occurrence shipped to the analysis engine."""

    index: int
    failure: FailureInfo
    trace: DecodedTrace
    trace_bytes: int
    run: RunResult  # available to evaluation harnesses, not to ER's core


class DeferredOccurrence:
    """Handle to a production run executing on a background thread.

    The pipelined reconstruction loop starts the wait for the next
    failure reoccurrence, then does speculative pre-solving while
    :meth:`poll` returns ``None``.  The thread runs the *same*
    :meth:`ProductionSite.run_once` body against the process-global
    telemetry registry (span stacks are thread-local, so concurrent
    production spans cannot corrupt the analysis side's nesting), which
    keeps production counters and spans identical to the sequential
    path.  Exceptions are captured and re-raised on the consuming
    thread at :meth:`poll`/:meth:`wait` time.
    """

    def __init__(self, site: "ProductionSite", module: Module):
        self._result: Optional[Occurrence] = None
        self._error: Optional[Exception] = None
        self._delivered = False
        self._thread = threading.Thread(
            target=self._run, args=(site, module),
            name="repro-production", daemon=True)
        self._thread.start()

    def _run(self, site: "ProductionSite", module: Module) -> None:
        # Exception only: KeyboardInterrupt/SystemExit on the daemon
        # thread must propagate (interpreter shutdown), not be stashed
        # and re-raised later at an arbitrary poll() call site
        try:
            self._result = site.run_once(module)
        except Exception as exc:  # noqa: BLE001 — re-raised on poll
            self._error = exc

    def done(self) -> bool:
        return not self._thread.is_alive()

    def unraised_error(self) -> Optional[Exception]:
        """The captured run exception, if it finished with one that no
        ``poll``/``wait`` caller has consumed yet."""
        if self._delivered or self._thread.is_alive():
            return None
        return self._error

    def poll(self) -> Optional[Occurrence]:
        """The occurrence if the production run has finished, else
        ``None`` (non-blocking); re-raises a failed run's exception."""
        if self._thread.is_alive():
            return None
        return self._finish()

    def wait(self) -> Occurrence:
        """Block until the production run finishes (the pipelined
        loop's final fallback once speculation work runs dry)."""
        self._thread.join()
        return self._finish()

    def _finish(self) -> Occurrence:
        self._thread.join()
        self._delivered = True
        if self._error is not None:
            raise self._error
        if self._result is None:
            # the thread died without setting either field — a
            # BaseException (interpreter shutdown, interrupt) tore it
            # down; there is no occurrence to deliver
            raise ReconstructionError(
                "deferred production run terminated without a result")
        return self._result


class ProductionSite:
    """Runs the deployed module until the monitored failure occurs."""

    def __init__(self, env_factory: EnvFactory, *,
                 ring_capacity: int = DEFAULT_CAPACITY,
                 max_steps: int = 20_000_000,
                 max_attempts_per_occurrence: int = 50,
                 auto_grow_buffer: bool = True,
                 trace_after: int = 0,
                 mapping_loss: float = 0.0,
                 per_cpu_buffers: bool = False,
                 reoccurrence_delay: float = 0.0):
        self.env_factory = env_factory
        self.ring_capacity = ring_capacity
        self.max_steps = max_steps
        self.max_attempts = max_attempts_per_occurrence
        #: when the ring buffer wraps (trace longer than the buffer),
        #: double its capacity and wait for the next occurrence — the
        #: operational analog of the paper sizing its 64 MB buffer to
        #: the largest evaluated trace (§4)
        self.auto_grow_buffer = auto_grow_buffer
        #: §3.1: operators may enable tracing only after the failure has
        #: been seen this many times (zero-cost monitoring before that)
        self.trace_after = trace_after
        #: §4: fraction of TNT bits lost to control-flow mapping (the
        #: paper measures 8.5 %); lost bits become GapEvents
        self.mapping_loss = mapping_loss
        #: real PT writes one buffer per CPU; merging them by coarse
        #: timestamp loses the order of equal-timestamp chunks (§3.4)
        self.per_cpu_buffers = per_cpu_buffers
        #: simulated wall-clock seconds until the failure reoccurs (§3.3:
        #: real deployments take minutes-to-hours between occurrences;
        #: the pipelined loop overlaps this wait with speculative
        #: pre-solving).  Affects timing only, never outcomes.
        self.reoccurrence_delay = reoccurrence_delay
        self._occurrence = 0
        self._untraced_failures = 0
        self._deferred: Optional[DeferredOccurrence] = None
        #: ring-buffer wraps observed and capacity doublings performed
        self.ring_wraps = 0
        self.auto_grows = 0

    def start(self, module: Module) -> DeferredOccurrence:
        """Begin waiting for the next occurrence without blocking.

        Non-blocking counterpart of :meth:`run_once` for the pipelined
        loop: the production wait runs on a background thread while the
        caller speculates.  Only one deferred run may be active at a
        time — ``run_once`` mutates per-site state (occurrence index,
        ring capacity) that must not race.
        """
        if self._deferred is not None:
            if not self._deferred.done():
                raise ReconstructionError(
                    "a deferred production run is already active")
            stale = self._deferred.unraised_error()
            if stale is not None:
                # the previous run finished with an error nobody
                # polled; silently replacing the handle would discard
                # it — surface the failure before starting a new run
                logger.error("previous deferred production run failed "
                             "unobserved: %s", stale)
                self._deferred = None
                raise stale
        self._deferred = DeferredOccurrence(self, module)
        return self._deferred

    def run_once(self, module: Module) -> Occurrence:
        """Run the deployed module until it fails; ship the trace."""
        tel = telemetry.get()
        if self.reoccurrence_delay > 0:
            time.sleep(self.reoccurrence_delay)
        for _ in range(self.max_attempts):
            self._occurrence += 1
            env = self.env_factory(self._occurrence)
            tracing = self._untraced_failures >= self.trace_after
            encoder = PTEncoder(RingBuffer(self.ring_capacity)) \
                if tracing else None
            with tel.span("production.attempt",
                          occurrence=self._occurrence, tracing=tracing):
                result = Interpreter(module, env, tracer=encoder,
                                     max_steps=self.max_steps).run()
            tel.count("production.runs")
            if result.failure is None:
                tel.count("production.benign_runs")
                continue  # benign request; wait for the next one
            tel.count("production.failures")
            if not tracing:
                # seen, counted, but not yet traced (§3.1 deferred mode)
                self._untraced_failures += 1
                tel.count("production.untraced_failures")
                continue
            tel.count("production.trace_bytes", encoder.bytes_emitted)
            try:
                trace = decode(encoder.buffer)
            except TraceTruncatedError:
                self.ring_wraps += 1
                tel.count("production.ring_wraps")
                tel.event("production.ring_wrap",
                          occurrence=self._occurrence,
                          capacity=self.ring_capacity,
                          trace_bytes=encoder.bytes_emitted)
                if not self.auto_grow_buffer:
                    raise ReconstructionError(
                        f"trace ({encoder.bytes_emitted} bytes) overflowed "
                        f"the {self.ring_capacity}-byte ring buffer")
                while self.ring_capacity < encoder.bytes_emitted:
                    self.ring_capacity *= 2
                    self.auto_grows += 1
                    tel.count("production.auto_grows")
                tel.gauge("production.ring_capacity").set(self.ring_capacity)
                logger.info(
                    "occurrence %d: ring buffer wrapped (%d bytes); "
                    "grew capacity to %d and re-arming",
                    self._occurrence, encoder.bytes_emitted,
                    self.ring_capacity)
                continue  # re-trace at the next occurrence
            if self.per_cpu_buffers:
                from ..trace.merge import merge_trace_by_timestamp

                trace = merge_trace_by_timestamp(trace)
            if self.mapping_loss > 0.0:
                from ..trace.degrade import degrade_trace

                trace = degrade_trace(trace, loss=self.mapping_loss,
                                      seed=self._occurrence)
            logger.info(
                "occurrence %d: %s after %d instrs (%d trace bytes)",
                self._occurrence, result.failure, result.instr_count,
                encoder.bytes_emitted)
            return Occurrence(index=self._occurrence,
                              failure=result.failure,
                              trace=trace,
                              trace_bytes=encoder.bytes_emitted,
                              run=result)
        raise ReconstructionError(
            f"failure did not reoccur in {self.max_attempts} runs")

    @property
    def occurrences_so_far(self) -> int:
        return self._occurrence
