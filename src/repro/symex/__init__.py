"""Shepherded symbolic execution over decoded PT traces."""

from .engine import ShepherdedSymex, SymFrame, SymThread
from .environment import SymbolicEnvironment
from .gaps import replay_with_gap_recovery
from .memory import SymMemory, SymObject
from .ordering import (ambiguous_groups, candidate_orders,
                       replay_with_order_recovery)
from .result import StallInfo, SymexResult, SymexStats

__all__ = [
    "ShepherdedSymex",
    "SymFrame",
    "SymThread",
    "SymbolicEnvironment",
    "SymMemory",
    "SymObject",
    "replay_with_gap_recovery",
    "ambiguous_groups",
    "candidate_orders",
    "replay_with_order_recovery",
    "StallInfo",
    "SymexResult",
    "SymexStats",
]
