"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    The Table-1 workload registry.
``reproduce WORKLOAD``
    Run the full iterative reconstruction for one workload and print
    the report (occurrences, recorded values, generated inputs).
``run FILE.eir``
    Execute a textual-IR program against streams given on the command
    line (``--stream name=hex`` or ``name=@path``).
``trace FILE.eir``
    Execute under the PT tracer and dump the decoded trace.
``report``
    Regenerate every evaluation table/figure into one markdown file.
``bench``
    Batch-reconstruct workloads serially and with a process pool;
    report the speedup and solver-cache hit rates (``repro bench
    --parallel 4 -o BENCH_parallel.json``).
``cache stats|compact|merge|verify``
    Maintain a persistent solver-cache store: show its segment layout
    and droppable-entry counts, seal + compact it in place (``repro
    cache compact --cache-dir DIR``), union two machines' stores
    (``repro cache merge A B -o OUT``), or check manifest/segment
    consistency (``verify`` exits non-zero on a corrupt or
    inconsistent manifest, zero with warnings for tolerated states
    like torn tails and orphan files).
``stats TELEMETRY.jsonl``
    Render the per-iteration cost breakdown of a recorded run —
    including the coordination-overhead attribution table for parallel
    runs; ``--openmetrics`` emits the final snapshot in the
    Prometheus/OpenMetrics text format instead.
``trace-export TELEMETRY.jsonl -o trace.json``
    Convert a recorded (possibly merged) event log into Chrome/Perfetto
    trace-event JSON, one track per worker process.

Diagnostics (every command): ``-v``/``-vv`` or ``--log-level`` turn on
logging to stderr, ``--telemetry OUT.jsonl`` streams structured spans,
events, and a final metric snapshot to a JSONL file, ``--trace-out
TRACE.json`` writes the same stream as a Perfetto-openable trace, and
``--json`` (where offered) switches the output to machine-readable
JSON.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import pathlib
import sys
from typing import Dict, List, Optional

from . import telemetry
from .core import ExecutionReconstructor, ProductionSite
from .errors import ReproError
from .evaluation.formatting import render_table
from .interp.env import Environment
from .interp.interpreter import Interpreter
from .ir import parse_module, verify_module
from .trace.decoder import decode
from .trace.encoder import PTEncoder
from .trace.inspect import format_trace
from .trace.ringbuffer import RingBuffer
from .workloads import all_workloads, get_workload

logger = logging.getLogger(__name__)


def _parse_streams(pairs: List[str]) -> Dict[str, bytes]:
    streams: Dict[str, bytes] = {}
    for pair in pairs or ():
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"bad --stream {pair!r}: want name=hex or "
                             "name=@file")
        if value.startswith("@"):
            streams[name] = pathlib.Path(value[1:]).read_bytes()
        elif value.startswith("text:"):
            streams[name] = value[len("text:"):].encode() + b"\x00"
        else:
            streams[name] = bytes.fromhex(value)
    return streams


def _load_module(path: str):
    text = pathlib.Path(path).read_text()
    module = parse_module(text)
    verify_module(module)
    return module


# ----------------------------------------------------------------------
# diagnostics wiring

def _setup_logging(args) -> None:
    """Configure the ``repro`` root logger from -v/-vv/--log-level.

    Only the CLI attaches handlers (library code never calls
    ``basicConfig``); rerunning ``main`` replaces the handler instead of
    stacking duplicates.
    """
    verbosity = getattr(args, "verbose", 0)
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    explicit = getattr(args, "log_level", None)
    if explicit:
        level = getattr(logging, explicit.upper())
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)-7s %(name)s: %(message)s"))
    handler._repro_cli = True
    root.addHandler(handler)
    root.setLevel(level)


@contextlib.contextmanager
def _telemetry_scope(args):
    """Install a fresh registry for one command invocation.

    ``--telemetry`` streams events to a JSONL sink; ``--trace-out``
    additionally (or alone) buffers them in memory and renders the
    buffer as Chrome/Perfetto trace-event JSON on the way out.  Both at
    once tee into the two sinks.  The final snapshot is emitted before
    either file is finalized.
    """
    path = getattr(args, "telemetry", None)
    trace_out = getattr(args, "trace_out", None)
    if not path and not trace_out:
        yield telemetry.get()
        return
    buffer = telemetry.MemorySink() if trace_out else None
    sinks: List[telemetry.Sink] = []
    if path:
        sinks.append(telemetry.JsonlSink(path))
    if buffer is not None:
        sinks.append(buffer)
    sink = sinks[0] if len(sinks) == 1 else telemetry.TeeSink(*sinks)
    registry = telemetry.Telemetry(sink)
    with telemetry.scoped(registry):
        try:
            yield registry
        finally:
            registry.close()
            if path:
                logger.info("telemetry written to %s", path)
            if buffer is not None:
                records = telemetry.write_trace(buffer.events, trace_out)
                logger.info("trace written to %s (%d records)",
                            trace_out, records)


# ----------------------------------------------------------------------
# commands

def cmd_list(args) -> int:
    rows = []
    for workload in all_workloads():
        rows.append([workload.name, workload.app, workload.bug_type,
                     "Y" if workload.multithreaded else "N",
                     workload.paper_occurrences, workload.work_limit])
    print(render_table(
        ["name", "application", "bug type", "MT", "paper #Occur",
         "work limit"], rows, "Table-1 workloads"))
    return 0


def cmd_reproduce(args) -> int:
    workload = get_workload(args.workload)
    module = workload.fresh_module()
    recovery = bool(args.trace_recovery or args.mapping_loss > 0
                    or args.shards > 1)
    reconstructor = ExecutionReconstructor(
        module,
        work_limit=args.work_limit or workload.work_limit,
        max_occurrences=args.max_occurrences or workload.max_occurrences,
        trace_recovery=recovery,
        shards=args.shards,
        cache_dir=args.cache_dir,
        steal=args.steal,
        portfolio=args.portfolio,
        incremental=args.incremental,
        pipeline=args.pipeline)
    site = ProductionSite(workload.failing_env,
                          trace_after=args.trace_after,
                          mapping_loss=args.mapping_loss,
                          per_cpu_buffers=args.mapping_loss > 0,
                          reoccurrence_delay=args.reoccurrence_delay)
    report = reconstructor.reconstruct(site)

    minimized = None
    if report.success and args.minimize:
        from .core.minimize import minimize_test_case

        minimized = minimize_test_case(workload.fresh_module(),
                                       report.test_case, report.failure)

    if args.json:
        data = report.to_dict(
            telemetry_snapshot=telemetry.get().snapshot())
        data["workload"] = args.workload
        if minimized is not None:
            data["minimized_streams"] = {
                name: stream.hex()
                for name, stream in sorted(minimized.streams.items())}
        print(json.dumps(data, indent=2))
        return 0 if report.success else 1

    print(report.summary())
    if minimized is not None:
        print("\nminimized test case:")
        for stream, data in sorted(minimized.streams.items()):
            print(f"  input {stream!r}: {data!r}")
    return 0 if report.success else 1


def cmd_run(args) -> int:
    module = _load_module(args.file)
    env = Environment(_parse_streams(args.stream), quantum=args.quantum)
    result = Interpreter(module, env).run()
    for stream, data in sorted(result.outputs.items()):
        print(f"output {stream!r}: {data.hex()} ({data!r})")
    print(f"{result.instr_count} instructions, "
          f"{result.branch_count} branches, "
          f"{result.thread_count} thread(s)")
    if result.failure is not None:
        print(f"FAILURE: {result.failure}")
        return 1
    print(f"exit value: {result.return_value}")
    return 0


def cmd_trace(args) -> int:
    module = _load_module(args.file)
    env = Environment(_parse_streams(args.stream), quantum=args.quantum)
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder).run()
    trace = decode(encoder.buffer)
    print(format_trace(trace, max_chunks=args.max_chunks))
    print(f"\ntrace bytes: {encoder.bytes_emitted}")
    if result.failure is not None:
        print(f"run failed: {result.failure}")
    return 0


def cmd_report(args) -> int:
    echo = (lambda m: print(m, file=sys.stderr))
    if args.json:
        from .evaluation.report import run_report_sections

        sections = run_report_sections(only=args.only, echo=echo,
                                       parallel=args.parallel)
        text = json.dumps({"sections": sections}, indent=2)
    else:
        from .evaluation.report import run_full_report

        text = run_full_report(only=args.only, echo=echo,
                               parallel=args.parallel)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _parse_pool_widths(spec: str) -> List[int]:
    """``--parallel`` accepts one width ("4") or a matrix ("1,2,4,8")."""
    try:
        widths = [int(part) for part in str(spec).split(",")
                  if part.strip()]
    except ValueError:
        raise SystemExit(f"bad --parallel {spec!r}: want N or N,M,...")
    if not widths or any(w < 1 for w in widths):
        raise SystemExit(f"bad --parallel {spec!r}: widths must be >= 1")
    return widths


def cmd_bench(args) -> int:
    from .parallel import run_batch, write_merged_jsonl

    names = args.workload or None
    widths = _parse_pool_widths(args.parallel)
    # a live trace needs the workers' event streams shipped back too
    capture = bool(args.merged_telemetry
                   or getattr(args, "trace_out", None))
    echo = (lambda m: print(m, file=sys.stderr))

    echo(f"serial baseline over "
         f"{len(names) if names else 'all'} workload(s) ...")
    serial = run_batch(names, parallel=1, capture_events=capture,
                       cache_dir=args.cache_dir,
                       portfolio=args.portfolio,
                       pipeline=args.pipeline,
                       reoccurrence_delay=args.reoccurrence_delay)
    result, speedup = serial, None
    matrix = []
    for width in widths:
        if width == 1:
            leg, leg_speedup = serial, None
        else:
            echo(f"parallel run, {width} worker(s) ...")
            leg = run_batch(names, parallel=width, capture_events=capture,
                            cache_dir=args.cache_dir,
                            portfolio=args.portfolio,
                            pipeline=args.pipeline,
                            reoccurrence_delay=args.reoccurrence_delay)
            leg_speedup = (serial.wall_seconds / leg.wall_seconds
                           if leg.wall_seconds > 0 else None)
            result, speedup = leg, leg_speedup
        matrix.append({
            "parallelism": width,
            "wall_seconds": round(leg.wall_seconds, 4),
            "speedup": (round(leg_speedup, 3)
                        if leg_speedup is not None else None),
            "worker_load": leg.worker_load,
        })

    import os

    final_width = widths[-1]
    data = {
        "workloads": [item.workload for item in result.items],
        "parallelism": final_width,
        "portfolio": args.portfolio,
        "pipeline": args.pipeline,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 4),
        "parallel_wall_seconds":
            round(result.wall_seconds, 4) if final_width > 1 else None,
        "speedup": round(speedup, 3) if speedup is not None else None,
        "solver_cache": result.solver_cache_stats,
        "matrix": matrix,
        "serial": serial.to_dict(),
        "parallel": result.to_dict() if final_width > 1 else None,
    }
    data["overhead"] = result.overhead
    if args.ab_incremental:
        from .parallel import measure_incremental_ab
        echo("incremental-solving A/B (scratch vs assumption stack) ...")
        ab = measure_incremental_ab()
        data["incremental_ab"] = ab
        echo(f"  solver work reduction "
             f"{ab['solver_work_reduction']:.1%} "
             f"(verdicts equal: {ab['verdicts_equal']}, "
             f"models equal: {ab['models_equal']})")
    if args.output:
        pathlib.Path(args.output).write_text(json.dumps(data, indent=2))
        echo(f"wrote {args.output}")
    if args.merged_telemetry:
        lines = write_merged_jsonl(result, args.merged_telemetry)
        echo(f"wrote {args.merged_telemetry} ({lines} events)")
    if getattr(args, "trace_out", None):
        # worker streams into the live registry, so the trace written
        # by _telemetry_scope shows one track per pool process
        telemetry.get().forward(event for item in result.items
                                for event in item.events)

    if args.json:
        print(json.dumps(data, indent=2))
    else:
        rows = [[item.workload,
                 "ok" if item.success else (item.error or "FAILED"),
                 item.occurrences, f"{item.wall_seconds:.2f}",
                 f"{item.solver_cache.get('hit_rate', 0.0):.1%}"]
                for item in result.items]
        print(render_table(
            ["workload", "outcome", "#occur", "wall s", "cache hits"],
            rows, "Batch reconstruction"))
        cache = result.solver_cache_stats
        line = (f"\n{result.succeeded}/{len(result.items)} reproduced; "
                f"serial {serial.wall_seconds:.2f} s")
        if speedup is not None:
            line += (f"; parallel({final_width}) "
                     f"{result.wall_seconds:.2f} s; "
                     f"speedup {speedup:.2f}x")
        line += (f"; solver cache {cache['hits']} hits / "
                 f"{cache['misses']} misses "
                 f"({cache['hit_rate']:.1%} incl. "
                 f"{cache['model_probe_hits']} probe, "
                 f"{cache['subsumption_hits']} subsumption, "
                 f"{cache['disk_hits']} disk hits)")
        print(line)
        if len(matrix) > 1:
            for leg in matrix:
                load = ", ".join(
                    f"pid {pid}: {entry['tasks']} tasks "
                    f"{entry['wall_seconds']:.2f} s"
                    for pid, entry in sorted(leg["worker_load"].items()))
                tail = (f"speedup {leg['speedup']:.2f}x"
                        if leg["speedup"] is not None else "baseline")
                print(f"  width {leg['parallelism']}: "
                      f"{leg['wall_seconds']:.2f} s ({tail}) — {load}")
    return 0 if result.succeeded == len(result.items) else 1


def cmd_serve(args) -> int:
    from .serve import FleetService

    echo = (lambda m: print(m, file=sys.stderr))
    service = FleetService(
        args.workload or None,
        instances=args.instances,
        parallel=args.parallel,
        pipeline=args.pipeline,
        reoccurrence_delay=args.reoccurrence_delay,
        work_limit=args.work_limit,
        max_occurrences=args.max_occurrences,
        cache_dir=args.cache_dir,
        wait_timeout=args.wait_timeout,
        progress=echo)
    summary = service.run()

    data = summary.to_dict()
    data["telemetry"] = telemetry.get().snapshot()
    if args.output:
        pathlib.Path(args.output).write_text(json.dumps(data, indent=2))
        echo(f"wrote {args.output}")
    if args.json:
        print(json.dumps(data, indent=2))
        return 0 if summary.succeeded else 1

    rows = []
    for bucket in summary.buckets:
        rows.append([
            bucket.workload,
            bucket.signature["digest"],
            "ok" if bucket.success else (bucket.error or bucket.status),
            bucket.occurrences_consumed,
            bucket.reports,
            bucket.deduplicated + bucket.stale,
            bucket.instances_reporting,
            f"{bucket.wait_seconds:.2f}",
            f"{bucket.wall_seconds:.2f}",
        ])
    print(render_table(
        ["workload", "signature", "outcome", "#consumed", "#reports",
         "#deduped", "#instances", "wait s", "wall s"],
        rows, f"Fleet serve ({summary.instances} instance(s)/workload)"))
    for name, error in sorted(summary.unserviced.items()):
        print(f"  {name}: unserviced — {error}")
    print(f"\n{sum(1 for b in summary.buckets if b.success)}"
          f"/{len(summary.buckets)} bucket(s) reproduced from "
          f"{summary.reports} report(s) across {summary.instance_runs} "
          f"instance run(s); wall {summary.wall_seconds:.2f} s")
    return 0 if summary.succeeded else 1


def _load_telemetry_log(path) -> Optional[List[Dict]]:
    """Read a telemetry JSONL log for ``stats``/``trace-export``.

    Returns ``None`` — after a one-line stderr message, never a
    traceback — on a missing/unreadable file, non-JSONL content, an
    empty log, or a log with no telemetry events in it; callers exit 2.
    """
    try:
        events = telemetry.read_jsonl(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc.strerror or exc}",
              file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not a telemetry JSONL log ({exc})",
              file=sys.stderr)
        return None
    if not events:
        print(f"error: {path} is empty — no telemetry events "
              "(was the run started with --telemetry?)", file=sys.stderr)
        return None
    if not any(e.get("type") in ("span", "event", "snapshot")
               for e in events):
        print(f"error: {path} contains no telemetry spans, events, or "
              "snapshots (not a --telemetry log?)", file=sys.stderr)
        return None
    return events


def cmd_cache(args) -> int:
    from .solver import segments

    if args.cache_command == "stats":
        stats = segments.store_stats(args.cache_dir)
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        print(f"solver cache at {stats['directory']} "
              f"(generation {stats['generation']})")
        rows = [(seg["name"],
                 "sealed" if seg["sealed"] else "active",
                 seg["bytes"], seg["entries"])
                for seg in stats["segments"]]
        print(render_table(["segment", "state", "bytes", "entries"],
                           rows, "Segments"))
        print(f"{stats['total_entries']} entries in "
              f"{stats['total_bytes']} bytes; compaction would drop "
              f"{stats['droppable_entries']} "
              f"({stats['droppable_duplicates']} duplicates, "
              f"{stats['droppable_subsumed']} subsumed infeasible, "
              f"{stats['droppable_tombstoned']} tombstoned)")
        return 0

    if args.cache_command == "compact":
        manifest, stats = segments.compact_store(args.cache_dir)
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2))
            return 0
        print(f"compacted {args.cache_dir}: {stats.entries_in} -> "
              f"{stats.entries_out} entries "
              f"({stats.bytes_in} -> {stats.bytes_out} bytes, "
              f"{stats.dropped_duplicates} duplicates, "
              f"{stats.dropped_subsumed} subsumed, "
              f"{stats.dropped_tombstoned} tombstoned dropped) "
              f"in {stats.seconds:.3f}s")
        return 0

    if args.cache_command == "merge":
        try:
            stats = segments.merge_caches(args.source_a, args.source_b,
                                          args.output,
                                          compact=args.compact)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        print(f"merged {args.source_a} ({stats['entries_a']} entries) "
              f"+ {args.source_b} ({stats['entries_b']} entries) -> "
              f"{args.output} ({stats['entries_out']} entries in "
              f"{stats['segments_out']} segment(s))")
        return 0

    # verify
    problems, warnings = segments.verify_store(args.cache_dir)
    if args.json:
        print(json.dumps({"problems": problems, "warnings": warnings,
                          "ok": not problems}, indent=2))
        return 1 if problems else 0
    for problem in problems:
        print(f"problem: {problem}")
    for warning in warnings:
        print(f"warning: {warning}")
    if problems:
        print(f"{args.cache_dir}: INCONSISTENT "
              f"({len(problems)} problem(s))")
        return 1
    print(f"{args.cache_dir}: ok ({len(warnings)} warning(s))")
    return 0


def cmd_stats(args) -> int:
    events = _load_telemetry_log(args.file)
    if events is None:
        return 2
    if args.openmetrics:
        metrics = telemetry.final_snapshot(events)
        if metrics is None:
            print(f"error: {args.file} has no metric snapshot to "
                  "export (log truncated before close?)",
                  file=sys.stderr)
            return 2
        print(telemetry.render_openmetrics(metrics), end="")
        return 0
    if args.json:
        print(json.dumps({
            "iterations": telemetry.iteration_rows(events),
            "snapshot": telemetry.final_snapshot(events),
            "overhead": telemetry.overhead_attribution(
                telemetry.final_snapshot(events)),
        }, indent=2))
        return 0
    print(telemetry.render_stats(events))
    return 0


def cmd_trace_export(args) -> int:
    events = _load_telemetry_log(args.file)
    if events is None:
        return 2
    records = telemetry.write_trace(events, args.output)
    print(f"wrote {args.output} ({records} trace records) — open at "
          "https://ui.perfetto.dev", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    diag = argparse.ArgumentParser(add_help=False)
    diag.add_argument("-v", "--verbose", action="count", default=0,
                      help="log to stderr (-v info, -vv debug)")
    diag.add_argument("--log-level", default=None,
                      choices=["debug", "info", "warning", "error"],
                      help="explicit log level (overrides -v)")
    diag.add_argument("--telemetry", metavar="OUT.jsonl", default=None,
                      help="stream spans/events/metrics to a JSONL file")
    diag.add_argument("--trace-out", metavar="TRACE.json", default=None,
                      help="write the run as Chrome/Perfetto trace-"
                           "event JSON (open at https://ui.perfetto.dev)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Execution Reconstruction (PLDI 2021) — reproduce "
                    "production failures from traces + reoccurrences")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-1 workloads",
                   parents=[diag])

    p = sub.add_parser("reproduce", parents=[diag],
                       help="reconstruct one workload's failure")
    p.add_argument("workload")
    p.add_argument("--work-limit", type=int, default=None,
                   help="solver budget per query (the 30s-timeout analog)")
    p.add_argument("--max-occurrences", type=int, default=None)
    p.add_argument("--trace-after", type=int, default=0,
                   help="enable tracing only after N untraced failures")
    p.add_argument("--minimize", action="store_true",
                   help="ddmin-shrink the generated test case")
    p.add_argument("--trace-recovery", action="store_true",
                   help="tolerate degraded traces (gap search during "
                        "replay)")
    p.add_argument("--mapping-loss", type=float, default=0.0,
                   metavar="FRACTION",
                   help="simulate lost TNT bits (implies "
                        "--trace-recovery; the paper measures 0.085)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="fan the gap-recovery search out over N worker "
                        "processes (implies --trace-recovery)")
    p.add_argument("--steal", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="work-stealing shard scheduler: idle workers "
                        "split a busy sibling's subspace (--no-steal "
                        "keeps the static 2^k prefix fan-out)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent cross-process solver cache "
                        "directory (warm-starts later runs)")
    p.add_argument("--portfolio", type=int, default=1, metavar="N",
                   help="race each solver query across N strategy "
                        "backends sharing one budget; the first "
                        "definitive answer wins (default: 1, reference "
                        "search only)")
    p.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="pipelined reconstruction loop: overlap the "
                        "production wait with speculative pre-solving "
                        "and gap-search pre-sharding (outcomes are "
                        "byte-identical to the sequential loop)")
    p.add_argument("--reoccurrence-delay", type=float, default=0.0,
                   metavar="SEC",
                   help="simulated wall-clock delay before each failure "
                        "reoccurrence (the wait the pipelined loop "
                        "overlaps; affects timing only)")
    p.add_argument("--incremental", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="assumption-stack incremental solving across "
                        "sibling gap attempts (--no-incremental "
                        "re-solves every attempt from scratch)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as machine-readable JSON")

    for name, fn_help in (("run", "execute a textual-IR (.eir) program"),
                          ("trace", "execute and dump the decoded PT "
                                    "trace")):
        p = sub.add_parser(name, help=fn_help, parents=[diag])
        p.add_argument("file")
        p.add_argument("--stream", action="append", default=[],
                       metavar="NAME=HEX|NAME=@FILE|NAME=text:STR",
                       help="environment stream contents")
        p.add_argument("--quantum", type=int, default=50)
        if name == "trace":
            p.add_argument("--max-chunks", type=int, default=50)

    p = sub.add_parser("report", parents=[diag],
                       help="regenerate every evaluation table/figure")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--only", action="append", default=None,
                   metavar="KEYWORD",
                   help="run only sections whose title contains KEYWORD")
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="reconstruct Table-1 workloads N at a time")
    p.add_argument("--json", action="store_true",
                   help="emit sections as machine-readable JSON")

    p = sub.add_parser("bench", parents=[diag],
                       help="batch-reconstruct workloads, serial vs "
                            "parallel, and report the speedup")
    p.add_argument("workload", nargs="*",
                   help="workload names (default: all)")
    p.add_argument("--parallel", default="1", metavar="N[,M,...]",
                   help="process-pool width(s); a comma list runs the "
                        "whole matrix (e.g. 1,2,4,8)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent solver cache shared by all workers "
                        "and runs")
    p.add_argument("--portfolio", type=int, default=1, metavar="N",
                   help="race each solver query across N strategy "
                        "backends (default: 1, reference search only)")
    p.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="pipelined reconstruction loop in every "
                        "workload run (outcome-identical; see "
                        "'repro reproduce --pipeline')")
    p.add_argument("--reoccurrence-delay", type=float, default=0.0,
                   metavar="SEC",
                   help="simulated delay before each failure "
                        "reoccurrence (the wait --pipeline overlaps)")
    p.add_argument("--ab-incremental", action="store_true",
                   help="also run the incremental-solving A/B (scratch "
                        "vs assumption stack on the sharded sqlite gap "
                        "search) and record it in the summary")
    p.add_argument("-o", "--output", default=None, metavar="BENCH.json",
                   help="write the machine-readable benchmark summary")
    p.add_argument("--merged-telemetry", default=None,
                   metavar="OUT.jsonl",
                   help="write all workers' events as one merged "
                        "JSONL log (readable by `repro stats`)")
    p.add_argument("--json", action="store_true",
                   help="print the benchmark summary as JSON")

    p = sub.add_parser("serve", parents=[diag],
                       help="fleet-mode reconstruction service: N "
                            "simulated instances per workload, failure "
                            "reports deduplicated by fault signature, "
                            "one reconstruction per bucket consuming "
                            "reoccurrences from any instance")
    p.add_argument("workload", nargs="*",
                   help="workload names (default: all)")
    p.add_argument("--instances", type=int, default=2, metavar="N",
                   help="simulated production instances per workload "
                        "(default: 2); the wait for each reoccurrence "
                        "ends at the first fleet-wide report")
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="bucket reconstructions to run concurrently "
                        "(default: 1)")
    p.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="pipelined per-bucket reconstruction loop "
                        "(outcome-identical; see 'repro reproduce "
                        "--pipeline')")
    p.add_argument("--reoccurrence-delay", type=float, default=0.0,
                   metavar="SEC",
                   help="simulated mean delay before each instance's "
                        "failure reoccurrence, jittered per instance "
                        "(affects timing only)")
    p.add_argument("--work-limit", type=int, default=None,
                   help="solver budget per query (the 30s-timeout "
                        "analog)")
    p.add_argument("--max-occurrences", type=int, default=None)
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent solver cache shared by all bucket "
                        "reconstructions")
    p.add_argument("--wait-timeout", type=float, default=600.0,
                   metavar="SEC",
                   help="give up when no instance reports a bucket's "
                        "signature for this long (default: 600)")
    p.add_argument("-o", "--output", default=None, metavar="SERVE.json",
                   help="write the machine-readable serve summary")
    p.add_argument("--json", action="store_true",
                   help="print the serve summary as JSON")

    p = sub.add_parser("cache",
                       help="maintain a persistent solver-cache store "
                            "(stats, compact, merge, verify)")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, leaf_help in (
            ("stats", "segment layout, sizes, droppable entries"),
            ("compact", "seal the active segment, then rewrite all "
                        "sealed segments dropping duplicates, subsumed "
                        "infeasible sets, and tombstoned entries"),
            ("verify", "check manifest/segment consistency; exits "
                       "non-zero on a corrupt or inconsistent "
                       "manifest")):
        leaf = cache_sub.add_parser(name, parents=[diag],
                                    help=leaf_help)
        leaf.add_argument("--cache-dir", required=True, metavar="DIR",
                          help="the store's directory (the same value "
                               "passed to reproduce/bench/serve)")
        leaf.add_argument("--json", action="store_true",
                          help="machine-readable JSON output")
    leaf = cache_sub.add_parser(
        "merge", parents=[diag],
        help="union two machines' stores into a fresh one "
             "(last-writer-wins on conflicting value enumerations: "
             "the second source wins)")
    leaf.add_argument("source_a", metavar="CACHE_A",
                      help="first source store directory")
    leaf.add_argument("source_b", metavar="CACHE_B",
                      help="second source store directory (wins "
                           "conflicts)")
    leaf.add_argument("-o", "--output", required=True, metavar="OUT",
                      help="destination directory (must not already "
                           "hold a store)")
    leaf.add_argument("--compact", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="compact the union after importing "
                           "(--no-compact keeps the raw union)")
    leaf.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")

    p = sub.add_parser("stats", parents=[diag],
                       help="per-iteration cost breakdown from a "
                            "telemetry JSONL log")
    p.add_argument("file", metavar="TELEMETRY.jsonl")
    p.add_argument("--json", action="store_true",
                   help="emit the breakdown as machine-readable JSON")
    p.add_argument("--openmetrics", action="store_true",
                   help="emit the final metric snapshot in the "
                        "Prometheus/OpenMetrics text format")

    p = sub.add_parser("trace-export", parents=[diag],
                       help="convert a telemetry JSONL log to Chrome/"
                            "Perfetto trace-event JSON")
    p.add_argument("file", metavar="TELEMETRY.jsonl")
    p.add_argument("-o", "--output", required=True,
                   metavar="TRACE.json",
                   help="trace-event JSON output path")

    return parser


COMMANDS = {
    "list": cmd_list,
    "reproduce": cmd_reproduce,
    "run": cmd_run,
    "trace": cmd_trace,
    "report": cmd_report,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "cache": cmd_cache,
    "stats": cmd_stats,
    "trace-export": cmd_trace_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args)
    try:
        with _telemetry_scope(args):
            return COMMANDS[args.command](args)
    except (ReproError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
