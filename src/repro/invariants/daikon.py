"""Daikon-lite: likely program invariants from observed executions.

Samples variable values at function entries and returns, and infers the
classic Daikon unary/binary invariant templates over them:

* ``x == c`` (constant), ``x in {a, b, c}`` (one-of small sets),
  ``lo <= x <= hi`` (range), ``x != 0`` (non-zero),
  ``x ≡ r (mod m)`` (modulus)
* ``x == y``, ``x <= y``, ``x - y == c`` over same-scope pairs

An invariant is *likely* when it held on every passing sample.  MIMIC
(§5.4) feeds a failing execution through the same sampler and reports the
violated invariants as candidate root causes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..interp.env import Environment
from ..interp.interpreter import Interpreter, RunResult
from ..ir import instructions as ins
from ..ir.module import Module
from ..ir.types import to_signed

RETURN_VAR = "return"


@dataclass(frozen=True)
class Invariant:
    """One likely invariant at a program point (function scope)."""

    func: str
    kind: str  # const | oneof | range | nonzero | mod | eq | le | diff
    vars: Tuple[str, ...]
    params: Tuple[int, ...] = ()

    def describe(self) -> str:
        v = self.vars
        p = self.params
        if self.kind == "const":
            return f"{self.func}: {v[0]} == {p[0]}"
        if self.kind == "oneof":
            return f"{self.func}: {v[0]} in {{{', '.join(map(str, p))}}}"
        if self.kind == "mod":
            return f"{self.func}: {v[0]} % {p[0]} == {p[1]}"
        if self.kind == "range":
            return f"{self.func}: {p[0]} <= {v[0]} <= {p[1]}"
        if self.kind == "nonzero":
            return f"{self.func}: {v[0]} != 0"
        if self.kind == "eq":
            return f"{self.func}: {v[0]} == {v[1]}"
        if self.kind == "le":
            return f"{self.func}: {v[0]} <= {v[1]}"
        if self.kind == "diff":
            return f"{self.func}: {v[0]} - {v[1]} == {p[0]}"
        return f"{self.func}: ?"

    def holds(self, sample: Dict[str, int]) -> Optional[bool]:
        """True/False if checkable on this sample, None if vars missing."""
        values = []
        for name in self.vars:
            if name not in sample:
                return None
            values.append(to_signed(sample[name]))
        if self.kind == "const":
            return values[0] == self.params[0]
        if self.kind == "oneof":
            return values[0] in self.params
        if self.kind == "mod":
            return values[0] % self.params[0] == self.params[1]
        if self.kind == "range":
            return self.params[0] <= values[0] <= self.params[1]
        if self.kind == "nonzero":
            return values[0] != 0
        if self.kind == "eq":
            return values[0] == values[1]
        if self.kind == "le":
            return values[0] <= values[1]
        if self.kind == "diff":
            return values[0] - values[1] == self.params[0]
        return None


@dataclass
class Sample:
    """Variable values observed at one dynamic function entry/return."""

    func: str
    values: Dict[str, int]


class SampleCollector:
    """Hooks the interpreter to collect entry/return samples."""

    def __init__(self, module: Module):
        self.module = module
        self.samples: List[Sample] = []
        self._seen_frames = set()

    def run(self, env: Environment,
            max_steps: int = 5_000_000) -> RunResult:
        interp = Interpreter(self.module, env, on_step=self._on_step,
                             max_steps=max_steps)
        return interp.run()

    def _on_step(self, thread, point, instr):
        frame = thread.frame
        if id(frame) not in self._seen_frames:
            self._seen_frames.add(id(frame))
            values = {p: frame.regs[p] for p in frame.func.params
                      if p in frame.regs}
            if values:
                self.samples.append(Sample(frame.func.name, values))
        if isinstance(instr, ins.Ret) and instr.value is not None:
            value = (frame.regs.get(instr.value)
                     if isinstance(instr.value, str) else instr.value)
            if value is not None:
                record = {RETURN_VAR: value}
                record.update({p: frame.regs[p] for p in frame.func.params
                               if p in frame.regs})
                self.samples.append(Sample(frame.func.name + ":exit",
                                           record))


class InvariantMiner:
    """Fits the invariant templates over passing-run samples."""

    def __init__(self):
        self._stats: Dict[Tuple[str, str], Dict] = {}
        self._pairs: Dict[Tuple[str, str, str], Dict] = {}

    def add_samples(self, samples: List[Sample]) -> None:
        for sample in samples:
            names = sorted(sample.values)
            for name in names:
                value = to_signed(sample.values[name])
                stats = self._stats.setdefault((sample.func, name), {
                    "values": set(), "min": value, "max": value,
                    "nonzero": True, "count": 0, "mod": None})
                stats["count"] += 1
                if len(stats["values"]) <= 4:
                    stats["values"].add(value)
                if stats["mod"] is None:
                    stats["mod"] = ("seed", value)
                elif stats["mod"][0] == "seed":
                    gap = abs(value - stats["mod"][1])
                    if gap >= 2:
                        stats["mod"] = (gap, value % gap)
                    elif gap == 1:
                        stats["mod"] = (0, 0)  # consecutive: no modulus
                elif stats["mod"][0] not in (0,):
                    modulus, remainder = stats["mod"]
                    new_mod = math.gcd(modulus,
                                       abs(value - remainder)) \
                        if value % modulus != remainder else modulus
                    stats["mod"] = ((new_mod, remainder % new_mod)
                                    if new_mod >= 2 else (0, 0))
                stats["min"] = min(stats["min"], value)
                stats["max"] = max(stats["max"], value)
                if value == 0:
                    stats["nonzero"] = False
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    va = to_signed(sample.values[a])
                    vb = to_signed(sample.values[b])
                    pair = self._pairs.setdefault((sample.func, a, b), {
                        "eq": True, "le": True, "ge": True,
                        "diff": va - vb, "diff_const": True, "count": 0})
                    pair["count"] += 1
                    pair["eq"] = pair["eq"] and va == vb
                    pair["le"] = pair["le"] and va <= vb
                    pair["ge"] = pair["ge"] and va >= vb
                    pair["diff_const"] = (pair["diff_const"]
                                          and va - vb == pair["diff"])

    def invariants(self, min_samples: int = 2) -> List[Invariant]:
        out: List[Invariant] = []
        for (func, name), stats in sorted(self._stats.items()):
            if stats["count"] < min_samples:
                continue
            if len(stats["values"]) == 1:
                out.append(Invariant(func, "const", (name,),
                                     (next(iter(stats["values"])),)))
                continue
            if 1 < len(stats["values"]) <= 4:
                out.append(Invariant(func, "oneof", (name,),
                                     tuple(sorted(stats["values"]))))
            out.append(Invariant(func, "range", (name,),
                                 (stats["min"], stats["max"])))
            if stats["nonzero"]:
                out.append(Invariant(func, "nonzero", (name,)))
            mod = stats.get("mod")
            if mod and mod[0] not in ("seed", 0) and mod[0] >= 2:
                out.append(Invariant(func, "mod", (name,),
                                     (mod[0], mod[1])))
        for (func, a, b), pair in sorted(self._pairs.items()):
            if pair["count"] < min_samples:
                continue
            if pair["eq"]:
                out.append(Invariant(func, "eq", (a, b)))
            elif pair["diff_const"]:
                out.append(Invariant(func, "diff", (a, b), (pair["diff"],)))
            elif pair["le"]:
                out.append(Invariant(func, "le", (a, b)))
            elif pair["ge"]:
                out.append(Invariant(func, "le", (b, a)))
        return out


def check_invariants(invariants: List[Invariant],
                     samples: List[Sample]) -> List[Tuple[Invariant, Sample]]:
    """All (invariant, sample) violations, in execution order."""
    violations = []
    for sample in samples:
        for inv in invariants:
            if inv.func != sample.func:
                continue
            held = inv.holds(sample.values)
            if held is False:
                violations.append((inv, sample))
    return violations
