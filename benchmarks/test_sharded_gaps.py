"""Benchmark: sharded gap-recovery search vs the serial DFS.

Degrades a gap-heavy Table-1 trace (the paper's 8.5 % TNT loss), runs
the decision-vector search once serially and once over a worker pool,
and records the speedup plus the cold→warm persistent solver-cache hit
rates to ``benchmarks/out/BENCH_sharded_gaps.json`` — the artifact the
CI smoke job uploads next to ``BENCH_parallel.json``.  As with the
batch benchmark, the speedup assertion only arms on multi-core
machines; a single CPU records the run as informational.
"""

import json
import os
import time

import pytest

from repro.core import ProductionSite
from repro.parallel import run_batch
from repro.symex.gaps import replay_with_gap_recovery
from repro.trace.degrade import gap_count
from repro.workloads import get_workload

#: deepest decision-vector search among the Table-1 workloads at the
#: paper's loss rate — enough replays to amortize the pool start-up
WORKLOAD = "sqlite-7be932d"
MAPPING_LOSS = 0.085
SHARDS = 4


def test_sharded_gap_speedup(artifact_dir, tmp_path):
    workload = get_workload(WORKLOAD)
    module = workload.fresh_module()
    occurrence = ProductionSite(workload.failing_env,
                                mapping_loss=MAPPING_LOSS,
                                per_cpu_buffers=True).run_once(module)
    kwargs = dict(work_limit=workload.work_limit * 20)

    start = time.perf_counter()
    serial = replay_with_gap_recovery(module, occurrence.trace,
                                      occurrence.failure, **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = replay_with_gap_recovery(module, occurrence.trace,
                                       occurrence.failure, shards=SHARDS,
                                       **kwargs)
    sharded_s = time.perf_counter() - start

    # correctness before speed: identical outcome, bit for bit
    assert sharded.status == serial.status
    serial_model = serial.model.assignment if serial.model else None
    sharded_model = sharded.model.assignment if sharded.model else None
    assert sharded_model == serial_model
    speedup = serial_s / sharded_s if sharded_s else 0.0

    # cold→warm persistent cache: the second run must hit the disk tier
    cache_dir = tmp_path / "solver-cache"
    cache_dir.mkdir()
    cold = run_batch([WORKLOAD], parallel=1, cache_dir=str(cache_dir))
    warm = run_batch([WORKLOAD], parallel=1, cache_dir=str(cache_dir))
    assert cold.succeeded == warm.succeeded == 1
    assert warm.solver_cache_stats["hit_rate"] > \
        cold.solver_cache_stats["hit_rate"]

    data = {
        "workload": WORKLOAD,
        "mapping_loss": MAPPING_LOSS,
        "gap_count": gap_count(occurrence.trace),
        "gap_attempts": serial.gap_attempts,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial_s, 4),
        "sharded_wall_seconds": round(sharded_s, 4),
        "speedup": round(speedup, 3),
        "status": serial.status,
        "cold_cache": cold.solver_cache_stats,
        "warm_cache": warm.solver_cache_stats,
    }
    (artifact_dir / "BENCH_sharded_gaps.json").write_text(
        json.dumps(data, indent=2) + "\n")
    print(f"\nserial {serial_s:.2f}s, sharded({SHARDS}) {sharded_s:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} cpu(s); "
          f"cache hit rate {cold.solver_cache_stats['hit_rate']:.1%} cold "
          f"-> {warm.solver_cache_stats['hit_rate']:.1%} warm")

    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5, (
            f"expected >=1.5x on a multi-core host, got {speedup:.2f}x")
    else:
        pytest.skip(f"single CPU: speedup {speedup:.2f}x recorded, "
                    "not asserted")
