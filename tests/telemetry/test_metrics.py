"""Counter / Gauge / Histogram primitives."""

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add()
        c.add(41)
        assert c.value == 42

    def test_to_dict_is_the_value(self):
        c = Counter("x")
        c.add(7)
        assert c.to_dict() == 7


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("cap")
        g.set(64)
        g.set(128)
        assert g.value == 128


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("work")
        for v in (5, 1, 3):
            h.record(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1 and h.max == 5
        assert h.mean == pytest.approx(3.0)

    def test_percentiles_small_sample(self):
        h = Histogram("lat")
        for v in range(1, 101):        # 1..100
            h.record(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)

    def test_percentile_validates_range(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_empty_percentile_is_zero(self):
        assert Histogram("lat").percentile(50) == 0.0

    def test_sample_is_bounded_with_exact_count(self):
        h = Histogram("big", max_samples=64)
        n = 10_000
        for v in range(n):
            h.record(v)
        assert h.count == n                  # aggregates stay exact
        assert h.total == sum(range(n))
        assert h.sample_size < 64            # sample stays bounded
        # decimated sample still spans the distribution
        assert h.percentile(50) == pytest.approx(n / 2, rel=0.25)

    def test_min_max_survive_decimation(self):
        h = Histogram("big", max_samples=16)
        for v in range(1000):
            h.record(v)
        assert h.min == 0 and h.max == 999

    def test_rejects_tiny_sample_cap(self):
        with pytest.raises(ValueError):
            Histogram("x", max_samples=1)

    def test_to_dict_shape(self):
        h = Histogram("x")
        h.record(2.0)
        d = h.to_dict()
        assert set(d) == {"count", "sum", "min", "max", "mean",
                          "p50", "p90", "p99"}
        assert d["count"] == 1 and d["sum"] == 2.0
