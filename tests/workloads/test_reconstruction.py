"""End-to-end reconstruction of every Table-1 workload.

This is the repository's headline integration test: each of the 13 bugs
must be reproduced by the full iterative loop with a replay-verified
test case, within its configured occurrence budget.
"""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
IDS = [w.name for w in WORKLOADS]


def reconstruct(workload):
    er = ExecutionReconstructor(workload.fresh_module(),
                                work_limit=workload.work_limit,
                                max_occurrences=workload.max_occurrences)
    return er.reconstruct(ProductionSite(workload.failing_env))


@pytest.fixture(scope="module")
def reports():
    return {w.name: reconstruct(w) for w in WORKLOADS}


@pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
class TestReconstruction:
    def test_reproduced_and_verified(self, workload, reports):
        report = reports[workload.name]
        assert report.success and report.verified

    def test_occurrences_in_paper_ballpark(self, workload, reports):
        report = reports[workload.name]
        assert 1 <= report.occurrences <= 8

    def test_single_occurrence_bugs(self, workload, reports):
        """libpng and bash reproduce from one occurrence (paper: same)."""
        report = reports[workload.name]
        if workload.name in ("libpng-2004-0597", "bash-108885"):
            assert report.occurrences == 1

    def test_generated_input_replays_on_pristine_module(self, workload,
                                                        reports):
        """The test case must also fail on the *uninstrumented* program."""
        report = reports[workload.name]
        env = Environment(dict(report.test_case.streams),
                          quantum=report.test_case.quantum)
        result = Interpreter(workload.fresh_module(), env).run()
        assert result.failure is not None
        assert result.failure.kind == workload.expected_kind

    def test_iterations_recorded(self, workload, reports):
        report = reports[workload.name]
        assert len(report.iterations) == report.occurrences
        stalls = [i for i in report.iterations if i.status == "stalled"]
        for stall in stalls:
            assert stall.recorded_items


def test_mean_occurrences_near_paper(reports):
    mean = sum(r.occurrences for r in reports.values()) / len(reports)
    assert 1.5 <= mean <= 5.0  # paper: ~3.5


def test_exactly_two_single_occurrence(reports):
    singles = sum(1 for r in reports.values() if r.occurrences == 1)
    assert singles == 2  # paper: 2 (libpng, bash)
