"""Fleet-mode reconstruction service: ``repro serve``.

ER's wait for a failure reoccurrence (§3.3) is the dominant latency in
a single-site deployment.  A real operator runs a *fleet*: many
instances execute the same deployed version, so the expected wait for
the next occurrence shrinks roughly with fleet size.  This module
simulates that: ``N`` production instances per workload (each its own
:class:`~repro.core.production.ProductionSite`, running on the PR-8
:class:`~repro.core.production.DeferredOccurrence` machinery) stream
failure reports into a queue; a dispatcher deduplicates them by
canonical fault signature (:mod:`repro.core.signature`) into
*buckets*, and one :class:`~repro.core.reconstructor.ExecutionReconstructor`
per bucket consumes occurrences from **any** instance — the iteration's
wait ends at the first fleet-wide reoccurrence.

Determinism / byte-identity
---------------------------
Every instance owns a private occurrence counter and runs every
deployed version exactly once (deploys are broadcast per iteration and
processed FIFO), so each instance's site evolves exactly like the
single-site path: the occurrence any instance ships for iteration *i*
is byte-identical to the one ``repro reproduce`` would have seen.
Which instance "wins" the race therefore never changes the
reconstruction — only how long the bucket waited.  The simulated
reoccurrence delay is jittered per ``(instance, version)`` (timing
only, never outcomes) so the min-over-N wait genuinely shrinks as the
fleet grows — the effect ``BENCH_serve.json`` records.

Queue protocol
--------------
Instance threads put :class:`FailureReport`/:class:`InstanceError`
items on one queue; a single dispatcher thread assigns arrival
sequence numbers, routes reports to buckets by signature digest
(creating bucket + reconstruction job on first sight), and tracks
per-workload settlement.  Buckets consume the **earliest-arriving**
report per deployed version; later same-version reports count as
deduplicated, reports for already-consumed or closed versions as
stale.  Reports from *older* versions than the bucket has deployed are
stale by construction (each version is consumed at most once).
"""

from __future__ import annotations

import dataclasses
import logging
import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from . import telemetry
from .core.production import Occurrence, ProductionSite
from .core.reconstructor import ExecutionReconstructor
from .core.report import ReconstructionReport
from .core.signature import FaultSignature, canonical_signature
from .errors import ReconstructionError
from .ir.module import Module
from .solver import terms as T
from .telemetry.sinks import MemorySink
from .telemetry.stats import merge_snapshots
from .workloads.registry import get_workload, workload_names

logger = logging.getLogger(__name__)

__all__ = ["FleetService", "ServeSummary", "BucketSummary",
           "FailureReport", "jitter_factor"]

Progress = Callable[[str], None]


def jitter_factor(instance: int, version: int) -> float:
    """Deterministic reoccurrence-delay multiplier in ``[0.5, 1.5)``.

    Hash-derived so the "which instance reoccurs first" race is
    reproducible run-to-run, yet no instance is uniformly fastest: the
    min over a larger fleet is strictly smaller in expectation, which
    is the scalability effect the serve benchmark measures.
    """
    seed = zlib.crc32(f"jitter:{instance}:{version}".encode("ascii"))
    return 0.5 + (seed % 1000) / 1000.0


@dataclass
class FailureReport:
    """One instance's failure occurrence, as enqueued for dispatch."""

    instance: int            # per-workload instance id
    workload: str
    version: int             # deploy generation the instance ran
    signature: FaultSignature
    occurrence: Occurrence
    enqueued: float          # wall clock at ship time
    seq: int = 0             # arrival order, stamped by the dispatcher


@dataclass
class InstanceError:
    """An instance's production run raised instead of reporting."""

    instance: int
    workload: str
    version: int
    error: Exception


_STOP = object()


class FleetInstance:
    """One simulated production instance: a private site + worker thread.

    Deploys arrive on an inbox and are executed strictly in FIFO order
    (the version-lockstep that keeps per-instance occurrence counters —
    and therefore shipped traces — identical to the single-site path).
    Each run goes through ``ProductionSite.start()``/``wait()``, i.e.
    the PR-8 deferred machinery, and ships either a
    :class:`FailureReport` or an :class:`InstanceError`.
    """

    def __init__(self, instance_id: int, workload_name: str,
                 env_factory, outbox: "queue.Queue", *,
                 reoccurrence_delay: float,
                 registry: telemetry.Telemetry):
        self.id = instance_id
        self.workload = workload_name
        self.site = ProductionSite(env_factory)
        self.runs = 0
        self.registry = registry
        self._base_delay = reoccurrence_delay
        self._outbox = outbox
        self._inbox: "queue.Queue" = queue.Queue()
        self._stopping = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"repro-serve-{workload_name}-{instance_id}")

    def start(self) -> None:
        self._thread.start()

    def deploy(self, version: int, module: Module) -> None:
        self._inbox.put((version, module))

    def stop(self) -> None:
        """Ask the worker to drain: backlog deploys are skipped (nothing
        consumes them once the bucket has converged)."""
        self._stopping.set()
        self._inbox.put(_STOP)

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)

    def _loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                return
            if self._stopping.is_set():
                continue  # shutdown: skip queued deploys nobody awaits
            version, module = item
            self._run(version, module)

    def _run(self, version: int, module: Module) -> None:
        # jittered wait: timing only — the race winner varies with the
        # fleet size, the shipped occurrence never does
        self.site.reoccurrence_delay = \
            self._base_delay * jitter_factor(self.id, version)
        reg = self.registry
        with reg.span("serve.instance_run", instance=self.id,
                      workload=self.workload, version=version):
            try:
                occurrence = self.site.start(module).wait()
            except Exception as exc:  # noqa: BLE001 — shipped as a report
                reg.count("serve.instance_errors")
                logger.warning("instance %s/%d version %d failed: %s",
                               self.workload, self.id, version, exc)
                self._outbox.put(InstanceError(
                    instance=self.id, workload=self.workload,
                    version=version, error=exc))
                return
        self.runs += 1
        reg.count("serve.instance_runs")
        signature = canonical_signature(module, occurrence.failure)
        self._outbox.put(FailureReport(
            instance=self.id, workload=self.workload, version=version,
            signature=signature, occurrence=occurrence,
            enqueued=time.time()))


class SignatureBucket:
    """All reports for one canonical fault signature.

    Lifecycle: *created* on first report → one reconstruction job is
    scheduled → per deployed version, the job consumes the
    earliest-arriving report (``take``) while later same-version
    arrivals count as deduplicated → *closed* when the job finishes;
    reports landing afterwards count as stale.
    """

    def __init__(self, signature: FaultSignature, workload: str,
                 instance_count: int, deploy_times: Dict[int, float],
                 version_errors: Dict[int, List[str]],
                 take_timeout: float):
        self.signature = signature
        self.workload = workload
        self.status = "pending"     # pending → waiting → running → done|error
        self.result: Optional[ReconstructionReport] = None
        self.error: Optional[str] = None
        self.wall_seconds = 0.0
        # counters (all mutated under _cond)
        self.reports = 0
        self.deduplicated = 0
        self.stale = 0
        self.consumed = 0
        self.wait_seconds = 0.0
        self.instances_reporting: Set[int] = set()
        self._instance_count = instance_count
        self._deploy_times = deploy_times     # shared with _WorkloadState
        self._version_errors = version_errors  # shared with _WorkloadState
        self._take_timeout = take_timeout
        self._pending: Dict[int, List[FailureReport]] = {}
        self._consumed_versions: Set[int] = set()
        self._closed = False
        self._cond = threading.Condition()

    def offer(self, report: FailureReport) -> str:
        """Route one report in; returns its disposition for telemetry."""
        with self._cond:
            self.reports += 1
            self.instances_reporting.add(report.instance)
            if self._closed or report.version in self._consumed_versions:
                disposition = ("stale" if self._closed else "deduplicated")
                if disposition == "stale":
                    self.stale += 1
                else:
                    self.deduplicated += 1
                return disposition
            self._pending.setdefault(report.version, []).append(report)
            self._cond.notify_all()
            return "pending"

    def notify(self) -> None:
        """Wake a blocked ``take`` after a version-error was recorded."""
        with self._cond:
            self._cond.notify_all()

    def ready(self, version: int) -> bool:
        with self._cond:
            return bool(self._pending.get(version))

    def take(self, version: int, *, block: bool) -> Optional[FailureReport]:
        """The earliest-arriving report for ``version`` (deterministic:
        dispatcher arrival order, not thread-scheduling luck).

        Raises when every instance errored for this version, or when
        ``block`` and nothing arrives within the take timeout.
        """
        deadline = time.monotonic() + self._take_timeout
        with self._cond:
            while True:
                pending = self._pending.pop(version, None)
                if pending:
                    pending.sort(key=lambda r: r.seq)
                    report = pending[0]
                    self.deduplicated += len(pending) - 1
                    self._consumed_versions.add(version)
                    self.consumed += 1
                    deployed_at = self._deploy_times.get(version)
                    if deployed_at is not None:
                        self.wait_seconds += max(
                            report.enqueued - deployed_at, 0.0)
                    return report
                errors = self._version_errors.get(version, ())
                if len(errors) >= self._instance_count:
                    raise ReconstructionError(
                        f"all {self._instance_count} instances failed at "
                        f"version {version}: {errors[0]}")
                if not block:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ReconstructionError(
                        f"no instance reported signature "
                        f"{self.signature.digest} for version {version} "
                        f"within {self._take_timeout:.0f}s")
                self._cond.wait(min(remaining, 0.25))

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def summary(self) -> "BucketSummary":
        report = self.result
        streams: Dict[str, str] = {}
        if report is not None and report.test_case is not None:
            streams = {name: data.hex() for name, data
                       in sorted(report.test_case.streams.items())}
        return BucketSummary(
            signature=self.signature.to_dict(),
            workload=self.workload,
            status=self.status,
            success=bool(report.success) if report else False,
            verified=bool(report.verified) if report else False,
            iterations=len(report.iterations) if report else 0,
            occurrences_consumed=self.consumed,
            reports=self.reports,
            deduplicated=self.deduplicated,
            stale=self.stale,
            instances_reporting=len(self.instances_reporting),
            wait_seconds=round(self.wait_seconds, 6),
            wall_seconds=round(self.wall_seconds, 6),
            streams=streams,
            error=self.error)


class _FleetDeferred:
    """Deferred-occurrence facade over a bucket version — the object
    :meth:`ExecutionReconstructor._await_occurrence` polls, so the
    pipelined loop (speculative pre-solving during the wait) works
    unchanged against the fleet."""

    def __init__(self, bucket: SignatureBucket, version: int):
        self._bucket = bucket
        self._version = version
        self._occurrence: Optional[Occurrence] = None

    def done(self) -> bool:
        return (self._occurrence is not None
                or self._bucket.ready(self._version))

    def poll(self) -> Optional[Occurrence]:
        if self._occurrence is None:
            report = self._bucket.take(self._version, block=False)
            if report is None:
                return None
            self._occurrence = report.occurrence
        return self._occurrence

    def wait(self) -> Occurrence:
        if self._occurrence is None:
            report = self._bucket.take(self._version, block=True)
            self._occurrence = report.occurrence
        return self._occurrence


class _BucketSite:
    """Production-site facade handed to one bucket's reconstructor.

    ``start``/``run_once`` deploy the (possibly instrumented) module to
    every fleet instance of the workload and return a deferred that
    resolves to the first matching report from **any** instance.  The
    first await consumes the seed deployment (version 0, shipped by the
    service before the bucket existed) without redeploying.
    """

    def __init__(self, service: "FleetService", state: "_WorkloadState",
                 bucket: SignatureBucket):
        self._service = service
        self._state = state
        self._bucket = bucket
        self._started = False

    def start(self, module: Module) -> _FleetDeferred:
        if not self._started:
            self._started = True
            version = 0  # the seed deployment that spawned this bucket
        else:
            version = self._state.deploy(module)
        return _FleetDeferred(self._bucket, version)

    def run_once(self, module: Module) -> Occurrence:
        return self.start(module).wait()

    @property
    def occurrences_so_far(self) -> int:
        return self._bucket.consumed


class _WorkloadState:
    """Per-workload fleet bookkeeping owned by the service."""

    def __init__(self, workload, instance_count: int):
        self.workload = workload
        self.instance_count = instance_count
        self.instances: List[FleetInstance] = []
        self.buckets: List[SignatureBucket] = []
        self.version = 0
        self.deploy_times: Dict[int, float] = {}
        self.version_errors: Dict[int, List[str]] = {}
        self.v0_outcomes = 0
        #: serializes bucket reconstructions of one workload — version
        #: numbering is per-workload, so two buckets redeploying
        #: concurrently would interleave generations
        self.job_lock = threading.Lock()

    def deploy(self, module: Module) -> int:
        """Broadcast a new module version to every instance."""
        self.version += 1
        version = self.version
        self.deploy_times[version] = time.time()
        telemetry.count("serve.redeployments")
        for instance in self.instances:
            instance.deploy(version, module.clone())
        return version

    def record_error(self, note: InstanceError) -> None:
        self.version_errors.setdefault(note.version, []).append(
            str(note.error))
        for bucket in self.buckets:
            bucket.notify()

    def settled(self) -> bool:
        """No more work can originate here: every instance's seed run
        has arrived and every bucket's job has finished."""
        if self.v0_outcomes < self.instance_count:
            return False
        return all(b.status in ("done", "error") for b in self.buckets)


@dataclass
class BucketSummary:
    """One bucket's convergence record (a ``BENCH_serve.json`` row)."""

    signature: Dict
    workload: str
    status: str
    success: bool
    verified: bool
    iterations: int
    occurrences_consumed: int
    reports: int
    deduplicated: int
    stale: int
    instances_reporting: int
    wait_seconds: float
    wall_seconds: float
    streams: Dict[str, str]
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass
class ServeSummary:
    """Outcome of one :meth:`FleetService.run`."""

    workloads: List[str]
    instances: int
    parallel: int
    pipeline: bool
    reoccurrence_delay: float
    wall_seconds: float
    buckets: List[BucketSummary]
    instance_runs: int
    reports: int
    #: workloads whose every instance errored at the seed version —
    #: no report ever arrived, so no bucket exists for them
    unserviced: Dict[str, str] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return (not self.unserviced
                and bool(self.buckets)
                and all(b.success for b in self.buckets))

    def bucket_for(self, workload: str) -> Optional[BucketSummary]:
        for bucket in self.buckets:
            if bucket.workload == workload:
                return bucket
        return None

    def to_dict(self) -> Dict:
        return {
            "workloads": self.workloads,
            "instances": self.instances,
            "parallel": self.parallel,
            "pipeline": self.pipeline,
            "reoccurrence_delay": self.reoccurrence_delay,
            "wall_seconds": round(self.wall_seconds, 6),
            "succeeded": self.succeeded,
            "instance_runs": self.instance_runs,
            "reports": self.reports,
            "buckets": [b.to_dict() for b in self.buckets],
            "unserviced": dict(self.unserviced),
        }


class FleetService:
    """The long-running fleet-mode reconstruction service.

    One call to :meth:`run` deploys version 0 of every selected
    workload to ``instances`` fleet instances, routes their failure
    reports through the signature dispatcher, reconstructs every
    bucket that appears (at most ``parallel`` concurrently), and
    returns when the fleet has settled.
    """

    def __init__(self, workloads: Optional[Sequence[str]] = None, *,
                 instances: int = 2,
                 parallel: int = 1,
                 pipeline: bool = False,
                 reoccurrence_delay: float = 0.0,
                 work_limit: Optional[int] = None,
                 max_occurrences: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 wait_timeout: float = 600.0,
                 progress: Optional[Progress] = None):
        if instances < 1:
            raise ValueError("instances must be >= 1")
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        self.workload_names = (list(workloads) if workloads
                               else workload_names())
        self.instances = instances
        self.parallel = parallel
        self.pipeline = pipeline
        self.reoccurrence_delay = reoccurrence_delay
        self.work_limit = work_limit
        self.max_occurrences = max_occurrences
        self.cache_dir = cache_dir
        self.wait_timeout = wait_timeout
        self._progress = progress or (lambda message: None)
        self._queue: "queue.Queue" = queue.Queue()
        self._states: Dict[str, _WorkloadState] = {}
        self._buckets: Dict[str, SignatureBucket] = {}
        self._registries: List[telemetry.Telemetry] = []
        self._jobs: List[threading.Thread] = []
        self._slots = threading.BoundedSemaphore(parallel)
        self._lock = threading.Lock()
        self._settled = threading.Event()
        self._dispatch_error: Optional[Exception] = None
        self._seq = 0

    # -- service loop ----------------------------------------------------

    def run(self) -> ServeSummary:
        tel = telemetry.get()
        started = time.perf_counter()
        with tel.span("serve.run", instances=self.instances,
                      workloads=len(self.workload_names),
                      parallel=self.parallel, pipeline=self.pipeline):
            context = tel.trace_context()
            capture = tel.enabled
            for name in self.workload_names:
                workload = get_workload(name)
                state = _WorkloadState(workload, self.instances)
                self._states[name] = state
                for i in range(self.instances):
                    registry = telemetry.Telemetry(
                        sink=MemorySink() if capture else None,
                        context=context)
                    self._registries.append(registry)
                    state.instances.append(FleetInstance(
                        i, name, workload.failing_env, self._queue,
                        reoccurrence_delay=self.reoccurrence_delay,
                        registry=registry))
            dispatcher = threading.Thread(target=self._dispatch_loop,
                                          name="repro-serve-dispatch",
                                          daemon=True)
            dispatcher.start()
            for state in self._states.values():
                for instance in state.instances:
                    instance.start()
                # seed deployment: version 0 of the pristine module
                state.deploy_times[0] = time.time()
                for instance in state.instances:
                    instance.deploy(0, state.workload.fresh_module())
            try:
                self._await_settled()
            finally:
                for state in self._states.values():
                    for instance in state.instances:
                        instance.stop()
                grace = 10.0 + 2.0 * self.reoccurrence_delay
                for state in self._states.values():
                    for instance in state.instances:
                        instance.join(grace)
                self._queue.put(_STOP)
                dispatcher.join(5.0)
            for job in self._jobs:
                job.join(5.0)
            if self._dispatch_error is not None:
                raise self._dispatch_error
            self._fold_instance_telemetry(tel)
            summary = self._summarize(time.perf_counter() - started)
        tel.count("serve.runs")
        return summary

    def _await_settled(self) -> None:
        deadline = time.monotonic() + self.wait_timeout
        while not self._settled.wait(0.1):
            if self._dispatch_error is not None:
                return
            if time.monotonic() > deadline:
                raise ReconstructionError(
                    f"fleet did not settle within {self.wait_timeout:.0f}s")

    def _maybe_settled(self) -> None:
        with self._lock:
            if all(state.settled() for state in self._states.values()):
                self._settled.set()

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                if isinstance(item, FailureReport):
                    self._route(item)
                else:
                    self._note_error(item)
                self._maybe_settled()
            except Exception as exc:  # noqa: BLE001 — surfaced in run()
                logger.exception("serve dispatcher failed")
                self._dispatch_error = exc
                self._settled.set()
                return

    def _route(self, report: FailureReport) -> None:
        self._seq += 1
        report.seq = self._seq
        telemetry.count("serve.reports")
        state = self._states[report.workload]
        if report.version == 0:
            state.v0_outcomes += 1
        digest = report.signature.digest
        created = False
        with self._lock:
            bucket = self._buckets.get(digest)
            if bucket is None:
                created = True
                bucket = SignatureBucket(
                    report.signature, report.workload,
                    instance_count=state.instance_count,
                    deploy_times=state.deploy_times,
                    version_errors=state.version_errors,
                    take_timeout=self.wait_timeout)
                self._buckets[digest] = bucket
                state.buckets.append(bucket)
        if created:
            telemetry.count("serve.buckets")
            self._progress(f"[{report.workload}] new bucket "
                           f"{report.signature}")
            job = threading.Thread(
                target=self._run_bucket, args=(state, bucket),
                name=f"repro-serve-bucket-{digest}", daemon=True)
            self._jobs.append(job)
            job.start()
        disposition = bucket.offer(report)
        if disposition == "deduplicated":
            telemetry.count("serve.deduplicated_reports")
        elif disposition == "stale":
            telemetry.count("serve.stale_reports")

    def _note_error(self, note: InstanceError) -> None:
        state = self._states[note.workload]
        if note.version == 0:
            state.v0_outcomes += 1
        state.record_error(note)

    # -- bucket reconstruction jobs --------------------------------------

    def _run_bucket(self, state: _WorkloadState,
                    bucket: SignatureBucket) -> None:
        bucket.status = "waiting"
        try:
            with self._slots, state.job_lock:
                bucket.status = "running"
                started = time.perf_counter()
                site = _BucketSite(self, state, bucket)
                workload = state.workload
                try:
                    # term_scope: bucket jobs run concurrently in one
                    # process; each needs its own interning table
                    with T.term_scope(), \
                            telemetry.span("serve.bucket",
                                           workload=workload.name,
                                           signature=bucket.signature.digest):
                        reconstructor = ExecutionReconstructor(
                            workload.fresh_module(),
                            work_limit=(self.work_limit
                                        or workload.work_limit),
                            max_occurrences=(self.max_occurrences
                                             or workload.max_occurrences),
                            pipeline=self.pipeline,
                            cache_dir=self.cache_dir)
                        bucket.result = reconstructor.reconstruct(site)
                except Exception as exc:  # noqa: BLE001 — per-bucket fault
                    logger.exception("bucket %s reconstruction failed",
                                     bucket.signature.digest)
                    bucket.error = str(exc)
                    bucket.status = "error"
                    telemetry.count("serve.bucket_errors")
                else:
                    bucket.status = "done"
                    telemetry.histogram(
                        "serve.first_reoccurrence_wait_seconds").record(
                        bucket.wait_seconds)
                bucket.wall_seconds = time.perf_counter() - started
        finally:
            bucket.close()
        outcome = ("ok" if bucket.result is not None
                   and bucket.result.success else bucket.error or "failed")
        self._progress(
            f"[{bucket.workload}] bucket {bucket.signature.digest} "
            f"{bucket.status} ({outcome}): {bucket.consumed} occurrences "
            f"consumed, {bucket.deduplicated} deduplicated, "
            f"wait {bucket.wait_seconds:.2f}s, "
            f"wall {bucket.wall_seconds:.2f}s")
        self._maybe_settled()

    # -- teardown --------------------------------------------------------

    def _fold_instance_telemetry(self, tel: telemetry.Telemetry) -> None:
        """Fold per-instance registries through the standard
        cross-registry path: merge snapshots, absorb the aggregate,
        forward the event streams onto the shared timeline."""
        snapshots = [r.snapshot() for r in self._registries]
        tel.absorb(merge_snapshots(snapshots))
        if tel.enabled:
            for registry in self._registries:
                if isinstance(registry.sink, MemorySink):
                    tel.forward(registry.sink.events)

    def _summarize(self, wall_seconds: float) -> ServeSummary:
        buckets = []
        unserviced: Dict[str, str] = {}
        for name, state in self._states.items():
            for bucket in state.buckets:
                buckets.append(bucket.summary())
            if not state.buckets:
                errors = state.version_errors.get(0, ["no failure report"])
                unserviced[name] = errors[0]
        return ServeSummary(
            workloads=list(self.workload_names),
            instances=self.instances,
            parallel=self.parallel,
            pipeline=self.pipeline,
            reoccurrence_delay=self.reoccurrence_delay,
            wall_seconds=wall_seconds,
            buckets=buckets,
            instance_runs=sum(
                inst.runs for state in self._states.values()
                for inst in state.instances),
            reports=self._seq,
            unserviced=unserviced)


def serve(workloads: Optional[Sequence[str]] = None,
          **kwargs) -> ServeSummary:
    """Convenience one-shot entry point (the ``repro serve`` body)."""
    return FleetService(workloads, **kwargs).run()
