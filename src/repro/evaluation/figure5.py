"""Figure 5: benefit of recorded data values for shepherded symex.

Reproduces the paper's PHP-74194 experiment: run shepherded symbolic
execution over the same failure with (a) only the control-flow trace,
(b) the data values selected in the first iteration, and (c) those of
the second iteration, with the solver timeout effectively disabled, and
compare the solver time needed to push through the same execution.

The paper's numbers are 11468 s / 5006 s / 1800 s; the shape to
reproduce is a strict, large decrease from (a) to (c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.instrument import instrument
from ..core.production import ProductionSite
from ..core.selection import select_key_values
from ..solver.budget import WORK_PER_SECOND
from ..symex.engine import ShepherdedSymex
from ..workloads import get_workload
from .formatting import render_series, render_table

#: per-query cap in 'no timeout' mode (keeps wall time finite)
FIG5_QUERY_CAP_FACTOR = 10


@dataclass
class Figure5Series:
    label: str
    instrs_executed: int
    modelled_seconds: float
    status: str
    #: (instructions executed, cumulative modelled seconds) samples
    progress: List[Tuple[int, float]] = field(default_factory=list)


@dataclass
class Figure5Result:
    workload: str
    series: List[Figure5Series]

    @property
    def strictly_improving(self) -> bool:
        times = [s.modelled_seconds for s in self.series]
        return all(a > b for a, b in zip(times, times[1:]))

    def speedup(self) -> float:
        if self.series[-1].modelled_seconds == 0:
            return float("inf")
        return (self.series[0].modelled_seconds
                / self.series[-1].modelled_seconds)

    def render(self) -> str:
        headers = ["Trace contents", "Instrs replayed",
                   "Solver time (modelled s)", "Status"]
        rows = [[s.label, s.instrs_executed,
                 f"{s.modelled_seconds:.2f}", s.status]
                for s in self.series]
        out = [render_table(headers, rows,
                            f"Figure 5 — symbex progress on {self.workload} "
                            "(solver timeout disabled)")]
        out.append(f"speedup control-flow-only -> 2nd iteration: "
                   f"{self.speedup():.1f}x "
                   "(paper: 11468 s -> 1800 s, 6.4x)")
        for s in self.series:
            out.append(render_series(
                f"  progress [{s.label}]", s.progress[:12],
                "instrs", "modelled s"))
        return "\n".join(out)


def run_figure5(workload_name: str = "php-74194",
                iterations: int = 3) -> Figure5Result:
    workload = get_workload(workload_name)
    production = ProductionSite(workload.failing_env)
    deployed = workload.fresh_module()
    next_tag = 0
    already: set = set()
    labels = ["control-flow only",
              "control-flow + 1st-iteration data values",
              "control-flow + 2nd-iteration data values"]
    captured = []  # (label, module, occurrence)

    for index in range(iterations):
        occurrence = production.run_once(deployed)
        captured.append((labels[index], deployed, occurrence))
        if index == iterations - 1:
            break
        symex = ShepherdedSymex(deployed, occurrence.trace,
                                occurrence.failure,
                                work_limit=workload.work_limit)
        result = symex.run()
        if result.completed or result.stall is None:
            break
        plan = select_key_values(result.stall, frozenset(already))
        if not plan.items:
            break
        instrumented = instrument(deployed, plan.items, next_tag)
        deployed = instrumented.module
        next_tag = instrumented.next_tag
        already.update((i.point.func, i.register) for i in plan.items)

    series: List[Figure5Series] = []
    cap = workload.work_limit * FIG5_QUERY_CAP_FACTOR
    for label, module, occurrence in captured:
        # 'no timeout': retry past concretization conflicts (banning the
        # bad pick) so every run replays the whole trace; accumulate the
        # solver work across retries like a single long solving session
        banned: dict = {}
        total_work = 0
        result = None
        for _attempt in range(64):
            symex = ShepherdedSymex(module, occurrence.trace,
                                    occurrence.failure,
                                    work_limit=cap, continue_on_stall=True,
                                    banned_concretizations=banned)
            result = symex.run()
            total_work += result.stats.solver_work
            conflict = (result.stall.concretization_conflict
                        if result.stall else None)
            if result.status != "stalled" or conflict is None:
                break
            term_repr, value = conflict
            banned.setdefault(term_repr, set()).add(value)
        progress = [(instr, work / WORK_PER_SECOND)
                    for instr, work in result.stats.progress]
        series.append(Figure5Series(
            label=label,
            instrs_executed=result.stats.instrs_executed,
            modelled_seconds=total_work / WORK_PER_SECOND,
            status=result.status,
            progress=progress,
        ))
    return Figure5Result(workload_name, series)
