"""Directed fuzzing seeded with ER-reconstructed inputs (§2.4).

The paper argues ER's *executable* output lets dynamic tools consume
production failures; fuzzing is its canonical example (SAVIOR et al.).
This module is a small coverage-guided byte-mutation fuzzer over the
interpreter: coverage is the set of (branch point, outcome) pairs, the
corpus grows on new coverage, and crashes are deduplicated by failure
signature.

The experiment ER enables: seed the fuzzer with the *generated test
case* of a reconstructed production failure and it explores the
neighbourhood of the buggy code immediately, finding crash variants a
from-scratch fuzzer needs far longer to reach.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from ..interp.env import Environment
from ..interp.failures import FailureInfo
from ..interp.interpreter import Interpreter
from ..ir import instructions as ins
from ..ir.module import Module

Coverage = FrozenSet


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    executions: int
    corpus_size: int
    coverage_points: int
    #: distinct failure signatures, first-seen order
    crashes: List[FailureInfo] = field(default_factory=list)
    #: executions needed to find the first crash (None = never)
    first_crash_at: Optional[int] = None

    @property
    def crash_count(self) -> int:
        return len(self.crashes)


class _CoverageCollector:
    """on_step hook recording (branch point, taken) coverage."""

    def __init__(self):
        self.edges: Set[Tuple] = set()
        self._interp = None

    def hook(self, thread, point, instr):
        if isinstance(instr, ins.Br):
            cond = instr.cond
            value = (thread.frame.regs.get(cond)
                     if isinstance(cond, str) else cond)
            self.edges.add((point, bool(value)))


class CoverageFuzzer:
    """Coverage-guided mutation fuzzing of one input stream."""

    def __init__(self, module: Module, stream: str, *,
                 seed: int = 0, max_len: int = 256,
                 quantum: int = 50, max_steps: int = 200_000):
        self.module = module
        self.stream = stream
        self.rng = random.Random(seed)
        self.max_len = max_len
        self.quantum = quantum
        self.max_steps = max_steps
        self.corpus: List[bytes] = []
        self._seen_coverage: Set[Coverage] = set()
        self.global_edges: Set[Tuple] = set()
        self.crashes: List[FailureInfo] = []
        self.executions = 0
        self.first_crash_at: Optional[int] = None

    # -- execution ---------------------------------------------------------

    def _execute(self, data: bytes):
        collector = _CoverageCollector()
        env = Environment({self.stream: data}, quantum=self.quantum)
        result = Interpreter(self.module, env, on_step=collector.hook,
                             max_steps=self.max_steps,
                             hang_as_failure=True).run()
        self.executions += 1
        return result, frozenset(collector.edges)

    def add_seed(self, data: bytes) -> None:
        result, coverage = self._execute(data)
        self._record(data, result, coverage)

    def _record(self, data, result, coverage) -> None:
        new_edges = coverage - self.global_edges
        if new_edges or coverage not in self._seen_coverage:
            self.corpus.append(data)
            self._seen_coverage.add(coverage)
            self.global_edges |= coverage
        if result.failure is not None:
            if not any(result.failure.matches(c) for c in self.crashes):
                self.crashes.append(result.failure)
                if self.first_crash_at is None:
                    self.first_crash_at = self.executions

    # -- mutation ------------------------------------------------------------

    def _mutate(self, data: bytes) -> bytes:
        out = bytearray(data or b"\x00")
        for _ in range(self.rng.randint(1, 4)):
            choice = self.rng.random()
            if choice < 0.5 and out:
                out[self.rng.randrange(len(out))] = self.rng.randint(0, 255)
            elif choice < 0.7 and len(out) < self.max_len:
                out.insert(self.rng.randrange(len(out) + 1),
                           self.rng.randint(0, 255))
            elif choice < 0.9 and len(out) > 1:
                del out[self.rng.randrange(len(out))]
            else:
                value = self.rng.choice((0, 1, 0x7F, 0x80, 0xFF))
                out[self.rng.randrange(len(out))] = value
        return bytes(out)

    # -- campaign --------------------------------------------------------

    def run(self, budget: int = 500) -> FuzzReport:
        """Fuzz for ``budget`` executions; corpus must be seeded first."""
        if not self.corpus:
            self.add_seed(b"")
        while self.executions < budget:
            parent = self.rng.choice(self.corpus)
            child = self._mutate(parent)
            result, coverage = self._execute(child)
            self._record(child, result, coverage)
        return FuzzReport(executions=self.executions,
                          corpus_size=len(self.corpus),
                          coverage_points=len(self.global_edges),
                          crashes=list(self.crashes),
                          first_crash_at=self.first_crash_at)
