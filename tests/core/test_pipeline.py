"""The pipelined reconstruction loop: speculation, deferred production
waits, and the byte-identity property against the sequential loop."""

import json
import time
from collections import Counter

import pytest

from repro import telemetry
from repro.core import (DeferredOccurrence, ExecutionReconstructor,
                        ProductionSite)
from repro.core.instrument import InstrumentationResult
from repro.core.pipeline import Speculator, predict_preshard
from repro.core.selection import RecordingItem, RecordingPlan
from repro.errors import ReconstructionError
from repro.ir.module import ProgramPoint
from repro.parallel import (_shard_prefixes, _steal_prefixes, close_pool,
                            private_pool)
from repro.solver import terms as T
from repro.solver.cache import SolverCache
from repro.symex.result import StallInfo
from repro.trace.packets import PtwEvent
from repro.workloads import get_workload, workload_names


def _fingerprint(report):
    """Everything observable about a reconstruction's outcome."""
    return json.dumps({
        "success": report.success,
        "verified": report.verified,
        "failure": str(report.failure),
        "occurrences": report.occurrences,
        "unrelated": report.unrelated_occurrences,
        "streams": {name: data.hex() for name, data in
                    (sorted(report.test_case.streams.items())
                     if report.test_case else [])},
        "iterations": [
            (it.occurrence, it.status, it.instr_count, it.solver_calls,
             [(str(item.point), item.register, item.size)
              for item in it.recorded_items],
             it.stall_point)
            for it in report.iterations],
    }, sort_keys=True)


def _reconstruct(workload, *, pipeline, delay=0.0, shards=1):
    registry = telemetry.Telemetry()
    with telemetry.scoped(registry):
        reconstructor = ExecutionReconstructor(
            workload.fresh_module(), work_limit=workload.work_limit,
            max_occurrences=workload.max_occurrences,
            shards=shards, pipeline=pipeline)
        site = ProductionSite(workload.failing_env,
                              reoccurrence_delay=delay)
        report = reconstructor.reconstruct(site)
    return report, registry.snapshot()


class TestByteIdentity:
    """--pipeline and --no-pipeline must agree on every workload."""

    @pytest.mark.parametrize("name", workload_names())
    def test_pipeline_matches_sequential(self, name):
        workload = get_workload(name)
        sequential, _ = _reconstruct(workload, pipeline=False)
        pipelined, _ = _reconstruct(workload, pipeline=True)
        assert _fingerprint(sequential) == _fingerprint(pipelined)

    def test_identity_with_speculation_active(self):
        # a real production wait gives speculation room to run; this
        # workload's selected items include raw input bytes, so some
        # assignments are built and then *discarded* at commit — the
        # mismatch path — and outcomes still match exactly
        workload = get_workload("php-2012-2386")
        sequential, _ = _reconstruct(workload, pipeline=False)
        pipelined, snap = _reconstruct(workload, pipeline=True,
                                       delay=0.4)
        assert _fingerprint(sequential) == _fingerprint(pipelined)
        counters = snap.get("counters", {})
        committed = counters.get("pipeline.commits", 0)
        discarded = counters.get("pipeline.discards", 0)
        # every built assignment was adjudicated, one way or the other
        assert committed + discarded >= counters.get(
            "pipeline.speculations", 0) - counters.get(
            "pipeline.enum_timeouts", 0) >= 0


def _forced_value_speculator(solver_cache, pool=None):
    """A stall whose recorded value the constraints force to 6.

    ``t = x + 1`` carries the recording item's provenance and the only
    constraint is ``t == 6``, so model enumeration finds 6 immediately
    and the ban query is unsat — one assignment, deterministically.
    """
    point = ProgramPoint(func="f", block="entry", index=0)
    x = T.var("x", 8)
    t = T.binop("add", x, T.const(1), 8)
    t.prov = (point, "%r", 1)
    constraint = T.bool_term(T.cmp("eq", t, T.const(6), 64))
    stall = StallInfo(constraints=[constraint], stall_terms=[],
                      chains=[], exec_counts=Counter())
    item = RecordingItem(point=point, register="%r", size=1)
    plan = RecordingPlan(items=[item], bottleneck=[], graph_nodes=1,
                         total_cost=1)
    instrumented = InstrumentationResult(module=None,
                                         tag_map={7: item}, next_tag=8)
    spec = Speculator(stall, plan, instrumented, solver_cache,
                      work_limit=50_000, pool=pool)
    return spec, constraint


class _FakeTrace:
    def __init__(self, events):
        self._events = events

    def ptwrites(self):
        return list(self._events)


class _FakeOccurrence:
    def __init__(self, events):
        self.trace = _FakeTrace(events)


class TestSpeculator:
    def test_forced_value_commits(self):
        cache = SolverCache()
        with T.term_scope():
            spec, constraint = _forced_value_speculator(cache)
            while spec.step():
                pass
            committed = spec.commit(_FakeOccurrence([PtwEvent(7, 6)]))
            assert committed == 1
            # the committed key is the transformed set the next run
            # queries: the eq itself (the forced constraint folds away)
            key = SolverCache.key([constraint])
            assert cache.lookup_feasible(key) is True

    def test_mismatched_value_discards(self):
        cache = SolverCache()
        with T.term_scope():
            spec, constraint = _forced_value_speculator(cache)
            while spec.step():
                pass
            committed = spec.commit(_FakeOccurrence([PtwEvent(7, 9)]))
            assert committed == 0
            assert cache.lookup_feasible(
                SolverCache.key([constraint])) is None

    def test_extra_recorded_instance_discards(self):
        # the tag reported two different values (a loop we modelled as
        # one instance): the strict sequence match must reject
        cache = SolverCache()
        with T.term_scope():
            spec, _ = _forced_value_speculator(cache)
            while spec.step():
                pass
            committed = spec.commit(_FakeOccurrence(
                [PtwEvent(7, 6), PtwEvent(7, 9)]))
            assert committed == 0

    def test_repeated_single_value_matches_collapsed_slot(self):
        # ...but a sequence repeating the assumed value is exact: the
        # interned duplicate instances dedup in the key too
        cache = SolverCache()
        with T.term_scope():
            spec, constraint = _forced_value_speculator(cache)
            while spec.step():
                pass
            committed = spec.commit(_FakeOccurrence(
                [PtwEvent(7, 6), PtwEvent(7, 6)]))
            assert committed == 1
            assert cache.lookup_feasible(
                SolverCache.key([constraint])) is True

    def test_pooled_speculation_matches_inline(self):
        inline_cache = SolverCache()
        with T.term_scope():
            spec, _ = _forced_value_speculator(inline_cache)
            while spec.step():
                pass
            inline_verdicts = dict(spec._verdicts)
        pooled_cache = SolverCache()
        with private_pool(1) as pool:
            with T.term_scope():
                spec, _ = _forced_value_speculator(pooled_cache, pool)
                while spec.step():
                    pass
                spec.drain()
                pooled_verdicts = dict(spec._verdicts)
        assert {k: v for k, (v, _) in inline_verdicts.items()} == \
            {k: v for k, (v, _) in pooled_verdicts.items()}

    def test_unselected_item_is_unspeculable(self):
        registry = telemetry.Telemetry()
        with telemetry.scoped(registry), T.term_scope():
            point = ProgramPoint(func="f", block="entry", index=0)
            item = RecordingItem(point=point, register="%r", size=1)
            # no term in the constraints carries the item's provenance
            stall = StallInfo(constraints=[T.bool_term(
                T.cmp("eq", T.var("y", 8), T.const(1), 64))],
                stall_terms=[], chains=[], exec_counts=Counter())
            plan = RecordingPlan(items=[item], bottleneck=[],
                                 graph_nodes=1, total_cost=1)
            instrumented = InstrumentationResult(
                module=None, tag_map={0: item}, next_tag=1)
            spec = Speculator(stall, plan, instrumented, SolverCache(),
                              work_limit=1_000)
            assert spec.step() is False
        assert registry.counter(
            "pipeline.unspeculable_stalls").value == 1


class TestPredictPreshard:
    def test_matches_shard_partitioners(self):
        workload = get_workload("libpng-2004-0597")
        from repro.trace.degrade import degrade_trace
        from repro.trace.decoder import decode
        from repro.trace.encoder import PTEncoder
        from repro.trace.ringbuffer import RingBuffer
        from repro.interp.interpreter import Interpreter

        module = workload.fresh_module()
        encoder = PTEncoder(RingBuffer(1 << 22))
        Interpreter(module, workload.failing_env(1),
                    tracer=encoder).run()
        trace = degrade_trace(decode(encoder.buffer), loss=0.085, seed=1)
        assert predict_preshard(trace, 1, True) is None
        assert predict_preshard(trace, 4, True) == \
            _steal_prefixes(trace, 4)
        assert predict_preshard(trace, 4, False) == \
            _shard_prefixes(trace, 4)


class TestDeferredOccurrence:
    def test_start_delivers_same_occurrence_as_run_once(self):
        workload = get_workload("objdump-2018-6323")
        site = ProductionSite(workload.failing_env)
        deferred = site.start(workload.fresh_module())
        occurrence = deferred.wait()
        assert deferred.done()
        assert deferred.poll() is occurrence
        assert occurrence.failure is not None
        assert occurrence.trace.chunks

    def test_only_one_deferred_run_at_a_time(self):
        workload = get_workload("objdump-2018-6323")
        site = ProductionSite(workload.failing_env,
                              reoccurrence_delay=0.5)
        module = workload.fresh_module()
        site.start(module)
        with pytest.raises(ReconstructionError, match="already active"):
            site.start(module)

    def test_poll_nonblocking_then_result(self):
        workload = get_workload("objdump-2018-6323")
        site = ProductionSite(workload.failing_env,
                              reoccurrence_delay=0.3)
        deferred = site.start(workload.fresh_module())
        assert deferred.poll() is None  # still sleeping
        assert deferred.wait().failure is not None

    def test_background_exception_reraised_on_wait(self):
        def exploding_env(_):
            raise RuntimeError("production environment down")

        site = ProductionSite(exploding_env)
        deferred = site.start(get_workload(
            "objdump-2018-6323").fresh_module())
        with pytest.raises(RuntimeError, match="environment down"):
            deferred.wait()


class TestUnrelatedWaitAccounting:
    def test_unrelated_occurrence_records_wait_seconds(self):
        # reuse the two-bug module: the unrelated failure's production
        # wait must land in the dropped-phase histogram
        from tests.core.test_determinism import _two_bug_module
        from repro.interp.env import Environment

        def factory(occ):
            data = b"\xff\x00" if occ == 2 else bytes([9, 9])
            return Environment({"stdin": data})

        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            er = ExecutionReconstructor(_two_bug_module(),
                                        work_limit=100,
                                        max_occurrences=3)
            report = er.reconstruct(ProductionSite(factory))
        assert report.success
        assert report.unrelated_occurrences == 1
        snap = registry.snapshot()
        hist = snap["histograms"].get("reconstruct.unrelated_wait_seconds")
        assert hist is not None and hist["count"] == 1
        assert hist["sum"] >= 0.0


def teardown_module(module):
    close_pool()
